//! The two-tier artifact store: in-memory cost-aware LRU over an on-disk
//! JSON directory.
//!
//! Each artifact is a [`Value`] payload keyed by its [`Fingerprint`]. The
//! disk tier stores one `<fingerprint-hex>.json` file per artifact, wrapped
//! in an envelope carrying a schema version, the fingerprint, and the
//! recompute cost. Writes are atomic (write to a temp file, then rename),
//! and loads are corruption-tolerant: a truncated, malformed,
//! schema-mismatched, or mislabeled entry is counted and treated as a
//! cache miss — never a panic — so a later `put` simply rewrites it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::json::{self, Value};

use crate::fingerprint::Fingerprint;
use crate::lru::CostAwareLru;

/// On-disk envelope schema revision. Bump when the envelope layout
/// changes; entries written under another revision load as misses.
pub const SCHEMA_VERSION: u32 = 1;

/// Default in-memory entry capacity.
pub const DEFAULT_CAPACITY: usize = 64;

/// Counters exposed by [`MorphStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from memory.
    pub memory_hits: u64,
    /// Lookups answered from disk (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Disk entries rejected as damaged or version-mismatched.
    pub corrupt_entries: u64,
    /// Artifacts written.
    pub writes: u64,
    /// Total recompute cost (quantum ops) avoided by hits.
    pub cost_saved: u64,
}

impl StoreStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} memory, {} disk), {} misses, saved {} quantum ops",
            self.hits(),
            self.memory_hits,
            self.disk_hits,
            self.misses,
            self.cost_saved
        )
    }
}

/// Content-addressed artifact store with an LRU memory tier and an
/// optional persistent JSON tier.
///
/// # Examples
///
/// ```
/// use morph_store::{FingerprintBuilder, MorphStore};
/// use serde::json::Value;
///
/// let mut store = MorphStore::in_memory();
/// let fp = FingerprintBuilder::new("demo/v1").field_u64("k", 1).finish();
/// assert!(store.get(&fp).is_none());
/// store.put(fp, Value::UInt(42), 100).unwrap();
/// assert_eq!(store.get(&fp), Some(Value::UInt(42)));
/// assert_eq!(store.stats().cost_saved, 100);
/// ```
#[derive(Debug)]
pub struct MorphStore {
    dir: Option<PathBuf>,
    memory: CostAwareLru<Fingerprint, Value>,
    stats: StoreStats,
}

impl MorphStore {
    /// A memory-only store with the default capacity.
    pub fn in_memory() -> Self {
        MorphStore::with_capacity(DEFAULT_CAPACITY)
    }

    /// A memory-only store holding at most `max_entries` artifacts.
    pub fn with_capacity(max_entries: usize) -> Self {
        MorphStore {
            dir: None,
            memory: CostAwareLru::new(max_entries),
            stats: StoreStats::default(),
        }
    }

    /// A persistent store rooted at `dir` (created if absent) with the
    /// default memory capacity.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        MorphStore::open_with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// [`MorphStore::open`] with an explicit memory capacity.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn open_with_capacity(dir: impl Into<PathBuf>, max_entries: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(MorphStore {
            dir: Some(dir),
            memory: CostAwareLru::new(max_entries),
            stats: StoreStats::default(),
        })
    }

    /// The persistent directory, when this store has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Number of memory-resident entries.
    pub fn resident_entries(&self) -> usize {
        self.memory.len()
    }

    /// Memory-tier evictions so far.
    pub fn evictions(&self) -> u64 {
        self.memory.evictions()
    }

    /// Looks up an artifact: memory first, then disk (promoting the entry
    /// into memory on a disk hit). Damaged disk entries count as misses.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<Value> {
        if let Some(value) = self.memory.get(fp) {
            let value = value.clone();
            self.stats.memory_hits += 1;
            self.stats.cost_saved += self.memory.cost_of(fp).unwrap_or(0);
            return Some(value);
        }
        if let Some((value, cost)) = self.load_from_disk(fp) {
            self.stats.disk_hits += 1;
            self.stats.cost_saved += cost;
            self.memory.insert(*fp, value.clone(), cost);
            return Some(value);
        }
        self.stats.misses += 1;
        None
    }

    /// `true` when the artifact is resident in memory (no recency bump, no
    /// disk probe).
    pub fn contains_in_memory(&self, fp: &Fingerprint) -> bool {
        self.memory.cost_of(fp).is_some()
    }

    /// Stores an artifact under its fingerprint. `cost` is the recompute
    /// cost credited back on every future hit (and the weight the eviction
    /// policy protects). The memory tier is always updated; the disk tier
    /// is written atomically when configured.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the disk write fails (the
    /// memory tier keeps the artifact regardless).
    pub fn put(&mut self, fp: Fingerprint, payload: Value, cost: u64) -> io::Result<()> {
        self.stats.writes += 1;
        self.memory.insert(fp, payload.clone(), cost);
        if self.dir.is_some() {
            self.persist(&fp, &payload, cost)?;
        }
        Ok(())
    }

    /// Drops the memory tier (disk entries survive). Useful in tests to
    /// force disk loads.
    pub fn drop_memory(&mut self) {
        self.memory.clear();
    }

    fn entry_path(&self, fp: &Fingerprint) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", fp.to_hex())))
    }

    fn persist(&self, fp: &Fingerprint, payload: &Value, cost: u64) -> io::Result<()> {
        let path = self.entry_path(fp).expect("persist requires a directory");
        let mut envelope = std::collections::BTreeMap::new();
        envelope.insert("schema".to_string(), Value::UInt(u64::from(SCHEMA_VERSION)));
        envelope.insert("fingerprint".to_string(), Value::Str(fp.to_hex()));
        envelope.insert("cost".to_string(), Value::UInt(cost));
        envelope.insert("payload".to_string(), payload.clone());
        let text = json::to_string(&Value::Object(envelope));

        // Atomic publish: a reader either sees the old entry or the new
        // one, never a torn write. The temp name includes the pid so
        // concurrent writers of the same artifact cannot collide; the final
        // rename is last-writer-wins over identical content.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, text.as_bytes())?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Reads and validates a disk entry; any failure is a tolerated miss.
    fn load_from_disk(&mut self, fp: &Fingerprint) -> Option<(Value, u64)> {
        let path = self.entry_path(fp)?;
        let text = fs::read_to_string(&path).ok()?;
        match decode_envelope(&text, fp) {
            Some(entry) => Some(entry),
            None => {
                // Damaged or version-mismatched: count it, remove the file
                // best-effort so the next `put` rewrites a clean entry.
                self.stats.corrupt_entries += 1;
                let _ = fs::remove_file(&path);
                None
            }
        }
    }
}

/// Parses an envelope, returning `(payload, cost)` only when the schema
/// version and fingerprint both check out.
fn decode_envelope(text: &str, expected: &Fingerprint) -> Option<(Value, u64)> {
    let root = json::parse(text).ok()?;
    let schema = root.get("schema")?.as_u64()?;
    if schema != u64::from(SCHEMA_VERSION) {
        return None;
    }
    let fp = Fingerprint::from_hex(root.get("fingerprint")?.as_str()?)?;
    if fp != *expected {
        return None;
    }
    let cost = root.get("cost")?.as_u64()?;
    let payload = root.get("payload")?.clone();
    Some((payload, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;

    fn temp_dir(label: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "morph-store-test-{label}-{}-{nanos}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn fp(n: u64) -> Fingerprint {
        FingerprintBuilder::new("test/v1")
            .field_u64("n", n)
            .finish()
    }

    #[test]
    fn memory_round_trip_and_stats() {
        let mut store = MorphStore::in_memory();
        let key = fp(1);
        assert!(store.get(&key).is_none());
        store.put(key, Value::Str("artifact".into()), 7).unwrap();
        assert_eq!(store.get(&key), Some(Value::Str("artifact".into())));
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.cost_saved, 7);
    }

    #[test]
    fn disk_entries_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut store = MorphStore::open(&dir).unwrap();
            store.put(fp(2), Value::UInt(99), 1234).unwrap();
        }
        let mut fresh = MorphStore::open(&dir).unwrap();
        assert_eq!(fresh.get(&fp(2)), Some(Value::UInt(99)));
        assert_eq!(fresh.stats().disk_hits, 1);
        assert_eq!(fresh.stats().cost_saved, 1234);
        // Promoted into memory: second lookup is a memory hit.
        assert!(fresh.get(&fp(2)).is_some());
        assert_eq!(fresh.stats().memory_hits, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_degrades_to_miss() {
        let dir = temp_dir("truncated");
        let mut store = MorphStore::open(&dir).unwrap();
        store.put(fp(3), Value::UInt(1), 50).unwrap();
        let path = store.entry_path(&fp(3)).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        store.drop_memory();
        assert_eq!(store.get(&fp(3)), None);
        assert_eq!(store.stats().corrupt_entries, 1);
        assert!(!path.exists(), "damaged entry is cleaned up");
        // Rewriting repairs the entry.
        store.put(fp(3), Value::UInt(2), 50).unwrap();
        store.drop_memory();
        assert_eq!(store.get(&fp(3)), Some(Value::UInt(2)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_mismatch_degrades_to_miss() {
        let dir = temp_dir("schema");
        let mut store = MorphStore::open(&dir).unwrap();
        store.put(fp(4), Value::UInt(1), 5).unwrap();
        let path = store.entry_path(&fp(4)).unwrap();
        let hacked = fs::read_to_string(&path)
            .unwrap()
            .replace("\"schema\":1", "\"schema\":999");
        fs::write(&path, hacked).unwrap();
        store.drop_memory();
        assert_eq!(store.get(&fp(4)), None);
        assert_eq!(store.stats().corrupt_entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mislabeled_fingerprint_degrades_to_miss() {
        let dir = temp_dir("mislabel");
        let mut store = MorphStore::open(&dir).unwrap();
        store.put(fp(5), Value::UInt(1), 5).unwrap();
        // Copy entry 5's file into entry 6's slot: content hash no longer
        // matches the address.
        let from = store.entry_path(&fp(5)).unwrap();
        let to = store.entry_path(&fp(6)).unwrap();
        fs::copy(&from, &to).unwrap();
        store.drop_memory();
        assert_eq!(store.get(&fp(6)), None);
        assert_eq!(store.stats().corrupt_entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_is_memory_only() {
        let dir = temp_dir("evict");
        let mut store = MorphStore::open_with_capacity(&dir, 2).unwrap();
        for n in 0..5 {
            store.put(fp(n), Value::UInt(n), 1).unwrap();
        }
        assert_eq!(store.resident_entries(), 2);
        assert!(store.evictions() >= 3);
        // Evicted artifacts still load from disk.
        assert_eq!(store.get(&fp(0)), Some(Value::UInt(0)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
