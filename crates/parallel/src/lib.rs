//! Deterministic parallel execution substrate.
//!
//! MorphQPV's hot paths are embarrassingly parallel — one program execution
//! per sampled input per tracepoint (characterization), one independent run
//! per solver restart, one grid point per baseline sweep — but naive
//! threading would destroy reproducibility: the serial code threads a single
//! `StdRng` through input generation, noise, and shot readout, so any
//! reordering changes every sampled trace.
//!
//! This crate fixes that with two pieces:
//!
//! 1. **Seed splitting** ([`derive_master`] + [`child_seed`]): draw one
//!    *master seed* from the caller's RNG, then give task `i` its own
//!    `StdRng` seeded with `child_seed(master, i)`. Each task's stream is a
//!    pure function of `(master, i)` — independent of scheduling, worker
//!    count, and the progress of other tasks.
//! 2. **Deterministic fan-out** ([`parallel_map`]): a scoped-thread work
//!    queue that evaluates `f(i, &items[i])` for every index and returns
//!    results *in index order*. With per-task seeds, running with 1 worker
//!    or N workers produces bit-identical output.
//!
//! Combined with order-independent cost merging (`CostLedger` totals are
//! sums of `u64`s), serial and parallel runs of characterization, solvers,
//! and baseline sweeps agree exactly — the determinism guarantee documented
//! in `DESIGN.md`.
//!
//! For long-lived services that accept jobs over time rather than fanning
//! out a known batch, the [`pool`] module provides [`WorkerPool`]: a bounded
//! FIFO drained by a fixed set of threads, with explicit backpressure,
//! panic isolation, pause/resume, and drain-then-shutdown.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

pub mod pool;

pub use pool::{PoolRejection, WorkerPool};

/// Locks a mutex, recovering the inner guard if a previous holder panicked.
///
/// Every mutex in this crate protects state whose invariants hold at each
/// lock release (queues, counters, result slots), so a poisoned lock — a
/// job panicked while a worker held the guard — is safe to keep using. The
/// panic itself is surfaced elsewhere (the pool's panic backstop counter,
/// `parallel_map`'s scope propagation); recovering here keeps one
/// panicking job from wedging every later request behind a
/// `PoisonError` cascade.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Derives the master seed for a parallel region from the caller's RNG.
///
/// Consumes exactly one `u64` draw, so the caller's stream advances the same
/// way regardless of how many tasks the region spawns.
pub fn derive_master(rng: &mut impl Rng) -> u64 {
    rng.gen::<u64>()
}

/// Derives the seed of task `index` from a master seed.
///
/// Uses the SplitMix64 finalizer over `master + (index + 1) · φ64`, giving
/// well-separated, statistically independent child streams even for adjacent
/// indices (the standard splittable-PRNG construction).
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `StdRng` for task `index` of the region rooted at `master`.
pub fn child_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(child_seed(master, index))
}

/// Resolves a requested worker count: `0` means "all available cores".
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Evaluates `f(i, &items[i])` for every index and returns the results in
/// index order.
///
/// `workers == 0` uses all available cores; `workers == 1` (or a single
/// item) runs inline on the caller's thread with no synchronization. Work is
/// distributed through a shared atomic cursor, so long and short tasks
/// balance across threads; because each result lands in its input's slot,
/// scheduling never affects output order or content.
///
/// # Panics
///
/// Propagates the panic of any task.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_workers(workers).min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *lock_or_recover(&slots[i]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index was visited by exactly one worker")
        })
        .collect()
}

/// [`parallel_map`] over indices alone: evaluates `f(i)` for `i < count`,
/// results in index order.
pub fn parallel_map_indices<R, F>(workers: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    parallel_map(workers, &indices, |_, &i| f(i))
}

/// Splits `0..count` into consecutive index ranges of at most `batch` items
/// (the last range may be shorter).
///
/// Range boundaries depend only on `count` and `batch`, never on the worker
/// count, so distributing the ranges with [`parallel_map`] keeps batched
/// sweeps bit-identical at any parallelism: each item's global index — and
/// therefore its [`child_rng`] stream — is fixed by the range layout alone.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn batch_ranges(count: usize, batch: usize) -> Vec<std::ops::Range<usize>> {
    assert!(batch > 0, "batch must be positive");
    (0..count.div_ceil(batch))
        .map(|i| i * batch..((i + 1) * batch).min(count))
        .collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and evaluates `f(chunk_index, chunk)` on each, in
/// parallel across `workers` threads.
///
/// Chunk boundaries depend only on `chunk_len`, never on the worker count, so
/// a kernel whose output for each element is a pure function of that chunk's
/// input (no cross-chunk reductions) produces bit-identical results with 1 or
/// N workers. This is the in-place counterpart of [`parallel_map`], used by
/// the density-matrix kernels to fan out over row blocks.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates the panic of any task.
pub fn parallel_chunks_mut<T, F>(workers: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = effective_workers(workers).min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = lock_or_recover(&queue).next();
                match next {
                    Some((i, chunk)) => f(i, chunk),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_or_recover_survives_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        });
        assert!(m.is_poisoned());
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 8, "state stays usable after poison");
    }

    #[test]
    fn child_seeds_are_distinct_and_stable() {
        let master = 0xDEAD_BEEF;
        let a = child_seed(master, 0);
        let b = child_seed(master, 1);
        assert_ne!(a, b);
        assert_eq!(a, child_seed(master, 0), "pure function of (master, index)");
        assert_ne!(child_seed(master + 1, 0), a, "master changes every child");
    }

    #[test]
    fn derive_master_consumes_one_draw() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = derive_master(&mut a);
        let _ = b.gen::<u64>();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams stay aligned");
    }

    #[test]
    fn parallel_map_matches_serial_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let serial = parallel_map(1, &items, |i, &x| x * 2 + i as u64);
        let parallel = parallel_map(8, &items, |i, &x| x * 2 + i as u64);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 15);
    }

    #[test]
    fn parallel_map_with_child_rngs_is_schedule_independent() {
        let master = 42u64;
        let draw = |i: usize| child_rng(master, i as u64).gen::<f64>();
        let serial = parallel_map_indices(1, 64, draw);
        let wide = parallel_map_indices(16, 64, draw);
        assert_eq!(
            serial, wide,
            "per-task seeding removes scheduling sensitivity"
        );
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u32], |i, &x| x + i as u32), vec![9]);
    }

    #[test]
    fn effective_workers_resolves_zero_to_cores() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn heavy_fan_out_uses_all_slots_exactly_once() {
        let results = parallel_map_indices(0, 1000, |i| i);
        assert_eq!(results, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn batch_ranges_cover_all_indices_in_order() {
        for (count, batch) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (103, 32), (7, 1)] {
            let ranges = batch_ranges(count, batch);
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(
                flat,
                (0..count).collect::<Vec<_>>(),
                "count={count} batch={batch}"
            );
            for r in &ranges {
                assert!(r.len() <= batch && !r.is_empty());
            }
        }
    }

    #[test]
    fn chunks_mut_visits_every_element_once() {
        let mut data: Vec<u64> = (0..1027).collect();
        parallel_chunks_mut(8, &mut data, 64, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = x.wrapping_mul(3).wrapping_add(ci as u64);
            }
        });
        for (i, &x) in data.iter().enumerate() {
            let expect = (i as u64).wrapping_mul(3).wrapping_add((i / 64) as u64);
            assert_eq!(x, expect);
        }
    }

    #[test]
    fn chunks_mut_is_worker_count_independent() {
        let base: Vec<f64> = (0..512).map(|i| i as f64 * 0.37).collect();
        let run = |workers: usize| {
            let mut data = base.clone();
            parallel_chunks_mut(workers, &mut data, 33, |ci, chunk| {
                for x in chunk.iter_mut() {
                    *x = x.sin() + ci as f64;
                }
            });
            data
        };
        assert_eq!(run(1), run(7));
        assert_eq!(run(1), run(0));
    }

    #[test]
    fn chunks_mut_handles_empty_and_oversized_chunks() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(4, &mut empty, 16, |_, _| panic!("no chunks expected"));
        let mut small = vec![1u8, 2, 3];
        parallel_chunks_mut(4, &mut small, 100, |ci, chunk| {
            assert_eq!(ci, 0);
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert_eq!(small, vec![2, 3, 4]);
    }
}
