//! Long-lived bounded worker pool.
//!
//! [`parallel_map`](crate::parallel_map) fans a *known* batch out over scoped
//! threads and joins them before returning — the right shape for a single
//! characterization sweep, and the wrong one for a service that accepts jobs
//! over time. [`WorkerPool`] is the long-lived counterpart: a fixed set of
//! threads draining a bounded FIFO of boxed jobs.
//!
//! Design points, in the order a service cares about them:
//!
//! - **Bounded queue with explicit backpressure.** [`WorkerPool::try_submit`]
//!   never blocks; when the queue is at capacity it returns
//!   [`PoolRejection::QueueFull`] so the caller can shed load instead of
//!   growing without bound or deadlocking.
//! - **Panic isolation.** A job that panics never takes its worker thread
//!   down: the loop catches the unwind, counts it, and moves on. Callers
//!   that need the panic payload should wrap their own `catch_unwind`
//!   *inside* the job; the pool's catch is a backstop.
//! - **Pause/resume.** [`WorkerPool::pause`] stops workers from dequeuing
//!   (jobs already running finish) while submissions keep queueing up to the
//!   cap — the hook used for maintenance windows and for deterministically
//!   exercising the saturation path in tests.
//! - **Drain-then-shutdown.** [`WorkerPool::drain`] blocks until the queue is
//!   empty and nothing is in flight; [`WorkerPool::shutdown`] additionally
//!   rejects new work, lets queued jobs finish, and joins the threads.
//!
//! The pool is deliberately ignorant of results: jobs are `FnOnce() + Send`
//! and communicate through whatever channel the caller closed over. That
//! keeps the pool reusable for heterogeneous work (morph-serve runs whole
//! verification pipelines through it).

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::{effective_workers, lock_or_recover};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolRejection {
    /// The bounded queue is at capacity; retry later or shed the job.
    QueueFull {
        /// The configured capacity the queue was at.
        capacity: usize,
    },
    /// The pool is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for PoolRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolRejection::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            PoolRejection::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for PoolRejection {}

struct PoolState {
    queue: VecDeque<Job>,
    paused: bool,
    shutting_down: bool,
    in_flight: usize,
    panicked_jobs: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs (or shutdown / unpause).
    work_ready: Condvar,
    /// `drain` waits here for `queue.is_empty() && in_flight == 0`.
    idle: Condvar,
    capacity: usize,
}

/// A fixed-size thread pool draining a bounded FIFO of jobs.
///
/// See the [module docs](self) for the design. Dropping the pool performs a
/// graceful [`shutdown`](WorkerPool::shutdown).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (`0` = all available cores) serving a queue
    /// bounded at `queue_capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity == 0` — a pool that can never accept work
    /// is a configuration error, not a runtime condition.
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        assert!(queue_capacity > 0, "queue_capacity must be positive");
        let workers = effective_workers(workers);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                paused: false,
                shutting_down: false,
                in_flight: 0,
                panicked_jobs: 0,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            capacity: queue_capacity,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        lock_or_recover(&self.shared.state).queue.len()
    }

    /// Jobs currently executing on worker threads.
    pub fn in_flight(&self) -> usize {
        lock_or_recover(&self.shared.state).in_flight
    }

    /// Jobs whose unwind was caught by the pool's panic backstop.
    pub fn panicked_jobs(&self) -> u64 {
        lock_or_recover(&self.shared.state).panicked_jobs
    }

    /// Enqueues a job without blocking.
    ///
    /// Returns [`PoolRejection::QueueFull`] when the queue is at capacity and
    /// [`PoolRejection::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// began; in both cases the job is dropped unexecuted.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolRejection>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = lock_or_recover(&self.shared.state);
        if state.shutting_down {
            return Err(PoolRejection::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(PoolRejection::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Stops workers from dequeuing new jobs; running jobs finish normally.
    /// Submissions are still accepted up to the queue cap.
    pub fn pause(&self) {
        lock_or_recover(&self.shared.state).paused = true;
    }

    /// Resumes dequeuing after [`pause`](Self::pause).
    pub fn resume(&self) {
        let mut state = lock_or_recover(&self.shared.state);
        state.paused = false;
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Blocks until the queue is empty and no job is in flight.
    ///
    /// Note: a paused pool with queued jobs never drains — resume first.
    pub fn drain(&self) {
        let mut state = lock_or_recover(&self.shared.state);
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Graceful shutdown: rejects new submissions, runs every queued job to
    /// completion, then joins the worker threads.
    ///
    /// Clears any active [`pause`](Self::pause) so queued work can drain.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut state = lock_or_recover(&self.shared.state);
        state.shutting_down = true;
        state.paused = false;
        drop(state);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = lock_or_recover(&self.shared.state);
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("capacity", &self.shared.capacity)
            .field("queue_depth", &state.queue.len())
            .field("in_flight", &state.in_flight)
            .field("paused", &state.paused)
            .field("shutting_down", &state.shutting_down)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_or_recover(&shared.state);
            loop {
                if !state.paused {
                    if let Some(job) = state.queue.pop_front() {
                        state.in_flight += 1;
                        break job;
                    }
                    if state.shutting_down {
                        return;
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        let outcome = catch_unwind(AssertUnwindSafe(job));

        let mut state = lock_or_recover(&shared.state);
        state.in_flight -= 1;
        if outcome.is_err() {
            state.panicked_jobs += 1;
        }
        let idle_now = state.queue.is_empty() && state.in_flight == 0;
        drop(state);
        if idle_now {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        pool.shutdown();
    }

    #[test]
    fn pause_holds_jobs_and_saturation_rejects() {
        let pool = WorkerPool::new(2, 3);
        pool.pause();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(pool.queue_depth(), 3);
        let rejection = pool.try_submit(|| {}).unwrap_err();
        assert_eq!(rejection, PoolRejection::QueueFull { capacity: 3 });
        assert_eq!(counter.load(Ordering::Relaxed), 0, "paused: nothing ran");
        pool.resume();
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(|| panic!("job detonates")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(rx.recv().unwrap(), 42, "worker survived the panic");
        pool.drain();
        assert_eq!(pool.panicked_jobs(), 1);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let pool = WorkerPool::new(1, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.begin_shutdown();
        assert_eq!(
            pool.try_submit(|| {}).unwrap_err(),
            PoolRejection::ShuttingDown
        );
        pool.shutdown();
        assert_eq!(
            counter.load(Ordering::Relaxed),
            10,
            "graceful shutdown runs all queued jobs"
        );
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 8);
            for _ in 0..6 {
                let counter = Arc::clone(&counter);
                pool.try_submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let result = std::panic::catch_unwind(|| WorkerPool::new(1, 0));
        assert!(result.is_err());
    }
}
