//! Proj: projection-based runtime assertions (Li et al., OOPSLA'20).
//!
//! A Proj assertion claims the runtime state lies inside the subspace
//! spanned by a set of basis vectors. On hardware the projector is
//! measured by a synthesized circuit block; the assertion holds when every
//! shot lands inside the subspace. Like NDD it is phase-sensitive within
//! its subspace test, but it supports only the `Equal`/`In` comparison and
//! emits no diagnostic information on failure (Table 2's "No"
//! interpretability entry).

use morph_linalg::{CMatrix, C64};
use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;
use rand::Rng;

use crate::detector::{BugDetector, DetectionResult};
use crate::ndd::ndd_synthesis_gate_cost;

/// A subspace assertion: the state at the end of the program (restricted
/// to `qubits`) must lie in the span of `basis_kets`.
#[derive(Debug, Clone)]
pub struct ProjAssertion {
    /// Shots per tested input.
    pub shots: usize,
    /// Probability mass outside the subspace above which the assertion is
    /// reported violated (absorbs sampling noise).
    pub leak_threshold: f64,
}

impl Default for ProjAssertion {
    fn default() -> Self {
        ProjAssertion {
            shots: 1000,
            leak_threshold: 0.02,
        }
    }
}

impl ProjAssertion {
    /// Builds the projector `Σ |v⟩⟨v|` from basis kets.
    ///
    /// # Panics
    ///
    /// Panics if the kets are empty or differ in dimension.
    pub fn projector(basis_kets: &[Vec<C64>]) -> CMatrix {
        assert!(!basis_kets.is_empty(), "empty subspace basis");
        let d = basis_kets[0].len();
        let mut p = CMatrix::zeros(d, d);
        for ket in basis_kets {
            assert_eq!(ket.len(), d, "inconsistent ket dimensions");
            p += &CMatrix::outer(ket, ket);
        }
        p
    }

    /// Checks the assertion for one input: runs the program, measures the
    /// projector with `shots` simulated shots, and reports the estimated
    /// leakage outside the subspace. Costs are recorded (the projector
    /// circuit pays the synthesis gate count).
    pub fn leakage(
        &self,
        program: &Circuit,
        input: &StateVector,
        projector: &CMatrix,
        qubits: &[usize],
        ledger: &mut CostLedger,
        rng: &mut StdRng,
    ) -> f64 {
        let executor = Executor::default();
        let out = executor.run_trajectory(program, input, rng).final_state;
        let rho = out.reduced_density_matrix(qubits);
        let inside = morph_linalg::trace_product(projector, &rho)
            .re
            .clamp(0.0, 1.0);
        let ops = program.op_cost() as u64 + ndd_synthesis_gate_cost(qubits.len());
        ledger.record_execution(self.shots as u64, ops);
        // Binomial shot noise on the inside/outside split.
        let mut hits = 0usize;
        for _ in 0..self.shots {
            if rng.gen::<f64>() < inside {
                hits += 1;
            }
        }
        1.0 - hits as f64 / self.shots as f64
    }
}

impl BugDetector for ProjAssertion {
    fn name(&self) -> &'static str {
        "Proj"
    }

    /// Reference-vs-candidate detection: for each random basis input, the
    /// asserted subspace is the 1-dimensional span of the reference
    /// output; the candidate must not leak out of it.
    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let n = reference.n_qubits();
        let dim = 1usize << n;
        let qubits: Vec<usize> = (0..n).collect();
        let executor = Executor::default();
        let mut ledger = CostLedger::new();
        for _ in 0..budget {
            let basis = rng.gen_range(0..dim);
            let input = StateVector::basis_state(n, basis);
            let expected = executor.run_trajectory(reference, &input, rng).final_state;
            let projector = Self::projector(&[expected.amplitudes().to_vec()]);
            let leak = self.leakage(candidate, &input, &projector, &qubits, &mut ledger, rng);
            if leak > self.leak_threshold {
                return DetectionResult::found(basis, ledger);
            }
        }
        DetectionResult::not_found(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn projector_is_idempotent() {
        let kets = vec![
            vec![C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
            vec![C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
        ];
        let p = ProjAssertion::projector(&kets);
        assert!(p.matmul(&p).approx_eq(&p, 1e-12));
        assert!((p.trace().re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn state_inside_subspace_has_no_leakage() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ledger = CostLedger::new();
        // Bell output is inside the {|00>, |11>} subspace.
        let kets = vec![
            vec![C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
            vec![C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
        ];
        let p = ProjAssertion::projector(&kets);
        let leak = ProjAssertion::default().leakage(
            &bell(),
            &StateVector::zero_state(2),
            &p,
            &[0, 1],
            &mut ledger,
            &mut rng,
        );
        assert!(leak < 0.01, "leakage {leak}");
        assert_eq!(ledger.executions, 1);
    }

    #[test]
    fn state_outside_subspace_leaks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ledger = CostLedger::new();
        // Assert the output should be in span{|01>, |10>} — it is not.
        let kets = vec![
            vec![C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
            vec![C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
        ];
        let p = ProjAssertion::projector(&kets);
        let leak = ProjAssertion::default().leakage(
            &bell(),
            &StateVector::zero_state(2),
            &p,
            &[0, 1],
            &mut ledger,
            &mut rng,
        );
        assert!(leak > 0.9, "leakage {leak}");
    }

    #[test]
    fn detects_phase_bug_like_ndd() {
        let mut reference = Circuit::new(1);
        reference.h(0);
        let mut buggy = Circuit::new(1);
        buggy.h(0);
        buggy.z(0);
        let mut rng = StdRng::seed_from_u64(2);
        let result = ProjAssertion::default().detect(&reference, &buggy, 5, &mut rng);
        assert!(result.bug_found, "Proj's subspace test is phase-sensitive");
    }

    #[test]
    fn identical_programs_pass() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = ProjAssertion::default().detect(&bell(), &bell(), 5, &mut rng);
        assert!(!result.bug_found);
        // Synthesis ops dominate, as in NDD.
        assert!(result.ledger.quantum_ops > 1000);
    }
}
