//! NDD: non-destructive discrimination assertions (Liu & Zhou, HPCA'21).
//!
//! Injects discrimination circuitry that checks whether the runtime state
//! equals an expected (possibly mixed) state — phase-sensitive, unlike
//! Stat/Quito, but each check costs synthesized projection unitaries whose
//! gate count grows exponentially with the asserted register (the
//! `2.8 × 10¹⁰`-operation rows of Table 4).

use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;
use rand::Rng;

use crate::detector::{BugDetector, DetectionResult};

/// Gate count of synthesizing the discrimination unitary for an `n`-qubit
/// assertion — the exponential term in NDD's overhead model. Calibrated so
/// a 9-qubit check costs ≈ 2.1 × 10⁴ gates as the paper reports for the
/// state-of-the-art synthesizer.
pub fn ndd_synthesis_gate_cost(n_qubits: usize) -> u64 {
    // 4^n / 12.5 ≈ 2.1e4 at n = 9.
    ((4f64.powi(n_qubits as i32)) / 12.5).ceil() as u64
}

/// The NDD detector.
#[derive(Debug, Clone)]
pub struct NddAssertion {
    /// Shots per discrimination.
    pub shots: usize,
    /// Fidelity below which the state is flagged as different.
    pub fidelity_threshold: f64,
}

impl Default for NddAssertion {
    fn default() -> Self {
        NddAssertion {
            shots: 1000,
            fidelity_threshold: 0.99,
        }
    }
}

impl NddAssertion {
    /// Exhaustive basis-grid variant used for Fig 7 / Fig 10 sweeps.
    pub fn search_until_found(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        rng: &mut StdRng,
    ) -> DetectionResult {
        self.detect_grid(reference, candidate, 1usize << reference.n_qubits(), rng)
    }

    fn check_one(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        basis: usize,
        ledger: &mut CostLedger,
        rng: &mut StdRng,
    ) -> bool {
        let n = reference.n_qubits();
        let input = StateVector::basis_state(n, basis);
        let executor = Executor::default();
        let expected = executor.run_trajectory(reference, &input, rng).final_state;
        let observed = executor.run_trajectory(candidate, &input, rng).final_state;
        // The discrimination circuit is run `shots` times; each shot pays
        // the program plus the synthesized discrimination unitary.
        let ops = candidate.op_cost() as u64 + ndd_synthesis_gate_cost(n);
        ledger.record_execution(self.shots as u64, ops);
        // Discrimination outcome: overlap estimated to shot precision.
        // Both trajectories are pure, so the fidelity is the squared
        // state-vector overlap (O(2^n) instead of an eigendecomposition).
        let overlap = expected.overlap(&observed);
        let sampling_sigma = (overlap * (1.0 - overlap) / self.shots as f64).sqrt();
        let noisy_overlap = overlap + sampling_sigma * gaussian(rng);
        noisy_overlap < self.fidelity_threshold
    }

    fn detect_grid(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let dim = 1usize << reference.n_qubits();
        let mut ledger = CostLedger::new();
        for basis in 0..budget.min(dim) {
            if self.check_one(reference, candidate, basis, &mut ledger, rng) {
                return DetectionResult::found(basis, ledger);
            }
        }
        DetectionResult::not_found(ledger)
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl BugDetector for NddAssertion {
    fn name(&self) -> &'static str {
        "NDD"
    }

    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let dim = 1usize << reference.n_qubits();
        let mut ledger = CostLedger::new();
        for _ in 0..budget {
            let basis = rng.gen_range(0..dim);
            if self.check_one(reference, candidate, basis, &mut ledger, rng) {
                return DetectionResult::found(basis, ledger);
            }
        }
        DetectionResult::not_found(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn synthesis_cost_matches_paper_anchor() {
        let c9 = ndd_synthesis_gate_cost(9);
        assert!(
            (15_000..30_000).contains(&c9),
            "9-qubit cost {c9} should be ≈ 2.1e4"
        );
        assert!(ndd_synthesis_gate_cost(5) < ndd_synthesis_gate_cost(7));
    }

    #[test]
    fn phase_bug_is_detected() {
        // The bug Stat misses: Z after H.
        let mut reference = Circuit::new(1);
        reference.h(0);
        let mut buggy = Circuit::new(1);
        buggy.h(0);
        buggy.z(0);
        let mut rng = StdRng::seed_from_u64(0);
        let result = NddAssertion::default().detect(&reference, &buggy, 5, &mut rng);
        assert!(result.bug_found, "NDD sees phase errors");
    }

    #[test]
    fn identical_programs_pass_with_exponential_cost() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let result = NddAssertion::default().detect(&c, &c, 5, &mut rng);
        assert!(!result.bug_found);
        // 5 inputs × 1000 shots × (ops + synthesis) — dominated by synthesis.
        assert!(result.ledger.quantum_ops > 5_000 * ndd_synthesis_gate_cost(3) / 2);
    }

    #[test]
    fn single_counterexample_lock_usually_escapes_budgeted_ndd() {
        // 6-qubit lock, one bug key among 32 inputs, budget 5 random inputs.
        use morph_qalgo::QuantumLock;
        let lock = QuantumLock::new(6, 0b00001);
        let reference = lock.circuit();
        let buggy = lock.circuit_with_bug(0b11110);
        let mut misses = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = NddAssertion::default().detect(&reference, &buggy, 5, &mut rng);
            if !result.bug_found {
                misses += 1;
            }
        }
        assert!(
            misses >= 5,
            "budgeted NDD should usually miss the lone bug key, missed {misses}/10"
        );
    }
}
