//! Expressiveness matrices for Tables 2 and 5.
//!
//! Each capability claim in the paper's qualitative comparison is encoded
//! as data here and backed by a concrete probe in this crate's tests (e.g.
//! "Stat cannot see phase errors" is demonstrated in `stat::tests`).

use serde::{Deserialize, Serialize};

/// Degree to which a technique supports a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// Fully supported.
    Full,
    /// Partially supported.
    Part,
    /// Not supported.
    No,
}

impl std::fmt::Display for Support {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Support::Full => write!(f, "Full"),
            Support::Part => write!(f, "Part"),
            Support::No => write!(f, "No"),
        }
    }
}

/// One row of an expressiveness table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpressivenessRow {
    /// Technique name.
    pub technique: &'static str,
    /// What object the technique verifies.
    pub verified_object: &'static str,
    /// Supported comparison types.
    pub comparison: &'static str,
    /// Interpretability of failures.
    pub interpretability: Support,
    /// Ability to debug circuits with measurement feedback.
    pub feedback: Support,
}

/// Table 2: assertion-based techniques.
pub fn assertion_expressiveness() -> Vec<ExpressivenessRow> {
    vec![
        ExpressivenessRow {
            technique: "Stat",
            verified_object: "Probability distribution",
            comparison: "Part",
            interpretability: Support::Part,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "Proj",
            verified_object: "Mixed state",
            comparison: "Equal & In",
            interpretability: Support::No,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "NDD",
            verified_object: "Mixed state",
            comparison: "Equal & In",
            interpretability: Support::No,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "SR",
            verified_object: "Mixed state",
            comparison: "Equal & In",
            interpretability: Support::No,
            feedback: Support::Full,
        },
        ExpressivenessRow {
            technique: "MorphQPV",
            verified_object: "Mixed state & Evolution",
            comparison: "Full",
            interpretability: Support::Full,
            feedback: Support::Full,
        },
    ]
}

/// Table 5: deductive techniques.
pub fn deductive_expressiveness() -> Vec<ExpressivenessRow> {
    vec![
        ExpressivenessRow {
            technique: "KNA",
            verified_object: "Expectation",
            comparison: "Equal or greater",
            interpretability: Support::Part,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "Twist",
            verified_object: "Purity",
            comparison: "Equal",
            interpretability: Support::No,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "QHL",
            verified_object: "Expectation",
            comparison: "Equal or greater",
            interpretability: Support::Part,
            feedback: Support::No,
        },
        ExpressivenessRow {
            technique: "MorphQPV",
            verified_object: "Mixed state & Evolution",
            comparison: "Full",
            interpretability: Support::Full,
            feedback: Support::Full,
        },
    ]
}

/// Renders rows as an aligned text table (used by the `table2`/`table5`
/// binaries).
pub fn render_table(rows: &[ExpressivenessRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<26} {:<18} {:<16} {:<8}\n",
        "Technique", "Verified object", "Comparison", "Interpretability", "Feedback"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:<26} {:<18} {:<16} {:<8}\n",
            row.technique,
            row.verified_object,
            row.comparison,
            row.interpretability.to_string(),
            row.feedback.to_string()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shape() {
        let t2 = assertion_expressiveness();
        assert_eq!(t2.len(), 5);
        assert_eq!(t2.last().unwrap().technique, "MorphQPV");
        let t5 = deductive_expressiveness();
        assert_eq!(t5.len(), 4);
    }

    #[test]
    fn morphqpv_dominates_on_every_column() {
        for table in [assertion_expressiveness(), deductive_expressiveness()] {
            let morph = table.iter().find(|r| r.technique == "MorphQPV").unwrap();
            assert_eq!(morph.interpretability, Support::Full);
            assert_eq!(morph.feedback, Support::Full);
            assert_eq!(morph.comparison, "Full");
        }
    }

    #[test]
    fn rendering_contains_all_rows() {
        let text = render_table(&assertion_expressiveness());
        for name in ["Stat", "Proj", "NDD", "SR", "MorphQPV"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
