//! Common interface for baseline bug detectors.
//!
//! Every baseline in the paper's comparison answers the same question:
//! given a reference program (the spec) and a candidate program (possibly
//! mutated), does testing with a bounded input budget expose a difference?
//! [`BugDetector`] captures that shape; the cost of the attempt lands in a
//! [`CostLedger`].

use morph_qprog::Circuit;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;

/// Result of one detection attempt.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// `true` if the detector flagged a difference (a bug).
    pub bug_found: bool,
    /// Basis input that exposed the bug, when applicable.
    pub witness_input: Option<usize>,
    /// Execution cost of the attempt.
    pub ledger: CostLedger,
}

impl DetectionResult {
    /// A negative result carrying only costs.
    pub fn not_found(ledger: CostLedger) -> Self {
        DetectionResult {
            bug_found: false,
            witness_input: None,
            ledger,
        }
    }

    /// A positive result with its witness and costs.
    pub fn found(witness_input: usize, ledger: CostLedger) -> Self {
        DetectionResult {
            bug_found: true,
            witness_input: Some(witness_input),
            ledger,
        }
    }
}

/// A baseline verification method.
pub trait BugDetector {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Tests `candidate` against `reference` with at most `budget` inputs.
    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult;

    /// `true` if the method can express the check this benchmark needs;
    /// detectors that cannot (e.g. NDD on QNN's expectation comparison)
    /// are reported as "/" in Table 4.
    fn supports_expectation_checks(&self) -> bool {
        false
    }
}
