//! Twist-style purity checking (Yuan et al., POPL'22).
//!
//! Twist reasons about purity and entanglement by classically simulating
//! the program; its verified object is the *purity* of designated qubits.
//! Bugs that preserve purity (most phase bugs in QNN/XEB) are invisible,
//! and the simulation cost grows exponentially — both effects the Table 6
//! comparison reports.

use std::time::Instant;

use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;

/// Result of a purity check.
#[derive(Debug, Clone, PartialEq)]
pub struct PurityCheck {
    /// Purity of the checked qubits at the end of the program.
    pub purity: f64,
    /// Whether the purity matches the expectation within tolerance.
    pub consistent: bool,
    /// Wall-clock seconds the classical simulation took.
    pub elapsed_seconds: f64,
}

/// The Twist-like checker.
#[derive(Debug, Clone)]
pub struct TwistChecker {
    /// Tolerance on the purity comparison.
    pub tolerance: f64,
}

impl Default for TwistChecker {
    fn default() -> Self {
        TwistChecker { tolerance: 1e-6 }
    }
}

impl TwistChecker {
    /// Checks that the qubits' purity at the end of `circuit` (run from
    /// `|0…0⟩`) equals `expected_purity`, by exact classical simulation.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty or out of range.
    pub fn check_purity(
        &self,
        circuit: &Circuit,
        qubits: &[usize],
        expected_purity: f64,
    ) -> PurityCheck {
        assert!(!qubits.is_empty(), "no qubits to check");
        let start = Instant::now();
        let mut instrumented = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
        instrumented.extend_from(circuit);
        instrumented.tracepoint(u32::MAX, qubits);
        let record = Executor::default()
            .run_expected(&instrumented, &StateVector::zero_state(circuit.n_qubits()));
        let rho = record.state(TracepointId(u32::MAX));
        let purity = morph_linalg::purity(rho);
        PurityCheck {
            purity,
            consistent: (purity - expected_purity).abs() <= self.tolerance,
            elapsed_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Whether Twist's purity lens can distinguish the candidate from the
    /// reference at all (used for the "/" rows: if the purity agrees, the
    /// bug is out of scope for Twist).
    pub fn can_distinguish(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        qubits: &[usize],
    ) -> bool {
        let a = self.check_purity(reference, qubits, 1.0).purity;
        let b = self.check_purity(candidate, qubits, 1.0).purity;
        (a - b).abs() > self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_output_detected_as_pure() {
        let mut c = Circuit::new(2);
        c.h(0);
        let check = TwistChecker::default().check_purity(&c, &[0], 1.0);
        assert!(
            check.consistent,
            "H|0> is pure, got purity {}",
            check.purity
        );
    }

    #[test]
    fn entangled_qubit_is_mixed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let check = TwistChecker::default().check_purity(&c, &[0], 0.5);
        assert!(
            check.consistent,
            "half a Bell pair has purity 1/2, got {}",
            check.purity
        );
    }

    #[test]
    fn entanglement_bug_is_distinguishable() {
        // Forgetting the CX leaves qubit 0 pure — Twist can see that.
        let mut good = Circuit::new(2);
        good.h(0).cx(0, 1);
        let mut bad = Circuit::new(2);
        bad.h(0);
        assert!(TwistChecker::default().can_distinguish(&good, &bad, &[0]));
    }

    #[test]
    fn phase_bug_is_out_of_scope() {
        // A phase error that keeps qubit 0 pure: Twist cannot distinguish.
        let mut good = Circuit::new(2);
        good.h(0);
        let mut bad = Circuit::new(2);
        bad.h(0);
        bad.z(0);
        assert!(!TwistChecker::default().can_distinguish(&good, &bad, &[0]));
    }

    #[test]
    fn elapsed_time_is_reported() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let check = TwistChecker::default().check_purity(&c, &[0, 1], 1.0);
        assert!(check.elapsed_seconds >= 0.0);
    }
}
