//! Quito: coverage-guided grid search over the input space (Wang et al.,
//! ASE'21).
//!
//! Systematically enumerates computational-basis inputs and compares the
//! measured output distribution against the expected one. Coverage of the
//! continuous Hilbert space via a discrete grid is exactly the weakness
//! MorphQPV's input-independent validation removes: the number of
//! executions to hit a single bad input grows with `2^N`.

use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;

use crate::detector::{BugDetector, DetectionResult};
use crate::stat::chi_square;
use crate::sweep::{sweep_until_found, TrialOutcome};

/// The Quito detector.
///
/// Grid points are independent trials, swept in parallel waves (see
/// [`sweep_until_found`]): the verdict, witness, and ledger are identical
/// at every `parallelism` setting, and the ledger charges only the grid
/// points a serial search would have visited.
#[derive(Debug, Clone)]
pub struct QuitoSearch {
    /// Shots per grid point.
    pub shots: usize,
    /// Chi-square threshold per degree of freedom.
    pub threshold_per_dof: f64,
    /// Worker threads for the grid sweep (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for QuitoSearch {
    fn default() -> Self {
        QuitoSearch {
            shots: 1000,
            threshold_per_dof: 5.0,
            parallelism: 0,
        }
    }
}

impl QuitoSearch {
    /// Exhaustive grid search until a bug is found or the whole basis grid
    /// is covered. Returns the result plus the number of grid points
    /// visited — the quantity plotted in Fig 7 / Fig 10.
    pub fn search_until_found(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        rng: &mut StdRng,
    ) -> DetectionResult {
        self.detect(reference, candidate, 1usize << reference.n_qubits(), rng)
    }
}

impl BugDetector for QuitoSearch {
    fn name(&self) -> &'static str {
        "Quito"
    }

    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let n = reference.n_qubits();
        let dim = 1usize << n;
        let executor = Executor::default();
        let ops = candidate.op_cost() as u64;
        let dof = (dim - 1).max(1) as f64;
        let master = morph_parallel::derive_master(rng);
        let (witness, ledger) = sweep_until_found(self.parallelism, budget.min(dim), |basis| {
            let mut task_rng = morph_parallel::child_rng(master, basis as u64);
            let input = StateVector::basis_state(n, basis);
            let expected = executor
                .run_trajectory(reference, &input, &mut task_rng)
                .final_state
                .probabilities();
            let counts = executor.sample_counts(candidate, &input, self.shots, &mut task_rng);
            let mut local = CostLedger::new();
            local.record_execution(self.shots as u64, ops);
            TrialOutcome {
                ledger: local,
                bug: chi_square(&expected, &counts) > self.threshold_per_dof * dof,
                witness: basis,
            }
        });
        match witness {
            Some(basis) => DetectionResult::found(basis, ledger),
            None => DetectionResult::not_found(ledger),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qalgo::QuantumLock;
    use rand::SeedableRng;

    #[test]
    fn grid_search_finds_the_unexpected_key() {
        // 4-qubit lock with key 001 and bug key 110 — Fig 1(a).
        let lock = QuantumLock::new(4, 0b001);
        let reference = lock.circuit();
        let buggy = lock.circuit_with_bug(0b110);
        let mut rng = StdRng::seed_from_u64(0);
        let result = QuitoSearch::default().search_until_found(&reference, &buggy, &mut rng);
        assert!(result.bug_found);
        // The witness is the buggy key on the input register (qubits 1..4),
        // i.e. basis 0b0110 = 6 (output qubit 0 is the MSB and stays 0).
        assert_eq!(result.witness_input, Some(0b0110));
        // Grid order means it had to walk past the earlier keys first.
        assert_eq!(result.ledger.executions, 7);
    }

    #[test]
    fn budget_limits_coverage() {
        let lock = QuantumLock::new(4, 0b001);
        let reference = lock.circuit();
        let buggy = lock.circuit_with_bug(0b110);
        let mut rng = StdRng::seed_from_u64(1);
        // Budget of 3 grid points cannot reach input 6.
        let result = QuitoSearch::default().detect(&reference, &buggy, 3, &mut rng);
        assert!(!result.bug_found);
        assert_eq!(result.ledger.executions, 3);
    }

    #[test]
    fn clean_program_passes_full_grid() {
        let lock = QuantumLock::new(3, 0b10);
        let mut rng = StdRng::seed_from_u64(2);
        let result =
            QuitoSearch::default().search_until_found(&lock.circuit(), &lock.circuit(), &mut rng);
        assert!(!result.bug_found);
        assert_eq!(result.ledger.executions, 8);
    }
}
