//! Automata-style support analysis (Chen et al., PLDI'23 flavor).
//!
//! The tree-automata framework verifies quantum circuits by tracking sets
//! of basis states symbolically. Our stand-in propagates the *support set*
//! (basis states with non-zero amplitude) through the circuit: exact for
//! permutation-ish gates, over-approximate for superposing gates. It can
//! prove support-style specs quickly (polynomial in the support size) but
//! cannot express expectation-value specs — the reason the QNN rows of
//! Table 6 are "/".

use std::collections::BTreeSet;
use std::time::Instant;

use morph_qprog::{Circuit, Instruction};
use morph_qsim::Gate;

/// Result of a support-set analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportAnalysis {
    /// Basis states possibly carrying amplitude at the end of the program.
    pub support: BTreeSet<usize>,
    /// Whether any over-approximation was introduced (a non-classical gate
    /// widened the support).
    pub exact: bool,
}

/// The support-propagation checker.
#[derive(Debug, Clone, Default)]
pub struct AutomataChecker;

impl AutomataChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        AutomataChecker
    }

    /// Propagates a support set through the program.
    ///
    /// # Panics
    ///
    /// Panics on mid-circuit measurement or feedback (outside this
    /// analysis' fragment, like the original tool's supported subset).
    pub fn propagate(&self, circuit: &Circuit, initial: &BTreeSet<usize>) -> SupportAnalysis {
        let n = circuit.n_qubits();
        let mut support = initial.clone();
        let mut exact = true;
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    let (next, was_exact) = apply_gate_support(g, &support, n);
                    support = next;
                    exact &= was_exact;
                }
                Instruction::Tracepoint { .. } | Instruction::Barrier => {}
                other => panic!("support analysis does not handle {other:?}"),
            }
        }
        SupportAnalysis { support, exact }
    }

    /// Verifies that the program's output support is contained in
    /// `allowed` for the given initial support; returns `(verdict,
    /// elapsed_seconds)`.
    pub fn check_support(
        &self,
        circuit: &Circuit,
        initial: &BTreeSet<usize>,
        allowed: &BTreeSet<usize>,
    ) -> (bool, f64) {
        let start = Instant::now();
        let analysis = self.propagate(circuit, initial);
        (
            analysis.support.is_subset(allowed),
            start.elapsed().as_secs_f64(),
        )
    }
}

/// Applies one gate to a support set. Returns the new support and whether
/// the step was exact.
fn apply_gate_support(gate: &Gate, support: &BTreeSet<usize>, n: usize) -> (BTreeSet<usize>, bool) {
    let bit = |q: usize| 1usize << (n - 1 - q);
    let mut out = BTreeSet::new();
    match gate {
        // Diagonal gates never change the support.
        Gate::Z(_)
        | Gate::S(_)
        | Gate::Sdg(_)
        | Gate::T(_)
        | Gate::Tdg(_)
        | Gate::RZ(..)
        | Gate::Phase(..)
        | Gate::CZ(..)
        | Gate::CRZ(..)
        | Gate::CPhase(..)
        | Gate::MCZ(_) => (support.clone(), true),
        Gate::X(q) => {
            for &s in support {
                out.insert(s ^ bit(*q));
            }
            (out, true)
        }
        Gate::Y(q) => {
            for &s in support {
                out.insert(s ^ bit(*q));
            }
            (out, true)
        }
        Gate::CX(c, t) => {
            for &s in support {
                out.insert(if s & bit(*c) != 0 { s ^ bit(*t) } else { s });
            }
            (out, true)
        }
        Gate::CCX(c1, c2, t) => {
            for &s in support {
                let fire = s & bit(*c1) != 0 && s & bit(*c2) != 0;
                out.insert(if fire { s ^ bit(*t) } else { s });
            }
            (out, true)
        }
        Gate::Swap(a, b) => {
            for &s in support {
                let (ba, bb) = (s & bit(*a) != 0, s & bit(*b) != 0);
                let mut v = s & !(bit(*a) | bit(*b));
                if ba {
                    v |= bit(*b);
                }
                if bb {
                    v |= bit(*a);
                }
                out.insert(v);
            }
            (out, true)
        }
        // Superposing single-qubit gates: branch on the touched qubit.
        Gate::H(q) | Gate::RX(q, _) | Gate::RY(q, _) => {
            for &s in support {
                out.insert(s);
                out.insert(s ^ bit(*q));
            }
            (out, false)
        }
        // Controlled rotations that can move population.
        Gate::MCRX(cs, t, _) | Gate::MCRY(cs, t, _) => {
            let cmask: usize = cs.iter().map(|&c| bit(c)).sum();
            for &s in support {
                out.insert(s);
                if s & cmask == cmask {
                    out.insert(s ^ bit(*t));
                }
            }
            (out, false)
        }
        Gate::Unitary(qs, _) => {
            // Worst case: full branching over the touched qubits.
            let masks: Vec<usize> = qs.iter().map(|&q| bit(q)).collect();
            for &s in support {
                let k = masks.len();
                for pattern in 0..(1usize << k) {
                    let mut v = s;
                    for (i, &m) in masks.iter().enumerate() {
                        if pattern >> i & 1 == 1 {
                            v ^= m;
                        }
                    }
                    // Set or clear? XOR enumerates all combinations given
                    // the 2^k flips — cover every assignment.
                    out.insert(v);
                }
            }
            (out, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singleton(v: usize) -> BTreeSet<usize> {
        let mut s = BTreeSet::new();
        s.insert(v);
        s
    }

    #[test]
    fn classical_gates_permute_support_exactly() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let analysis = AutomataChecker::new().propagate(&c, &singleton(0));
        assert!(analysis.exact);
        assert_eq!(analysis.support, singleton(0b11));
    }

    #[test]
    fn hadamard_widens_support() {
        let mut c = Circuit::new(2);
        c.h(0);
        let analysis = AutomataChecker::new().propagate(&c, &singleton(0));
        assert!(!analysis.exact);
        assert_eq!(analysis.support.len(), 2);
    }

    #[test]
    fn diagonal_gates_keep_support() {
        let mut c = Circuit::new(2);
        c.z(0).s(1).cz(0, 1).t(0);
        let analysis = AutomataChecker::new().propagate(&c, &singleton(0b10));
        assert!(analysis.exact);
        assert_eq!(analysis.support, singleton(0b10));
    }

    #[test]
    fn ghz_support_is_contained_in_expected() {
        let c = morph_qalgo::ghz(3);
        let checker = AutomataChecker::new();
        let allowed: BTreeSet<usize> = (0..8).collect();
        let (ok, elapsed) = checker.check_support(&c, &singleton(0), &allowed);
        assert!(ok);
        assert!(elapsed >= 0.0);
        // Tighter spec: GHZ from |000> only ever occupies a superset of
        // {000, 111}; the over-approximation must still include them.
        let analysis = checker.propagate(&c, &singleton(0));
        assert!(analysis.support.contains(&0));
        assert!(analysis.support.contains(&7));
    }

    #[test]
    fn support_escape_detected() {
        // A stray X pushes the support outside the allowed set.
        let mut c = Circuit::new(2);
        c.x(1);
        let allowed = singleton(0);
        let (ok, _) = AutomataChecker::new().check_support(&c, &singleton(0), &allowed);
        assert!(!ok);
    }

    #[test]
    #[should_panic(expected = "does not handle")]
    fn measurement_is_out_of_fragment() {
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        let _ = AutomataChecker::new().propagate(&c, &singleton(0));
    }
}
