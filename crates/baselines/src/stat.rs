//! Stat: statistical assertions (Huang & Martonosi, ISCA'19).
//!
//! Validates measured output *probability distributions* with a chi-square
//! test against the expected distribution. Amplitude-only: phase errors
//! that leave the distribution unchanged are invisible (the root of Stat's
//! low success rate on QL/XEB in Table 4).

use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;
use rand::Rng;

use crate::detector::{BugDetector, DetectionResult};
use crate::sweep::{sweep_until_found, TrialOutcome};

/// Chi-square statistic of observed counts against expected probabilities.
///
/// Cells with expected probability below `1e-9` are merged into a floor to
/// keep the statistic finite.
///
/// # Panics
///
/// Panics if lengths differ or no shots were taken.
pub fn chi_square(expected: &[f64], counts: &[usize]) -> f64 {
    assert_eq!(expected.len(), counts.len(), "distribution length mismatch");
    let shots: usize = counts.iter().sum();
    assert!(shots > 0, "no samples");
    let mut stat = 0.0;
    for (&p, &c) in expected.iter().zip(counts) {
        let e = (p * shots as f64).max(1e-9 * shots as f64);
        let diff = c as f64 - e;
        stat += diff * diff / e;
    }
    stat
}

/// The Stat detector.
///
/// Trials are independent (each draws its own random basis input from a
/// per-trial seed-split RNG stream), so they sweep in parallel waves with a
/// verdict, witness, and ledger identical at every `parallelism` setting.
#[derive(Debug, Clone)]
pub struct StatAssertion {
    /// Shots per tested input.
    pub shots: usize,
    /// Chi-square threshold per degree of freedom above which the
    /// distribution is flagged.
    pub threshold_per_dof: f64,
    /// Worker threads for the trial sweep (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for StatAssertion {
    fn default() -> Self {
        // ~3.8 is the 95 % point of χ²(1); scaled per degree of freedom.
        StatAssertion {
            shots: 1000,
            threshold_per_dof: 5.0,
            parallelism: 0,
        }
    }
}

impl BugDetector for StatAssertion {
    fn name(&self) -> &'static str {
        "Stat"
    }

    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let n = reference.n_qubits();
        let dim = 1usize << n;
        let executor = Executor::default();
        let ops = candidate.op_cost() as u64;
        let dof = (dim - 1).max(1) as f64;
        let master = morph_parallel::derive_master(rng);
        let (witness, ledger) = sweep_until_found(self.parallelism, budget, |trial| {
            let mut task_rng = morph_parallel::child_rng(master, trial as u64);
            let basis = task_rng.gen_range(0..dim);
            let input = StateVector::basis_state(n, basis);
            // Expected distribution from the reference (the spec).
            let expected = executor
                .run_trajectory(reference, &input, &mut task_rng)
                .final_state
                .probabilities();
            let counts = executor.sample_counts(candidate, &input, self.shots, &mut task_rng);
            let mut local = CostLedger::new();
            local.record_execution(self.shots as u64, ops);
            TrialOutcome {
                ledger: local,
                bug: chi_square(&expected, &counts) > self.threshold_per_dof * dof,
                witness: basis,
            }
        });
        match witness {
            Some(basis) => DetectionResult::found(basis, ledger),
            None => DetectionResult::not_found(ledger),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn chi_square_zero_for_perfect_match() {
        let expected = [0.5, 0.5];
        let counts = [500usize, 500];
        assert!(chi_square(&expected, &counts) < 1e-9);
    }

    #[test]
    fn chi_square_large_for_mismatch() {
        let expected = [1.0, 0.0];
        let counts = [0usize, 1000];
        assert!(chi_square(&expected, &counts) > 100.0);
    }

    #[test]
    fn identical_programs_pass() {
        let mut rng = StdRng::seed_from_u64(0);
        let result = StatAssertion::default().detect(&bell(), &bell(), 5, &mut rng);
        assert!(!result.bug_found);
        assert_eq!(result.ledger.executions, 5);
    }

    #[test]
    fn amplitude_bug_is_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buggy = bell();
        buggy.x(0); // changes the output distribution drastically
        let result = StatAssertion::default().detect(&bell(), &buggy, 5, &mut rng);
        assert!(result.bug_found);
        assert!(result.witness_input.is_some());
    }

    #[test]
    fn phase_bug_is_invisible() {
        // Z after H flips a phase but not the |0>/|1> distribution of a
        // single-qubit H program.
        let mut reference = Circuit::new(1);
        reference.h(0);
        let mut buggy = Circuit::new(1);
        buggy.h(0);
        buggy.z(0);
        let mut rng = StdRng::seed_from_u64(3);
        let result = StatAssertion::default().detect(&reference, &buggy, 10, &mut rng);
        assert!(!result.bug_found, "Stat cannot see pure phase errors");
    }
}
