//! Baseline verification methods the paper compares MorphQPV against.
//!
//! Re-implemented with the published behaviour and cost models:
//!
//! - [`StatAssertion`] — statistical (chi-square) assertions on output
//!   distributions; amplitude-only.
//! - [`QuitoSearch`] — coverage-guided grid search over basis inputs.
//! - [`NddAssertion`] — non-destructive discrimination; phase-sensitive but
//!   pays exponential synthesized-circuit costs
//!   ([`ndd_synthesis_gate_cost`]).
//! - [`ProjAssertion`] — projection-based subspace assertions (Proj).
//! - [`SymbolicChecker`] — stabilizer-fragment symbolic reasoning (SR),
//!   the one assertion baseline that handles feedback.
//! - [`TwistChecker`] — purity checking by exact classical simulation.
//! - [`AutomataChecker`] — support-set propagation in the tree-automata
//!   style.
//! - [`FuzzTester`] — random superposition-input fuzzing (Fuzz).
//! - [`exhaustive_confidence`] — the Fig 1(b) coverage-confidence model.
//! - Expressiveness matrices for Tables 2 and 5
//!   ([`assertion_expressiveness`], [`deductive_expressiveness`]).
//!
//! The shot-based detectors implement [`BugDetector`], sharing the
//! reference-vs-candidate interface the Table 4 harness sweeps.

mod automata;
mod detector;
mod exhaustive;
mod expressiveness;
mod fuzz;
mod ndd;
mod proj;
mod quito;
mod sr;
mod stat;
mod sweep;
mod twist;

pub use automata::{AutomataChecker, SupportAnalysis};
pub use detector::{BugDetector, DetectionResult};
pub use exhaustive::{exhaustive_confidence, expected_tests_to_find_single_bug};
pub use expressiveness::{
    assertion_expressiveness, deductive_expressiveness, render_table, ExpressivenessRow, Support,
};
pub use fuzz::FuzzTester;
pub use ndd::{ndd_synthesis_gate_cost, NddAssertion};
pub use proj::ProjAssertion;
pub use quito::QuitoSearch;
pub use sr::{SrUnsupported, SymbolicChecker};
pub use stat::{chi_square, StatAssertion};
pub use sweep::{sweep_until_found, TrialOutcome};
pub use twist::{PurityCheck, TwistChecker};
