//! Fuzz: random-input fuzzing of quantum programs (Wang et al., ICST'21
//! poster, the paper's reference [46]).
//!
//! Generates random *superposition* inputs (unlike Quito's classical grid)
//! and compares measured output distributions. Searching until a bug
//! appears or the budget runs out — stronger input coverage than the grid
//! but still amplitude-only and per-input.

use morph_clifford::InputEnsemble;
use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use morph_tomography::CostLedger;
use rand::rngs::StdRng;

use crate::detector::{BugDetector, DetectionResult};
use crate::stat::chi_square;
use crate::sweep::{sweep_until_found, TrialOutcome};

/// The fuzzing detector.
///
/// Each fuzzed input is an independent trial: inputs are pre-generated with
/// seed-split per-input streams, then swept in parallel waves with per-trial
/// shot RNGs, so the verdict, witness, and ledger are identical at every
/// `parallelism` setting.
#[derive(Debug, Clone)]
pub struct FuzzTester {
    /// Shots per fuzzed input.
    pub shots: usize,
    /// Chi-square threshold per degree of freedom.
    pub threshold_per_dof: f64,
    /// Worker threads for the fuzz sweep (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for FuzzTester {
    fn default() -> Self {
        FuzzTester {
            shots: 1000,
            threshold_per_dof: 5.0,
            parallelism: 0,
        }
    }
}

impl BugDetector for FuzzTester {
    fn name(&self) -> &'static str {
        "Fuzz"
    }

    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let n = reference.n_qubits();
        let dim = 1usize << n;
        let executor = Executor::default();
        let ops = candidate.op_cost() as u64;
        let dof = (dim - 1).max(1) as f64;
        let inputs =
            InputEnsemble::Clifford.generate_with_workers(n, budget.max(1), rng, self.parallelism);
        let master = morph_parallel::derive_master(rng);
        let (witness, ledger) = sweep_until_found(self.parallelism, inputs.len(), |i| {
            let mut task_rng = morph_parallel::child_rng(master, i as u64);
            let input = &inputs[i];
            let full = |c: &Circuit| -> Circuit {
                let mut f = Circuit::new(n);
                f.extend_from(&input.prep);
                f.extend_from(c);
                f
            };
            let expected = executor
                .run_trajectory(&full(reference), &StateVector::zero_state(n), &mut task_rng)
                .final_state
                .probabilities();
            let counts = executor.sample_counts(
                &full(candidate),
                &StateVector::zero_state(n),
                self.shots,
                &mut task_rng,
            );
            let mut local = CostLedger::new();
            local.record_execution(self.shots as u64, ops);
            TrialOutcome {
                ledger: local,
                bug: chi_square(&expected, &counts) > self.threshold_per_dof * dof,
                witness: i,
            }
        });
        match witness {
            Some(i) => DetectionResult::found(i, ledger),
            None => DetectionResult::not_found(ledger),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ghz() -> Circuit {
        morph_qalgo::ghz(3)
    }

    #[test]
    fn identical_programs_pass() {
        let mut rng = StdRng::seed_from_u64(0);
        let result = FuzzTester::default().detect(&ghz(), &ghz(), 5, &mut rng);
        assert!(!result.bug_found);
        assert_eq!(result.ledger.executions, 5);
    }

    #[test]
    fn superposition_inputs_expose_phase_bugs_that_defeat_quito() {
        // Z mid-circuit: invisible to classical basis inputs through this
        // program's diagonal structure, but a superposed fuzz input turns
        // the phase into an amplitude difference.
        let mut reference = Circuit::new(2);
        reference.h(0).cx(0, 1).h(0);
        let mut buggy = Circuit::new(2);
        buggy.h(0).z(0).cx(0, 1).h(0);
        let mut rng = StdRng::seed_from_u64(1);
        let fuzz = FuzzTester::default().detect(&reference, &buggy, 8, &mut rng);
        assert!(
            fuzz.bug_found,
            "fuzzed superposition inputs must expose the phase bug"
        );
    }

    #[test]
    fn budget_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = FuzzTester::default().detect(&ghz(), &ghz(), 3, &mut rng);
        assert_eq!(result.ledger.executions, 3);
    }

    #[test]
    fn verdict_is_identical_at_every_worker_count() {
        let mut reference = Circuit::new(2);
        reference.h(0).cx(0, 1).h(0);
        let mut buggy = Circuit::new(2);
        buggy.h(0).z(0).cx(0, 1).h(0);
        let serial = {
            let mut rng = StdRng::seed_from_u64(3);
            FuzzTester {
                parallelism: 1,
                ..FuzzTester::default()
            }
            .detect(&reference, &buggy, 8, &mut rng)
        };
        let wide = {
            let mut rng = StdRng::seed_from_u64(3);
            FuzzTester {
                parallelism: 4,
                ..FuzzTester::default()
            }
            .detect(&reference, &buggy, 8, &mut rng)
        };
        assert_eq!(serial.bug_found, wide.bug_found);
        assert_eq!(serial.witness_input, wide.witness_input);
        assert_eq!(serial.ledger, wide.ledger);
    }
}
