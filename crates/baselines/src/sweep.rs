//! Deterministic early-exit parallel sweeps for the shot-based detectors.
//!
//! Quito, Stat, and Fuzz all share one loop shape: run independent trials
//! in a fixed order, stop at the first one that exposes a bug, and charge
//! only the trials a serial search would have paid for. [`sweep_until_found`]
//! keeps that contract while fanning trials out across worker threads:
//! trials are evaluated in waves of the worker count, results are inspected
//! in trial order, and any overshoot past the first hit inside a wave is
//! simulated work that never reaches the ledger. With per-trial RNG streams
//! (seed-split by trial index), the verdict, witness, and ledger are
//! bit-identical at every worker count.

use morph_tomography::CostLedger;

/// One sweep trial's outcome: the costs it incurred, whether it exposed a
/// bug, and the witness value to report if it did.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Costs of this single trial.
    pub ledger: CostLedger,
    /// `true` if the trial flagged a difference.
    pub bug: bool,
    /// Witness reported when `bug` is set (basis index, input index, …).
    pub witness: usize,
}

/// Runs `trial(i)` for `i < limit`, stopping at the first bug in trial
/// order. Returns the witness of the first bug (if any) and the merged
/// ledger of every trial up to and including it — exactly the cost of the
/// serial early-exit loop, independent of `parallelism` (`0` = all cores,
/// `1` = serial).
pub fn sweep_until_found<F>(
    parallelism: usize,
    limit: usize,
    trial: F,
) -> (Option<usize>, CostLedger)
where
    F: Fn(usize) -> TrialOutcome + Sync,
{
    let wave = morph_parallel::effective_workers(parallelism).max(1);
    let mut ledger = CostLedger::new();
    let mut start = 0usize;
    while start < limit {
        let end = (start + wave).min(limit);
        let indices: Vec<usize> = (start..end).collect();
        let outcomes = morph_parallel::parallel_map(parallelism, &indices, |_, &i| trial(i));
        for outcome in outcomes {
            ledger.merge(&outcome.ledger);
            if outcome.bug {
                return (Some(outcome.witness), ledger);
            }
        }
        start = end;
    }
    (None, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costed(bug: bool, witness: usize) -> TrialOutcome {
        let mut ledger = CostLedger::new();
        ledger.record_execution(10, 2);
        TrialOutcome {
            ledger,
            bug,
            witness,
        }
    }

    #[test]
    fn charges_exactly_up_to_the_first_hit() {
        for workers in [1, 3, 8] {
            let (witness, ledger) = sweep_until_found(workers, 20, |i| costed(i == 6, i * 100));
            assert_eq!(witness, Some(600));
            assert_eq!(ledger.executions, 7, "workers={workers}");
            assert_eq!(ledger.shots, 70);
        }
    }

    #[test]
    fn clean_sweep_charges_everything() {
        for workers in [1, 4] {
            let (witness, ledger) = sweep_until_found(workers, 5, |i| costed(false, i));
            assert_eq!(witness, None);
            assert_eq!(ledger.executions, 5);
        }
    }

    #[test]
    fn earliest_of_several_hits_wins() {
        let (witness, ledger) = sweep_until_found(8, 16, |i| costed(i >= 3, i));
        assert_eq!(witness, Some(3));
        assert_eq!(ledger.executions, 4);
    }

    #[test]
    fn zero_limit_is_empty() {
        let (witness, ledger) = sweep_until_found(4, 0, |i| costed(true, i));
        assert_eq!(witness, None);
        assert_eq!(ledger, CostLedger::new());
    }
}
