//! The exhaustive-testing confidence model behind Fig 1(b).
//!
//! When a bug is triggered by exactly one of `N` classical inputs and a
//! tester has covered `k` distinct inputs without finding it, the
//! probability that the program is actually correct across the whole space
//! scales with the covered fraction. The motivational figure plots this
//! fraction for a 15-qubit quantum lock: 0.006 %-ish after one test, 50 %
//! after ~1.5 × 10⁴ tests.

/// Confidence of an exhaustive tester after covering `tested` distinct
/// inputs of an `input_space`-sized space without finding the bug:
/// the covered fraction `tested / input_space`, clamped to `[0, 1]`.
pub fn exhaustive_confidence(tested: u64, input_space: u64) -> f64 {
    if input_space == 0 {
        return 1.0;
    }
    (tested as f64 / input_space as f64).clamp(0.0, 1.0)
}

/// Expected number of tests to find a single hidden bad input when testing
/// without replacement: `(N + 1) / 2`.
pub fn expected_tests_to_find_single_bug(input_space: u64) -> f64 {
    (input_space as f64 + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_anchor_points() {
        // 15-qubit lock: 2^14 = 16384 classical keys on the input register
        // (one output qubit). One test ⇒ tiny confidence; ~8k ⇒ 50 %.
        let space = 1u64 << 14;
        let one = exhaustive_confidence(1, space);
        assert!(one < 1e-4, "single test confidence {one}");
        let half = exhaustive_confidence(space / 2, space);
        assert!((half - 0.5).abs() < 1e-12);
        assert_eq!(exhaustive_confidence(space, space), 1.0);
    }

    #[test]
    fn expected_search_length() {
        assert!((expected_tests_to_find_single_bug(7) - 4.0).abs() < 1e-12);
        // Matches the paper's O(2^{N-1}/2) complexity for the QL search.
        let n21 = expected_tests_to_find_single_bug(1 << 20);
        assert!(n21 > 5e5 && n21 < 6e5);
    }

    #[test]
    fn degenerate_space() {
        assert_eq!(exhaustive_confidence(5, 0), 1.0);
        assert_eq!(exhaustive_confidence(10, 4), 1.0);
    }
}
