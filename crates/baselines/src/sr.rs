//! SR: symbolic-reasoning verification of nondeterministic programs
//! (Feng & Xu, ASPLOS'23 flavor).
//!
//! The original tool reasons symbolically about programs with measurement
//! and classical feedback. Our stand-in covers the stabilizer fragment
//! exactly: it pushes a stabilizer tableau through Clifford gates and
//! — crucially, unlike the runtime-assertion baselines — handles
//! measurement branches symbolically, so it can verify feedback programs
//! (Table 2's "Full" feedback entry for SR). Non-Clifford gates are
//! outside the fragment and rejected, mirroring the real tool's scope
//! limits.

use morph_clifford::StabilizerTableau;
use morph_qprog::{Circuit, Instruction};
use morph_qsim::Gate;

/// Why a program cannot be analyzed by the symbolic checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrUnsupported {
    /// A gate outside the Clifford fragment.
    NonClifford(String),
}

impl std::fmt::Display for SrUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrUnsupported::NonClifford(g) => write!(f, "non-Clifford gate {g} outside fragment"),
        }
    }
}

impl std::error::Error for SrUnsupported {}

/// Symbolic stabilizer checker.
#[derive(Debug, Clone, Default)]
pub struct SymbolicChecker;

impl SymbolicChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        SymbolicChecker
    }

    /// Pushes `|0…0⟩`'s stabilizer group through the program, ignoring
    /// measurement outcomes (deterministic Clifford fragment: measurement
    /// of a stabilizer qubit leaves the group unchanged up to sign; we
    /// treat conditionals pessimistically by requiring both branches to
    /// commute with the analysis, i.e. the conditional gate must itself be
    /// Clifford).
    ///
    /// # Errors
    ///
    /// Returns [`SrUnsupported`] for gates outside the Clifford fragment.
    pub fn stabilizers_of(&self, circuit: &Circuit) -> Result<Vec<String>, SrUnsupported> {
        let mut tab = StabilizerTableau::new(circuit.n_qubits());
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) | Instruction::Conditional { gate: g, .. } => {
                    apply_clifford(&mut tab, g)?;
                }
                Instruction::Tracepoint { .. } | Instruction::Barrier => {}
                Instruction::Measure { .. } | Instruction::Reset(_) => {
                    // Z-basis measurement of a stabilizer state is within
                    // the symbolic fragment; the group is tracked up to the
                    // branch sign, which equality checking ignores.
                }
            }
        }
        let mut stabs = tab.stabilizer_strings();
        stabs.sort();
        Ok(stabs)
    }

    /// Symbolic equivalence of two programs over the Clifford fragment:
    /// equal stabilizer groups from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SrUnsupported`] if either program leaves the fragment.
    pub fn equivalent(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
    ) -> Result<bool, SrUnsupported> {
        Ok(self.stabilizers_of(reference)? == self.stabilizers_of(candidate)?)
    }
}

fn apply_clifford(tab: &mut StabilizerTableau, gate: &Gate) -> Result<(), SrUnsupported> {
    match gate {
        Gate::H(q) => tab.h(*q),
        Gate::S(q) => tab.s(*q),
        Gate::Sdg(q) => {
            // S† = S·S·S.
            tab.s(*q);
            tab.s(*q);
            tab.s(*q);
        }
        Gate::X(q) => tab.x_gate(*q),
        Gate::Y(q) => {
            tab.z_gate(*q);
            tab.x_gate(*q);
        }
        Gate::Z(q) => tab.z_gate(*q),
        Gate::CX(c, t) => tab.cx(*c, *t),
        Gate::CZ(a, b) => {
            // CZ = (I⊗H) CX (I⊗H).
            tab.h(*b);
            tab.cx(*a, *b);
            tab.h(*b);
        }
        Gate::Swap(a, b) => {
            tab.cx(*a, *b);
            tab.cx(*b, *a);
            tab.cx(*a, *b);
        }
        Gate::Phase(q, theta) => {
            // Clifford phases only: multiples of π/2.
            let quarter = theta / std::f64::consts::FRAC_PI_2;
            if (quarter - quarter.round()).abs() > 1e-9 {
                return Err(SrUnsupported::NonClifford(format!("phase({theta})")));
            }
            let turns = quarter.round().rem_euclid(4.0) as usize;
            for _ in 0..turns {
                tab.s(*q);
            }
        }
        other => {
            return Err(SrUnsupported::NonClifford(format!("{other:?}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_ghz_constructions() {
        // H-CX chain vs H-CX with a redundant double-CX — same stabilizers.
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).cx(1, 2);
        let mut b = Circuit::new(3);
        b.h(0).cx(0, 1).cx(0, 2).cx(0, 2).cx(1, 2);
        assert!(SymbolicChecker::new().equivalent(&a, &b).unwrap());
    }

    #[test]
    fn detects_clifford_phase_bug() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).z(0); // sign flip of the XX stabilizer
        assert!(!SymbolicChecker::new().equivalent(&a, &b).unwrap());
    }

    #[test]
    fn feedback_programs_are_in_fragment() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0).conditional(0, 1, Gate::X(1));
        let stabs = SymbolicChecker::new().stabilizers_of(&c);
        assert!(
            stabs.is_ok(),
            "feedback within the Clifford fragment must be analyzable"
        );
    }

    #[test]
    fn clifford_angle_phases_accepted() {
        let mut c = Circuit::new(1);
        c.h(0).phase(0, std::f64::consts::PI); // = Z
        let mut z = Circuit::new(1);
        z.h(0).z(0);
        assert!(SymbolicChecker::new().equivalent(&c, &z).unwrap());
    }

    #[test]
    fn non_clifford_gate_rejected() {
        let mut c = Circuit::new(1);
        c.t(0);
        let err = SymbolicChecker::new().stabilizers_of(&c).unwrap_err();
        assert!(matches!(err, SrUnsupported::NonClifford(_)));
        let mut r = Circuit::new(1);
        r.rx(0, 0.3);
        assert!(SymbolicChecker::new().stabilizers_of(&r).is_err());
    }

    #[test]
    fn sdg_is_s_cubed() {
        let mut a = Circuit::new(1);
        a.h(0).gate(Gate::Sdg(0));
        let mut b = Circuit::new(1);
        b.h(0).s(0).s(0).s(0);
        assert!(SymbolicChecker::new().equivalent(&a, &b).unwrap());
    }
}
