//! Zero-dependency structured telemetry for the verification pipeline.
//!
//! MorphQPV's value proposition is *confident* verification, which makes
//! "where did this run spend its effort, and why is this answer
//! low-confidence?" first-class questions. This crate answers them with
//! three primitives recorded into one process-wide, thread-safe recorder:
//!
//! - **Spans** ([`span`] / [`span_under`]): named regions with monotonic
//!   start/duration timestamps, forming a tree. Worker threads attach to a
//!   parent captured before fan-out, so `morph-parallel` regions nest
//!   correctly.
//! - **Counters** ([`counter`]): monotonically accumulated `u64`s attached
//!   to the innermost open span of the calling thread (or to the trace
//!   root when no span is open). Concurrent increments from workers merge
//!   by addition, so totals are worker-count independent.
//! - **Gauges** ([`gauge`]): appended `f64` samples — a cheap way to record
//!   trajectories (e.g. best-objective-so-far per solver restart) or fitted
//!   parameters (β₁/β₂ of the confidence model).
//!
//! # Cost model
//!
//! Tracing is **off by default** and *off-cost* when disabled: every entry
//! point first reads one relaxed [`AtomicBool`]; when it is `false` the
//! call returns immediately without locking or allocating. Instrumented
//! code must therefore be safe to leave in hot paths as long as call sites
//! are at a sensible granularity (per run / per gate batch, not per
//! amplitude).
//!
//! # Determinism
//!
//! The recorder observes; it never produces data the pipeline consumes and
//! never touches an RNG, so enabling tracing cannot perturb verification
//! results. `tests/trace_determinism.rs` in the workspace root asserts
//! bit-identical verdicts with tracing on and off at several worker
//! counts.
//!
//! # Examples
//!
//! ```
//! morph_trace::reset();
//! morph_trace::set_enabled(true);
//! {
//!     let _outer = morph_trace::span("characterize");
//!     morph_trace::counter("inputs", 4);
//!     morph_trace::gauge("beta1", 2.5);
//! }
//! let json = morph_trace::export_json();
//! assert!(json.contains("\"name\":\"characterize\""));
//! morph_trace::set_enabled(false);
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Locks a mutex, recovering the inner guard if a previous holder panicked.
///
/// The recorder's invariants hold at every lock release point, so a
/// poisoned lock (some instrumented thread panicked mid-record) is safe to
/// keep using: at worst one event is missing. Telemetry must never amplify
/// a contained panic into a process-wide cascade. Public because the serve
/// layer applies the same policy to its own service state.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Schema version stamped into every JSON export (see
/// `docs/trace-schema.json`).
pub const TRACE_SCHEMA_VERSION: u64 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables recording.
///
/// Disabling does not clear already-recorded data; [`reset`] does.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently accepting events. One relaxed atomic
/// load — the only cost instrumented code pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables recording when the `MORPH_TRACE` environment variable is set to
/// anything other than `0` or the empty string. Returns the resulting
/// enabled state.
pub fn enable_from_env() -> bool {
    if matches!(std::env::var("MORPH_TRACE"), Ok(v) if !v.is_empty() && v != "0") {
        set_enabled(true);
    }
    enabled()
}

/// A handle to a recorded span, used to parent work that crosses thread
/// boundaries (capture with [`current_span`], consume with [`span_under`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug)]
struct SpanNode {
    name: String,
    parent: Option<usize>,
    start_ns: u64,
    duration_ns: Option<u64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<f64>>,
}

/// Fixed-memory log2-bucketed `u64` histogram.
///
/// Bucket `i` counts samples whose bit length is `i` (bucket 0 holds the
/// value 0, bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`). 65 buckets cover
/// the full `u64` range, so recording is O(1) and allocation-free after
/// the first sample — cheap enough for per-request latencies.
#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn hist_bucket(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (the representative value a quantile reports).
fn hist_bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Hist {
    fn record(&mut self, value: u64) {
        self.buckets[hist_bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Upper bound of the bucket containing the `q`-quantile sample,
    /// clamped to the observed maximum (so `p100 == max` exactly).
    fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hist_bucket_hi(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[derive(Debug, Default)]
struct Recorder {
    spans: Vec<SpanNode>,
    /// Counters recorded with no open span on the calling thread.
    root_counters: BTreeMap<String, u64>,
    /// Gauges recorded with no open span on the calling thread.
    root_gauges: BTreeMap<String, Vec<f64>>,
    /// Process-level histograms (always root — a latency distribution is a
    /// property of the run, not of any one span).
    histograms: BTreeMap<String, Hist>,
}

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(Recorder::default()))
}

/// Monotonic epoch shared by every span in the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the implicit
    /// parent for new spans, counters, and gauges.
    static CURRENT: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Clears every recorded span, counter, and gauge (the enabled flag is
/// untouched). Call between independent runs sharing a process.
pub fn reset() {
    let mut rec = lock_or_recover(recorder());
    rec.spans.clear();
    rec.root_counters.clear();
    rec.root_gauges.clear();
    rec.histograms.clear();
}

/// RAII guard for an open span: records the duration when dropped.
///
/// When tracing is disabled at [`span`] time the guard is inert (no id, no
/// allocation) and dropping it is free.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    id: Option<usize>,
}

impl SpanGuard {
    /// The recorded span's id, for parenting cross-thread children.
    pub fn id(&self) -> Option<SpanId> {
        self.id.map(SpanId)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let end = now_ns();
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if stack.last() == Some(&id) {
                stack.pop();
            }
        });
        let mut rec = lock_or_recover(recorder());
        if let Some(node) = rec.spans.get_mut(id) {
            node.duration_ns = Some(end.saturating_sub(node.start_ns));
        }
    }
}

fn open_span(name: &str, parent: Option<usize>) -> SpanGuard {
    let start_ns = now_ns();
    let id = {
        let mut rec = lock_or_recover(recorder());
        let id = rec.spans.len();
        rec.spans.push(SpanNode {
            name: name.to_string(),
            parent,
            start_ns,
            duration_ns: None,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        });
        id
    };
    CURRENT.with(|c| c.borrow_mut().push(id));
    SpanGuard { id: Some(id) }
}

/// Opens a span named `name` under the calling thread's innermost open
/// span (or as a root span). Returns an inert guard when tracing is
/// disabled.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: None };
    }
    let parent = CURRENT.with(|c| c.borrow().last().copied());
    open_span(name, parent)
}

/// Opens a span under an explicit parent — the composition point for
/// `morph-parallel` workers: capture [`current_span`] before the fan-out,
/// then open per-task spans under it from any thread.
pub fn span_under(parent: Option<SpanId>, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: None };
    }
    open_span(name, parent.map(|p| p.0))
}

/// The calling thread's innermost open span, if any (and tracing is on).
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().last().copied().map(SpanId))
}

fn with_sink<F: FnOnce(&mut BTreeMap<String, u64>, &mut BTreeMap<String, Vec<f64>>)>(f: F) {
    let target = CURRENT.with(|c| c.borrow().last().copied());
    let mut rec = lock_or_recover(recorder());
    match target {
        Some(id) => {
            let node = &mut rec.spans[id];
            // Split borrow through the node.
            let SpanNode {
                counters, gauges, ..
            } = node;
            f(counters, gauges);
        }
        None => {
            let Recorder {
                root_counters,
                root_gauges,
                ..
            } = &mut *rec;
            f(root_counters, root_gauges);
        }
    }
}

/// Adds `delta` to the counter `name` on the calling thread's innermost
/// open span (or the trace root). No-op when tracing is disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_sink(|counters, _| {
        *counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Adds `delta` to counter `name` directly on span `id` — for workers that
/// hold a parent handle but no open span of their own.
pub fn counter_on(id: SpanId, name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut rec = lock_or_recover(recorder());
    if let Some(node) = rec.spans.get_mut(id.0) {
        *node.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Appends a sample to the gauge `name` on the calling thread's innermost
/// open span (or the trace root). Repeated calls build a trajectory.
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|_, gauges| {
        gauges.entry(name.to_string()).or_default().push(value);
    });
}

/// A read-only snapshot of one exported span (used by summaries).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Nanoseconds from the trace epoch to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 when the span is still open).
    pub duration_ns: u64,
    /// Accumulated counters.
    pub counters: BTreeMap<String, u64>,
}

/// Flat list of every recorded span, in creation order. Mostly for tests
/// and summaries; [`export_json`] preserves the tree.
pub fn span_summaries() -> Vec<SpanSummary> {
    let rec = lock_or_recover(recorder());
    rec.spans
        .iter()
        .map(|s| SpanSummary {
            name: s.name.clone(),
            start_ns: s.start_ns,
            duration_ns: s.duration_ns.unwrap_or(0),
            counters: s.counters.clone(),
        })
        .collect()
}

/// Sums counter `name` across every recorded span and the root.
pub fn counter_total(name: &str) -> u64 {
    let rec = lock_or_recover(recorder());
    rec.spans
        .iter()
        .filter_map(|s| s.counters.get(name))
        .chain(rec.root_counters.get(name))
        .sum()
}

/// Concatenates the samples of gauge `name` across every recorded span and
/// the root, in span-creation order (root samples last). The counterpart of
/// [`counter_total`] for trajectories like queue depth.
pub fn gauge_samples(name: &str) -> Vec<f64> {
    let rec = lock_or_recover(recorder());
    rec.spans
        .iter()
        .filter_map(|s| s.gauges.get(name))
        .chain(rec.root_gauges.get(name))
        .flatten()
        .copied()
        .collect()
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Records a `u64` sample (typically nanoseconds) into the process-level
/// log2-bucketed histogram `name`. O(1), allocation-free after the first
/// sample per name; no-op when tracing is disabled.
pub fn histogram(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut rec = lock_or_recover(recorder());
    rec.histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Number of samples recorded into histogram `name` (0 when absent).
pub fn histogram_count(name: &str) -> u64 {
    let rec = lock_or_recover(recorder());
    rec.histograms.get(name).map_or(0, |h| h.count)
}

/// The `q`-quantile (`q` in `[0,1]`) of histogram `name`, reported as the
/// upper bound of the log2 bucket the quantile sample fell in (clamped to
/// the observed max, so `histogram_quantile(n, 1.0)` is the exact max).
/// `None` when the histogram is absent or empty.
pub fn histogram_quantile(name: &str, q: f64) -> Option<u64> {
    let rec = lock_or_recover(recorder());
    rec.histograms.get(name).and_then(|h| h.quantile(q))
}

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

fn warned_knobs() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Reports an invalid environment-knob value: a once-per-variable warning
/// on stderr (so a typo'd config surfaces exactly once, not per request)
/// plus an `env/invalid_knob` root counter bump on every occurrence when
/// tracing is enabled.
pub fn warn_invalid_knob(name: &str, value: &str, reason: &str) {
    let first = lock_or_recover(warned_knobs()).insert(name.to_string());
    if first {
        eprintln!("morph: ignoring invalid {name}={value:?} ({reason}); using default");
    }
    if enabled() {
        let mut rec = lock_or_recover(recorder());
        *rec.root_counters
            .entry("env/invalid_knob".to_string())
            .or_insert(0) += 1;
    }
}

/// Parses the environment knob `name` as a `T`.
///
/// Returns `None` when the variable is unset or empty. An unparseable
/// value also returns `None`, but is *not* silent: it routes through
/// [`warn_invalid_knob`] so the caller's fallback-to-default is visible on
/// stderr and in the trace. Every `MORPH_*` numeric knob should read
/// through here instead of a bare `.parse().ok()`.
pub fn env_knob<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_invalid_knob(name, &raw, "unparseable value");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` in a JSON-safe rendering: finite values print shortest-roundtrip,
/// non-finite values become strings (plain JSON has no NaN/Infinity).
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let text = format!("{v}");
        // `{}` on an integral f64 prints without a dot; keep it a number
        // either way (JSON accepts both) but make the type visible.
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        escape_json(&format!("{v}"), out);
    }
}

fn write_counters(counters: &BTreeMap<String, u64>, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(k, out);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
}

fn write_gauges(gauges: &BTreeMap<String, Vec<f64>>, out: &mut String) {
    out.push('{');
    for (i, (k, samples)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(k, out);
        out.push_str(":[");
        for (j, s) in samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_f64(*s, out);
        }
        out.push(']');
    }
    out.push('}');
}

fn write_span(rec: &Recorder, id: usize, children: &[Vec<usize>], out: &mut String) {
    let node = &rec.spans[id];
    out.push_str("{\"name\":");
    escape_json(&node.name, out);
    out.push_str(&format!(",\"start_ns\":{}", node.start_ns));
    out.push_str(&format!(
        ",\"duration_ns\":{}",
        node.duration_ns.unwrap_or(0)
    ));
    out.push_str(",\"counters\":");
    write_counters(&node.counters, out);
    out.push_str(",\"gauges\":");
    write_gauges(&node.gauges, out);
    out.push_str(",\"children\":[");
    for (i, &child) in children[id].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span(rec, child, children, out);
    }
    out.push_str("]}");
}

/// Renders the recorded span tree as a self-contained JSON document
/// (schema: `docs/trace-schema.json`, version [`TRACE_SCHEMA_VERSION`]).
///
/// Still-open spans export with `duration_ns: 0`. The export reflects
/// whatever has been recorded — it works with tracing enabled or disabled.
pub fn export_json() -> String {
    let rec = lock_or_recover(recorder());
    let n = rec.spans.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for (id, node) in rec.spans.iter().enumerate() {
        match node.parent {
            // A dangling parent id (possible only through recorder misuse)
            // degrades to a root rather than a panic.
            Some(p) if p < n && p != id => children[p].push(id),
            _ => roots.push(id),
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{{\"version\":{TRACE_SCHEMA_VERSION}"));
    out.push_str(",\"counters\":");
    write_counters(&rec.root_counters, &mut out);
    out.push_str(",\"gauges\":");
    write_gauges(&rec.root_gauges, &mut out);
    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in rec.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(name, &mut out);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            h.count, h.sum, h.max
        ));
        let mut first = true;
        for (b, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{},{}]", hist_bucket_hi(b), c));
        }
        out.push_str("]}");
    }
    out.push('}');
    out.push_str(",\"spans\":[");
    for (i, &root) in roots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span(&rec, root, &children, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global, so tests serialize on one lock to
    /// avoid interleaving each other's spans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn disabled_tracing_records_nothing_and_allocates_no_ids() {
        let _g = serial();
        set_enabled(false);
        let s = span("ignored");
        assert!(s.id().is_none());
        counter("ignored", 3);
        gauge("ignored", 1.0);
        drop(s);
        assert!(span_summaries().is_empty());
        assert_eq!(counter_total("ignored"), 0);
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let _g = serial();
        {
            let _outer = span("outer");
            counter("work", 2);
            {
                let _inner = span("inner");
                counter("work", 3);
            }
        }
        let spans = span_summaries();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert_eq!(spans[0].counters["work"], 2);
        assert_eq!(spans[1].counters["work"], 3);
        assert_eq!(counter_total("work"), 5);
        set_enabled(false);
    }

    #[test]
    fn cross_thread_children_attach_to_the_captured_parent() {
        let _g = serial();
        let parent = span("fan-out");
        let parent_id = current_span();
        assert!(parent_id.is_some());
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                scope.spawn(move || {
                    let _child = span_under(parent_id, "task");
                    counter("tasks", 1);
                    counter_on(parent_id.unwrap(), "children", i + 1);
                });
            }
        });
        drop(parent);
        let json = export_json();
        assert_eq!(counter_total("tasks"), 4);
        // All four task spans render inside the fan-out span.
        let fanout_idx = json.find("\"name\":\"fan-out\"").unwrap();
        assert_eq!(json.matches("\"name\":\"task\"").count(), 4);
        assert!(json.find("\"name\":\"task\"").unwrap() > fanout_idx);
        set_enabled(false);
    }

    #[test]
    fn json_export_shape_and_escaping() {
        let _g = serial();
        {
            let _s = span("quote\"and\\slash");
            gauge("objective", 0.5);
            gauge("objective", f64::NAN);
            gauge("whole", 2.0);
        }
        let json = export_json();
        assert!(json.starts_with(&format!("{{\"version\":{TRACE_SCHEMA_VERSION}")));
        assert!(json.contains("quote\\\"and\\\\slash"));
        assert!(json.contains("\"NaN\""), "non-finite gauges become strings");
        assert!(json.contains("2.0"), "integral f64 keeps a decimal point");
        assert!(json.contains("\"duration_ns\":"));
        set_enabled(false);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = serial();
        {
            let _s = span("x");
            counter("c", 1);
        }
        counter("root", 1);
        reset();
        assert!(span_summaries().is_empty());
        assert_eq!(counter_total("root"), 0);
        assert_eq!(export_json().matches("\"name\"").count(), 0);
        set_enabled(false);
    }

    #[test]
    fn rootless_counters_land_on_the_root_object() {
        let _g = serial();
        counter("orphan", 7);
        gauge("orphan_g", 1.25);
        let json = export_json();
        assert!(json.contains("\"orphan\":7"));
        assert!(json.contains("\"orphan_g\":[1.25]"));
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_quantiles_and_export() {
        let _g = serial();
        // 90 fast samples at 100ns, 10 slow at 1_000_000ns.
        for _ in 0..90 {
            histogram("latency_ns", 100);
        }
        for _ in 0..10 {
            histogram("latency_ns", 1_000_000);
        }
        assert_eq!(histogram_count("latency_ns"), 100);
        // p50 lands in the bucket holding 100 (bit length 7 → hi 127).
        assert_eq!(histogram_quantile("latency_ns", 0.5), Some(127));
        // p99 lands in the slow bucket; p100 is the exact max.
        assert!(histogram_quantile("latency_ns", 0.99).unwrap() >= 1_000_000);
        assert_eq!(histogram_quantile("latency_ns", 1.0), Some(1_000_000));
        assert_eq!(histogram_quantile("absent", 0.5), None);
        let json = export_json();
        assert!(json.contains("\"histograms\":{\"latency_ns\":{\"count\":100"));
        assert!(json.contains("\"buckets\":[[127,90],"));
        set_enabled(false);
    }

    #[test]
    fn histogram_zero_and_max_values_have_buckets() {
        let _g = serial();
        histogram("edge", 0);
        histogram("edge", u64::MAX);
        assert_eq!(histogram_quantile("edge", 0.0), Some(0));
        assert_eq!(histogram_quantile("edge", 1.0), Some(u64::MAX));
        set_enabled(false);
    }

    #[test]
    fn invalid_knob_warns_and_counts() {
        let _g = serial();
        // Not read from the real environment (set_var is UB here); exercise
        // the reporting path directly.
        warn_invalid_knob("MORPH_TEST_KNOB_A", "banana", "unparseable value");
        warn_invalid_knob("MORPH_TEST_KNOB_A", "banana", "unparseable value");
        assert_eq!(
            counter_total("env/invalid_knob"),
            2,
            "every occurrence counted"
        );
        let json = export_json();
        assert!(json.contains("\"env/invalid_knob\":2"));
        set_enabled(false);
    }

    #[test]
    fn env_knob_parses_or_none_without_warning_for_unset() {
        // Reading an unset variable must not touch the warn set or counter.
        let before = counter_total("env/invalid_knob");
        let parsed: Option<usize> = env_knob("MORPH_TEST_KNOB_DEFINITELY_UNSET");
        assert_eq!(parsed, None);
        assert_eq!(counter_total("env/invalid_knob"), before);
    }

    /// Exit codes the re-exec'd probe child reports its result through
    /// (distinct from libtest's 0/101 so a harness failure can't be
    /// mistaken for a probe verdict).
    const PROBE_ENABLED: i32 = 3;
    const PROBE_DISABLED: i32 = 4;

    #[test]
    fn enable_from_env_only_reacts_to_nonzero() {
        // `set_var` in a threaded test harness races with `getenv` anywhere
        // else in the process (and is outright UB on glibc), so the env
        // mutation runs in a re-exec'd child process instead: the child
        // re-enters this very test with `MORPH_TRACE_ENV_PROBE` set, calls
        // `enable_from_env` against an environment fixed at spawn time, and
        // reports through its exit code.
        if std::env::var_os("MORPH_TRACE_ENV_PROBE").is_some() {
            let code = if enable_from_env() {
                PROBE_ENABLED
            } else {
                PROBE_DISABLED
            };
            std::process::exit(code);
        }
        let exe = std::env::current_exe().expect("test binary path");
        let probe = |value: Option<&str>| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(["--exact", "tests::enable_from_env_only_reacts_to_nonzero"])
                .env("MORPH_TRACE_ENV_PROBE", "1")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
            match value {
                Some(v) => cmd.env("MORPH_TRACE", v),
                None => cmd.env_remove("MORPH_TRACE"),
            };
            cmd.status().expect("spawn probe child").code()
        };
        assert_eq!(probe(None), Some(PROBE_DISABLED));
        assert_eq!(probe(Some("")), Some(PROBE_DISABLED));
        assert_eq!(probe(Some("0")), Some(PROBE_DISABLED));
        assert_eq!(probe(Some("1")), Some(PROBE_ENABLED));
        assert_eq!(probe(Some("json")), Some(PROBE_ENABLED));
    }
}
