//! Sharded characterization cache + flight table.
//!
//! PR 5's service kept one global `Mutex<CharacterizationCache>` and one
//! flight table: correct, but every cache probe from every worker
//! serialized on a single lock, so coalescing itself became the
//! bottleneck under concurrent network traffic. This module splits the
//! state into `N` independent **stripes**. A fingerprint maps to exactly
//! one stripe (a pure function of its bytes), so:
//!
//! - two jobs with the *same* fingerprint always meet in the same stripe —
//!   coalescing semantics are unchanged;
//! - jobs with *different* fingerprints contend only `1/N` of the time —
//!   lock hold times no longer sum across unrelated requests.
//!
//! Every stripe opens the same on-disk directory (when configured). That
//! is safe for the same reason multiple *processes* sharing the directory
//! are safe: disk writes are atomic, and a fingerprint's memory-tier entry
//! lives in exactly one stripe's LRU, so no artifact is resident twice.
//!
//! Stripe count comes from `MORPH_SERVE_SHARDS` (default
//! [`DEFAULT_SHARDS`]); it shapes only contention, never results.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use morph_store::Fingerprint;
use morph_trace::lock_or_recover;
use morphqpv::prelude::{Characterization, CharacterizationCache};

use crate::singleflight::{Joined, SingleFlight};

/// Default stripe count. Small enough that per-stripe LRU capacity stays
/// useful, large enough that a worker pool saturating every core rarely
/// collides on unrelated fingerprints.
pub const DEFAULT_SHARDS: usize = 8;

struct Stripe {
    cache: Mutex<CharacterizationCache>,
    flights: SingleFlight<Fingerprint, Characterization>,
}

/// `N` independent (cache, flight-table) stripes keyed by fingerprint.
pub struct CharacterizationShards {
    stripes: Vec<Stripe>,
    cache_dir: Option<PathBuf>,
}

impl CharacterizationShards {
    /// Opens `stripes` stripes (clamped to at least 1), each backed by
    /// `cache_dir` when given (memory-only otherwise).
    ///
    /// # Errors
    ///
    /// The I/O error if `cache_dir` cannot be created.
    pub fn open(stripes: usize, cache_dir: Option<&Path>) -> io::Result<Self> {
        let n = stripes.max(1);
        let mut built = Vec::with_capacity(n);
        for _ in 0..n {
            let cache = match cache_dir {
                Some(dir) => CharacterizationCache::open(dir)?,
                None => CharacterizationCache::in_memory(),
            };
            built.push(Stripe {
                cache: Mutex::new(cache),
                flights: SingleFlight::new(),
            });
        }
        Ok(CharacterizationShards {
            stripes: built,
            cache_dir: cache_dir.map(Path::to_path_buf),
        })
    }

    /// The number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The shared on-disk directory, when persistent.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The stripe index `fp` maps to: a pure function of the fingerprint
    /// bytes, so every process and thread agrees.
    pub fn stripe_index(&self, fp: &Fingerprint) -> usize {
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&fp.0[..8]);
        (u64::from_le_bytes(prefix) % self.stripes.len() as u64) as usize
    }

    fn stripe(&self, fp: &Fingerprint) -> &Stripe {
        &self.stripes[self.stripe_index(fp)]
    }

    /// Cache lookup in `fp`'s stripe (memory tier, then disk).
    pub fn cache_get(&self, fp: &Fingerprint) -> Option<Characterization> {
        lock_or_recover(&self.stripe(fp).cache).get(fp)
    }

    /// Publishes an artifact into `fp`'s stripe (and to disk when
    /// persistent). Disk failures are swallowed — the memory tier keeps
    /// the artifact, which is all correctness needs.
    pub fn cache_put(&self, fp: Fingerprint, ch: &Characterization) {
        let _ = lock_or_recover(&self.stripe(&fp).cache).put(fp, ch);
    }

    /// Claims or joins the single flight for `fp` within its stripe.
    pub fn join(&self, fp: Fingerprint) -> Joined<Characterization> {
        self.stripe(&fp).flights.join(fp)
    }

    /// Pending flights summed across stripes (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.stripes.iter().map(|s| s.flights.in_flight()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_store::FingerprintBuilder;

    fn fp(n: u64) -> Fingerprint {
        FingerprintBuilder::new("shard-test/v1")
            .field_u64("n", n)
            .finish()
    }

    #[test]
    fn stripe_index_is_stable_and_in_range() {
        let shards = CharacterizationShards::open(8, None).unwrap();
        for n in 0..64 {
            let key = fp(n);
            let i = shards.stripe_index(&key);
            assert!(i < 8);
            assert_eq!(i, shards.stripe_index(&key), "pure function of bytes");
        }
    }

    #[test]
    fn fingerprints_spread_across_stripes() {
        let shards = CharacterizationShards::open(8, None).unwrap();
        let mut hit = [false; 8];
        for n in 0..256 {
            hit[shards.stripe_index(&fp(n))] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "256 distinct fingerprints should touch every one of 8 stripes"
        );
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let shards = CharacterizationShards::open(0, None).unwrap();
        assert_eq!(shards.stripe_count(), 1);
        assert_eq!(shards.stripe_index(&fp(1)), 0);
    }

    #[test]
    fn same_key_meets_in_one_flight_distinct_keys_fly_apart() {
        let shards = CharacterizationShards::open(4, None).unwrap();
        let a = shards.join(fp(1));
        assert!(matches!(a, Joined::Leader(_)));
        assert!(matches!(shards.join(fp(1)), Joined::Follower(_)));
        // A key in a different stripe leads independently.
        let other = (2..)
            .map(fp)
            .find(|k| shards.stripe_index(k) != shards.stripe_index(&fp(1)))
            .unwrap();
        let b = shards.join(other);
        assert!(matches!(b, Joined::Leader(_)));
        assert_eq!(shards.in_flight(), 2);
    }
}
