//! Single-flight coalescing of identical characterizations.
//!
//! Concurrent jobs whose characterizations share a content address (the
//! `morph_store::Fingerprint`) would each pay the full sampling cost if
//! run independently — and the disk cache only deduplicates *sequential*
//! work, because every in-flight job misses until the first one writes its
//! artifact back. This module closes that window: the first job to claim a
//! fingerprint becomes the **leader** and computes; later arrivals become
//! **followers** and block on the leader's result.
//!
//! The flight table is deliberately generic over the payload (`T`) so it
//! can be tested without spinning up quantum characterizations.
//!
//! Leader failure is first-class: if the leader errors, panics, or is
//! simply dropped, its [`LeaderGuard`] marks the flight `Abandoned` and
//! wakes every follower, who then re-enter [`SingleFlight::join`] and
//! elect a new leader. No result is ever fabricated and no follower can
//! block forever on a dead leader.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use morph_trace::lock_or_recover;
use std::time::Duration;

/// Outcome of [`SingleFlight::join`].
pub enum Joined<T: Clone> {
    /// This caller owns the flight: compute, then resolve the guard.
    Leader(LeaderGuard<T>),
    /// Another caller owns the flight: wait on the slot.
    Follower(Arc<FlightSlot<T>>),
}

/// What a follower observes when its wait ends.
#[derive(Debug, PartialEq, Eq)]
pub enum FlightOutcome<T> {
    /// The leader completed; the shared result.
    Done(T),
    /// The leader gave up (error, panic, drop); re-join to elect a new
    /// leader or fall back to computing alone.
    Abandoned,
    /// The follower's own wait budget ran out before the leader finished.
    TimedOut,
}

#[derive(Clone)]
enum FlightState<T> {
    Pending,
    Done(T),
    Abandoned,
}

/// One in-flight computation, shared between the leader and its followers.
pub struct FlightSlot<T> {
    state: Mutex<FlightState<T>>,
    ready: Condvar,
}

impl<T: Clone> FlightSlot<T> {
    fn new() -> Self {
        FlightSlot {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the leader resolves the flight, polling at `tick`
    /// granularity so the caller can honor its own deadline between ticks.
    ///
    /// `give_up` is consulted on every tick; returning `true` converts the
    /// wait into [`FlightOutcome::TimedOut`] without disturbing the flight.
    pub fn wait(&self, tick: Duration, mut give_up: impl FnMut() -> bool) -> FlightOutcome<T> {
        let mut state = lock_or_recover(&self.state);
        loop {
            match &*state {
                FlightState::Done(value) => return FlightOutcome::Done(value.clone()),
                FlightState::Abandoned => return FlightOutcome::Abandoned,
                FlightState::Pending => {
                    if give_up() {
                        return FlightOutcome::TimedOut;
                    }
                    let (next, _timeout) = self
                        .ready
                        .wait_timeout(state, tick)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = next;
                }
            }
        }
    }

    fn resolve(&self, state: FlightState<T>) {
        *lock_or_recover(&self.state) = state;
        self.ready.notify_all();
    }
}

/// Leadership of one flight. Call [`complete`](Self::complete) with the
/// result; dropping the guard without completing (error or panic paths)
/// abandons the flight, waking followers to re-elect.
pub struct LeaderGuard<T: Clone> {
    slot: Arc<FlightSlot<T>>,
    remove: Box<dyn FnOnce() + Send>,
    completed: bool,
}

impl<T: Clone> LeaderGuard<T> {
    /// Publishes the result to every follower and retires the flight.
    ///
    /// The caller must make the result reachable for *future* arrivals
    /// (e.g. write it to the cache) **before** calling this: once the
    /// flight is retired, new joiners will elect a fresh leader instead of
    /// following this one.
    pub fn complete(mut self, value: T) {
        self.completed = true;
        self.slot.resolve(FlightState::Done(value));
    }
}

impl<T: Clone> Drop for LeaderGuard<T> {
    fn drop(&mut self) {
        if !self.completed {
            self.slot.resolve(FlightState::Abandoned);
        }
        let remove = std::mem::replace(&mut self.remove, Box::new(|| {}));
        remove();
    }
}

/// The flight table: at most one in-flight computation per key.
pub struct SingleFlight<K, T> {
    flights: Arc<Mutex<HashMap<K, Arc<FlightSlot<T>>>>>,
}

impl<K, T> Default for SingleFlight<K, T> {
    fn default() -> Self {
        SingleFlight {
            flights: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl<K: Eq + Hash + Clone + Send + 'static, T: Clone + Send + 'static> SingleFlight<K, T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims or joins the flight for `key`.
    pub fn join(&self, key: K) -> Joined<T> {
        let mut flights = lock_or_recover(&self.flights);
        if let Some(slot) = flights.get(&key) {
            return Joined::Follower(Arc::clone(slot));
        }
        let slot = Arc::new(FlightSlot::new());
        flights.insert(key.clone(), Arc::clone(&slot));
        let table = Arc::clone(&self.flights);
        Joined::Leader(LeaderGuard {
            slot,
            remove: Box::new(move || {
                lock_or_recover(&table).remove(&key);
            }),
            completed: false,
        })
    }

    /// Number of flights currently pending (diagnostics).
    pub fn in_flight(&self) -> usize {
        lock_or_recover(&self.flights).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn leader_result_reaches_followers() {
        let sf: Arc<SingleFlight<u8, u32>> = Arc::new(SingleFlight::new());
        let guard = match sf.join(7) {
            Joined::Leader(g) => g,
            Joined::Follower(_) => panic!("first joiner must lead"),
        };
        let follower = match sf.join(7) {
            Joined::Follower(slot) => slot,
            Joined::Leader(_) => panic!("second joiner must follow"),
        };
        let waiter = thread::spawn(move || follower.wait(TICK, || false));
        guard.complete(99);
        assert_eq!(waiter.join().unwrap(), FlightOutcome::Done(99));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn dropped_leader_abandons_and_next_joiner_leads() {
        let sf: SingleFlight<u8, u32> = SingleFlight::new();
        let guard = match sf.join(1) {
            Joined::Leader(g) => g,
            Joined::Follower(_) => panic!("first joiner must lead"),
        };
        let follower = match sf.join(1) {
            Joined::Follower(slot) => slot,
            Joined::Leader(_) => panic!("second joiner must follow"),
        };
        drop(guard);
        assert_eq!(follower.wait(TICK, || false), FlightOutcome::Abandoned);
        // The flight was removed, so re-joining elects a new leader.
        assert!(matches!(sf.join(1), Joined::Leader(_)));
    }

    #[test]
    fn follower_deadline_times_out_without_killing_the_flight() {
        let sf: SingleFlight<u8, u32> = SingleFlight::new();
        let _guard = match sf.join(3) {
            Joined::Leader(g) => g,
            Joined::Follower(_) => panic!("first joiner must lead"),
        };
        let follower = match sf.join(3) {
            Joined::Follower(slot) => slot,
            Joined::Leader(_) => panic!("second joiner must follow"),
        };
        let mut budget = 2;
        let outcome = follower.wait(TICK, || {
            budget -= 1;
            budget == 0
        });
        assert_eq!(outcome, FlightOutcome::TimedOut);
        assert_eq!(sf.in_flight(), 1);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf: SingleFlight<u8, u32> = SingleFlight::new();
        let a = sf.join(1);
        let b = sf.join(2);
        assert!(matches!(a, Joined::Leader(_)));
        assert!(matches!(b, Joined::Leader(_)));
        assert_eq!(sf.in_flight(), 2);
    }

    #[test]
    fn many_concurrent_joiners_all_follow_one_leader() {
        let sf: Arc<SingleFlight<u8, u32>> = Arc::new(SingleFlight::new());
        let guard = match sf.join(42) {
            Joined::Leader(g) => g,
            Joined::Follower(_) => panic!("first joiner must lead"),
        };
        let joined = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..15)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let joined = Arc::clone(&joined);
                thread::spawn(move || match sf.join(42) {
                    Joined::Leader(_) => panic!("flight is held, nobody else may lead"),
                    Joined::Follower(slot) => {
                        joined.fetch_add(1, Ordering::SeqCst);
                        slot.wait(TICK, || false)
                    }
                })
            })
            .collect();
        // Complete only after every follower has joined the pending flight.
        while joined.load(Ordering::SeqCst) < 15 {
            thread::yield_now();
        }
        guard.complete(7);
        for h in handles {
            assert_eq!(h.join().unwrap(), FlightOutcome::Done(7));
        }
        assert_eq!(sf.in_flight(), 0);
    }
}
