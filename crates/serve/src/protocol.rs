//! The newline-delimited JSON protocol.
//!
//! One request per line in, one response per line out, responses in
//! request order. The full schema lives in `docs/serve-protocol.md` (and
//! machine-readable in `docs/serve-protocol.schema.json`, enforced by the
//! `serve_lint` CI tool); this module is the single codec for both sides.
//!
//! Design constraints, inherited from the workspace determinism story:
//!
//! - **Responses are bit-reproducible.** Floating-point results travel as
//!   16-hex-digit `f64::to_bits` strings (the workspace serde convention),
//!   objects serialize with sorted keys, and nothing scheduling-dependent
//!   (timings, which job led a coalesced flight) appears in a response —
//!   that information goes to the `morph-trace` recorder instead. Golden
//!   fixtures can therefore `diff` exactly.
//! - **Errors are in-band.** A failed job is a structured `error` response
//!   on its line, never a dead service or a missing line.

use std::collections::BTreeMap;

use serde::json::{self, Value};
use serde::Serialize;

use crate::service::{JobError, SubmitError};
use morphqpv::prelude::{Verdict, VerificationReport};

/// Protocol revision stamped on every single-job response line.
///
/// Request lines may declare their protocol revision with an explicit
/// `"v"` field; a line without one is a legacy v1 request. Single-job
/// (`"kind":"verify"`) requests are accepted at any supported revision
/// and always answered with a v1 response body, so pre-versioning
/// clients and golden fixtures keep working unchanged.
pub const PROTOCOL_VERSION: u32 = 1;

/// Protocol revision of the `verify_revisions` batch extension — the
/// highest revision this build speaks. Revision-stream requests must
/// declare `"v":2` explicitly (the feature postdates v1, so a legacy
/// line can never carry it by accident), and their response lines stamp
/// `"protocol":2`.
pub const PROTOCOL_VERSION_REVISIONS: u32 = 2;

/// One parsed request line: the versioned envelope (`"v"`, `"kind"`)
/// dispatched to its body type.
///
/// `"kind"` defaults to `"verify"` and `"v"` to `1`, so every
/// pre-versioning request line parses exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `"kind":"verify"` (or absent): one verification job.
    Job(JobRequest),
    /// `"kind":"verify_revisions"` (requires `"v":2`): an ordered
    /// revision stream verified incrementally against one shared
    /// segment cache.
    Revisions(RevisionsRequest),
}

impl Request {
    /// Parses one request line, dispatching on the `"v"`/`"kind"`
    /// envelope.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line: bad JSON, an
    /// unsupported `"v"`, an unknown `"kind"`, a `verify_revisions`
    /// request not declaring `"v":2`, or a body-level field error.
    pub fn from_json_line(line: &str) -> Result<Request, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = match &value {
            Value::Object(m) => m,
            other => return Err(format!("request must be an object, found {other:?}")),
        };
        let v = match optional_u64(obj, "v")? {
            None => 1,
            Some(0) => return Err("v must be >= 1".to_string()),
            Some(n) => n,
        };
        if v > u64::from(PROTOCOL_VERSION_REVISIONS) {
            return Err(format!(
                "unsupported protocol version v={v} (this build speaks up to v={PROTOCOL_VERSION_REVISIONS})"
            ));
        }
        match optional_str(obj, "kind")?.as_deref().unwrap_or("verify") {
            "verify" => Ok(Request::Job(JobRequest::parse_object(obj)?)),
            "verify_revisions" => {
                if v < u64::from(PROTOCOL_VERSION_REVISIONS) {
                    return Err(format!(
                        "kind `verify_revisions` requires `\"v\":{PROTOCOL_VERSION_REVISIONS}` on the request line (got v={v})"
                    ));
                }
                Ok(Request::Revisions(RevisionsRequest::parse_object(obj)?))
            }
            other => Err(format!(
                "unknown request kind `{other}` (expected `verify` or `verify_revisions`)"
            )),
        }
    }

    /// The caller-chosen request id, whichever kind this is.
    pub fn id(&self) -> &str {
        match self {
            Request::Job(r) => &r.id,
            Request::Revisions(r) => &r.id,
        }
    }
}

/// One verification job, parsed from a request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen identifier echoed on the response line.
    pub id: String,
    /// Program in the surface syntax, including `// assert` lines.
    pub program: String,
    /// Qubits carrying the program input.
    pub input_qubits: Vec<usize>,
    /// RNG seed for the job (characterization seed is derived from it).
    pub seed: u64,
    /// Overrides the sampled-input budget.
    pub samples: Option<usize>,
    /// Job deadline in milliseconds, counted from submission.
    pub deadline_ms: Option<u64>,
    /// Overrides the validation solver's restart count.
    pub restarts: Option<usize>,
    /// Noise model name: `"noiseless"` (default) or `"ibm_cairo"`.
    pub noise: Option<String>,
}

impl JobRequest {
    /// A minimal request with the required fields; optional knobs default
    /// to `None`.
    pub fn new(
        id: impl Into<String>,
        program: impl Into<String>,
        input_qubits: Vec<usize>,
    ) -> Self {
        JobRequest {
            id: id.into(),
            program: program.into(),
            input_qubits,
            seed: 0,
            samples: None,
            deadline_ms: None,
            restarts: None,
            noise: None,
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line (bad JSON,
    /// missing or mistyped field).
    pub fn from_json_line(line: &str) -> Result<JobRequest, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = match &value {
            Value::Object(m) => m,
            other => return Err(format!("request must be an object, found {other:?}")),
        };
        JobRequest::parse_object(obj)
    }

    /// Parses the request body out of an already-parsed line object
    /// (the [`Request`] envelope dispatcher lands here).
    fn parse_object(obj: &BTreeMap<String, Value>) -> Result<JobRequest, String> {
        let id = require_str(obj, "id")?;
        let program = require_str(obj, "program")?;
        let input_qubits = input_qubits_field(obj)?;
        let seed = require_seed(obj)?;
        Ok(JobRequest {
            id,
            program,
            input_qubits,
            seed,
            samples: optional_u64(obj, "samples")?.map(|n| n as usize),
            deadline_ms: optional_u64(obj, "deadline_ms")?,
            restarts: optional_u64(obj, "restarts")?.map(|n| n as usize),
            noise: optional_str(obj, "noise")?,
        })
    }

    /// Renders the request as one JSON line (fixture generation, tests).
    pub fn to_json_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Value::Str(self.id.clone()));
        m.insert("program".to_string(), Value::Str(self.program.clone()));
        m.insert(
            "input_qubits".to_string(),
            Value::Array(
                self.input_qubits
                    .iter()
                    .map(|&q| Value::UInt(q as u64))
                    .collect(),
            ),
        );
        m.insert("seed".to_string(), Value::UInt(self.seed));
        if let Some(n) = self.samples {
            m.insert("samples".to_string(), Value::UInt(n as u64));
        }
        if let Some(ms) = self.deadline_ms {
            m.insert("deadline_ms".to_string(), Value::UInt(ms));
        }
        if let Some(r) = self.restarts {
            m.insert("restarts".to_string(), Value::UInt(r as u64));
        }
        if let Some(noise) = &self.noise {
            m.insert("noise".to_string(), Value::Str(noise.clone()));
        }
        json::to_string(&Value::Object(m))
    }
}

/// An ordered stream of program revisions verified incrementally: every
/// revision shares one job-local segment cache, so re-verifying an
/// edited program recomputes only the segments the edit touched. Parsed
/// from a `"v":2`, `"kind":"verify_revisions"` request line.
///
/// The shared knobs (`input_qubits`, `seed`, `samples`, …) apply to
/// every revision; each revision restarts its RNG from `seed`, so an
/// identical revision appearing twice in the stream answers
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RevisionsRequest {
    /// Caller-chosen identifier echoed on the response line.
    pub id: String,
    /// Program revisions in verification order, each in the surface
    /// syntax including `// assert` lines. Must be non-empty.
    pub revisions: Vec<String>,
    /// Qubits carrying the program input (shared by all revisions).
    pub input_qubits: Vec<usize>,
    /// RNG seed; every revision restarts from it.
    pub seed: u64,
    /// Overrides the sampled-input budget.
    pub samples: Option<usize>,
    /// Deadline in milliseconds for the whole stream, counted from
    /// submission; cancellation is checked between revisions.
    pub deadline_ms: Option<u64>,
    /// Overrides the validation solver's restart count.
    pub restarts: Option<usize>,
    /// Noise model name: `"noiseless"` (default) or `"ibm_cairo"`.
    pub noise: Option<String>,
    /// Input ensemble name: `"clifford"` (default), `"pauli_product"`,
    /// or `"basis"`.
    pub ensemble: Option<String>,
    /// Overrides the target gates-per-segment of the incremental
    /// characterization (must be >= 1).
    pub segment_gates: Option<usize>,
}

impl RevisionsRequest {
    /// A minimal revision-stream request; optional knobs default to
    /// `None`.
    pub fn new(id: impl Into<String>, revisions: Vec<String>, input_qubits: Vec<usize>) -> Self {
        RevisionsRequest {
            id: id.into(),
            revisions,
            input_qubits,
            seed: 0,
            samples: None,
            deadline_ms: None,
            restarts: None,
            noise: None,
            ensemble: None,
            segment_gates: None,
        }
    }

    fn parse_object(obj: &BTreeMap<String, Value>) -> Result<RevisionsRequest, String> {
        let id = require_str(obj, "id")?;
        let revisions = match obj.get("revisions") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.clone()),
                    _ => Err("revisions entries must be program strings".to_string()),
                })
                .collect::<Result<Vec<String>, String>>()?,
            Some(_) => return Err("revisions must be an array".into()),
            None => return Err("missing required field `revisions`".into()),
        };
        if revisions.is_empty() {
            return Err("revisions must not be empty".into());
        }
        let segment_gates = optional_u64(obj, "segment_gates")?.map(|n| n as usize);
        if segment_gates == Some(0) {
            return Err("segment_gates must be >= 1".into());
        }
        Ok(RevisionsRequest {
            id,
            revisions,
            input_qubits: input_qubits_field(obj)?,
            seed: require_seed(obj)?,
            samples: optional_u64(obj, "samples")?.map(|n| n as usize),
            deadline_ms: optional_u64(obj, "deadline_ms")?,
            restarts: optional_u64(obj, "restarts")?.map(|n| n as usize),
            noise: optional_str(obj, "noise")?,
            ensemble: optional_str(obj, "ensemble")?,
            segment_gates,
        })
    }

    /// Renders the request as one JSON line (fixture generation, tests),
    /// including its `"v":2` / `"kind":"verify_revisions"` envelope.
    pub fn to_json_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert(
            "v".to_string(),
            Value::UInt(u64::from(PROTOCOL_VERSION_REVISIONS)),
        );
        m.insert(
            "kind".to_string(),
            Value::Str("verify_revisions".to_string()),
        );
        m.insert("id".to_string(), Value::Str(self.id.clone()));
        m.insert(
            "revisions".to_string(),
            Value::Array(
                self.revisions
                    .iter()
                    .map(|p| Value::Str(p.clone()))
                    .collect(),
            ),
        );
        m.insert(
            "input_qubits".to_string(),
            Value::Array(
                self.input_qubits
                    .iter()
                    .map(|&q| Value::UInt(q as u64))
                    .collect(),
            ),
        );
        m.insert("seed".to_string(), Value::UInt(self.seed));
        if let Some(n) = self.samples {
            m.insert("samples".to_string(), Value::UInt(n as u64));
        }
        if let Some(ms) = self.deadline_ms {
            m.insert("deadline_ms".to_string(), Value::UInt(ms));
        }
        if let Some(r) = self.restarts {
            m.insert("restarts".to_string(), Value::UInt(r as u64));
        }
        if let Some(noise) = &self.noise {
            m.insert("noise".to_string(), Value::Str(noise.clone()));
        }
        if let Some(ensemble) = &self.ensemble {
            m.insert("ensemble".to_string(), Value::Str(ensemble.clone()));
        }
        if let Some(g) = self.segment_gates {
            m.insert("segment_gates".to_string(), Value::UInt(g as u64));
        }
        json::to_string(&Value::Object(m))
    }
}

fn input_qubits_field(obj: &BTreeMap<String, Value>) -> Result<Vec<usize>, String> {
    match obj.get("input_qubits") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| "input_qubits entries must be unsigned integers".to_string())
            })
            .collect::<Result<Vec<usize>, String>>(),
        Some(_) => Err("input_qubits must be an array".into()),
        None => Err("missing required field `input_qubits`".into()),
    }
}

fn require_seed(obj: &BTreeMap<String, Value>) -> Result<u64, String> {
    match obj.get("seed") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "seed must be an unsigned integer".to_string()),
        None => Err("missing required field `seed`".into()),
    }
}

fn require_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{key} must be a string")),
        None => Err(format!("missing required field `{key}`")),
    }
}

fn optional_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be an unsigned integer")),
        None => Ok(None),
    }
}

fn optional_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("{key} must be a string")),
        None => Ok(None),
    }
}

/// Terminal status of one job, as rendered on its response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed; every assertion passed (process exit contribution 0).
    Passed,
    /// Completed; at least one assertion refuted (exit contribution 2).
    Refuted,
    /// Never ran: the submission queue was full or the service was
    /// shutting down (exit contribution 1).
    Rejected,
    /// Started but could not complete (exit contribution 1).
    Error,
}

impl JobStatus {
    fn tag(self) -> &'static str {
        match self {
            JobStatus::Passed => "passed",
            JobStatus::Refuted => "refuted",
            JobStatus::Rejected => "rejected",
            JobStatus::Error => "error",
        }
    }
}

/// One response line.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// The serialized line body (already deterministic).
    body: Value,
}

impl JobResponse {
    /// Builds the response for a completed verification.
    pub fn from_report(
        id: &str,
        fingerprint: morph_store::Fingerprint,
        report: &VerificationReport,
    ) -> JobResponse {
        let status = report_status(report);
        let mut body = base_body(id, status);
        body.insert("characterization_fp".to_string(), fingerprint.to_value());
        body.insert("assertions".to_string(), assertions_value(report));
        body.insert("run".to_string(), run_value(report));
        JobResponse {
            id: id.to_string(),
            status,
            body: Value::Object(body),
        }
    }

    /// Builds the response for a completed `verify_revisions` stream:
    /// one entry per revision (in stream order) carrying its status,
    /// assertion verdicts, run costs, and the per-segment cache
    /// behaviour that proves what the incremental pass reused. A
    /// revision that failed contributes an in-band error entry; the
    /// line-level status is the worst across revisions (refuted
    /// dominates error dominates passed, matching the exit-code
    /// convention). Stamped `"protocol":2`.
    pub fn from_revisions(
        id: &str,
        outcomes: &[Result<VerificationReport, JobError>],
    ) -> JobResponse {
        // Severity follows the exit-code convention (refuted > error >
        // passed), so the line-level status and exit code agree.
        let severity = |s: JobStatus| match s {
            JobStatus::Passed => 0,
            JobStatus::Rejected | JobStatus::Error => 1,
            JobStatus::Refuted => 2,
        };
        let mut status = JobStatus::Passed;
        let mut entries: Vec<Value> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            let mut m = BTreeMap::new();
            match outcome {
                Ok(report) => {
                    let rev_status = report_status(report);
                    if severity(rev_status) > severity(status) {
                        status = rev_status;
                    }
                    m.insert(
                        "status".to_string(),
                        Value::Str(rev_status.tag().to_string()),
                    );
                    m.insert("assertions".to_string(), assertions_value(report));
                    m.insert("run".to_string(), run_value(report));
                    let cache = report.run.cache.unwrap_or_default();
                    let mut seg = BTreeMap::new();
                    seg.insert("hits".to_string(), Value::UInt(cache.segment_hits));
                    seg.insert("misses".to_string(), Value::UInt(cache.segment_misses));
                    seg.insert(
                        "total".to_string(),
                        Value::UInt(cache.segment_hits + cache.segment_misses),
                    );
                    m.insert("segments".to_string(), Value::Object(seg));
                }
                Err(e) => {
                    if severity(JobStatus::Error) > severity(status) {
                        status = JobStatus::Error;
                    }
                    m.insert(
                        "status".to_string(),
                        Value::Str(JobStatus::Error.tag().to_string()),
                    );
                    let mut err = BTreeMap::new();
                    err.insert("kind".to_string(), Value::Str(e.kind().to_string()));
                    err.insert("message".to_string(), Value::Str(e.to_string()));
                    m.insert("error".to_string(), Value::Object(err));
                }
            }
            entries.push(Value::Object(m));
        }
        let mut body = base_body_with(id, status, PROTOCOL_VERSION_REVISIONS);
        body.insert("revisions".to_string(), Value::Array(entries));
        JobResponse {
            id: id.to_string(),
            status,
            body: Value::Object(body),
        }
    }

    /// Builds the response for a `verify_revisions` stream that failed
    /// before producing per-revision results (deadline while queued,
    /// worker panic). Stamped `"protocol":2` like every revisions
    /// response.
    pub fn from_revisions_error(id: &str, error: &JobError) -> JobResponse {
        JobResponse::error_with_version(
            id,
            JobStatus::Error,
            error.kind(),
            &error.to_string(),
            PROTOCOL_VERSION_REVISIONS,
        )
    }

    /// Builds the response for a `verify_revisions` submission the
    /// service refused. Stamped `"protocol":2`.
    pub fn from_revisions_rejection(id: &str, rejection: &SubmitError) -> JobResponse {
        JobResponse::error_with_version(
            id,
            JobStatus::Rejected,
            rejection.kind(),
            &rejection.to_string(),
            PROTOCOL_VERSION_REVISIONS,
        )
    }

    /// Builds the response for a job that started but failed.
    pub fn from_error(id: &str, error: &JobError) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Error, error.kind(), &error.to_string())
    }

    /// Builds the response for a submission the service refused.
    pub fn from_rejection(id: &str, rejection: &SubmitError) -> JobResponse {
        JobResponse::error_with(
            id,
            JobStatus::Rejected,
            rejection.kind(),
            &rejection.to_string(),
        )
    }

    /// Builds the response for a line that did not parse as a request.
    pub fn from_invalid_line(id: &str, message: &str) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Error, "invalid_request", message)
    }

    /// Builds a structured refusal with an explicit kind — the network
    /// listener's admission-control rejections (`connection_quota`,
    /// `job_quota`) that have no [`SubmitError`] counterpart. The job (or
    /// connection) never ran; status is `rejected`.
    pub fn from_refusal(id: &str, kind: &str, message: &str) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Rejected, kind, message)
    }

    fn error_with(id: &str, status: JobStatus, kind: &str, message: &str) -> JobResponse {
        JobResponse::error_with_version(id, status, kind, message, PROTOCOL_VERSION)
    }

    fn error_with_version(
        id: &str,
        status: JobStatus,
        kind: &str,
        message: &str,
        version: u32,
    ) -> JobResponse {
        let mut body = base_body_with(id, status, version);
        let mut err = BTreeMap::new();
        err.insert("kind".to_string(), Value::Str(kind.to_string()));
        err.insert("message".to_string(), Value::Str(message.to_string()));
        body.insert("error".to_string(), Value::Object(err));
        JobResponse {
            id: id.to_string(),
            status,
            body: Value::Object(body),
        }
    }

    /// The response's process-exit-code contribution under the 0/2/1
    /// convention; a batch exits with the maximum across its lines.
    pub fn exit_code(&self) -> i32 {
        match self.status {
            JobStatus::Passed => 0,
            JobStatus::Refuted => 2,
            JobStatus::Rejected | JobStatus::Error => 1,
        }
    }

    /// Renders the response as one JSON line.
    pub fn to_json_line(&self) -> String {
        json::to_string(&self.body)
    }

    /// The structured body (for tests inspecting fields).
    pub fn body(&self) -> &Value {
        &self.body
    }
}

fn base_body(id: &str, status: JobStatus) -> BTreeMap<String, Value> {
    base_body_with(id, status, PROTOCOL_VERSION)
}

fn base_body_with(id: &str, status: JobStatus, version: u32) -> BTreeMap<String, Value> {
    let mut m = BTreeMap::new();
    m.insert("id".to_string(), Value::Str(id.to_string()));
    m.insert("protocol".to_string(), Value::UInt(u64::from(version)));
    m.insert("status".to_string(), Value::Str(status.tag().to_string()));
    m
}

fn report_status(report: &VerificationReport) -> JobStatus {
    if report.all_passed() {
        JobStatus::Passed
    } else {
        JobStatus::Refuted
    }
}

/// The per-assertion verdict array shared by single-job and per-revision
/// response bodies.
fn assertions_value(report: &VerificationReport) -> Value {
    let assertions: Vec<Value> = report
        .outcomes
        .iter()
        .map(|o| {
            let mut m = BTreeMap::new();
            match &o.verdict {
                Verdict::Passed {
                    max_objective,
                    confidence,
                } => {
                    m.insert("verdict".to_string(), Value::Str("passed".into()));
                    m.insert("max_objective".to_string(), max_objective.to_value());
                    m.insert("confidence".to_string(), confidence.to_value());
                }
                Verdict::Failed { max_objective, .. } => {
                    m.insert("verdict".to_string(), Value::Str("failed".into()));
                    m.insert("max_objective".to_string(), max_objective.to_value());
                }
            }
            Value::Object(m)
        })
        .collect();
    Value::Array(assertions)
}

/// The run-cost object shared by single-job and per-revision response
/// bodies.
fn run_value(report: &VerificationReport) -> Value {
    let mut run = BTreeMap::new();
    run.insert("executions".to_string(), Value::UInt(report.run.executions));
    run.insert("shots".to_string(), Value::UInt(report.run.shots));
    run.insert(
        "quantum_ops".to_string(),
        Value::UInt(report.run.quantum_ops),
    );
    run.insert(
        "solver_evaluations".to_string(),
        Value::UInt(report.run.solver_evaluations),
    );
    run.insert(
        "solver_iterations".to_string(),
        Value::UInt(report.run.solver_iterations),
    );
    run.insert("backend".to_string(), Value::Str(report.run.backend.tag()));
    run.insert(
        "sparse_spills".to_string(),
        Value::UInt(report.run.fast_path.spills),
    );
    run.insert(
        "sparse_switches".to_string(),
        Value::UInt(report.run.fast_path.switches),
    );
    run.insert(
        "splices".to_string(),
        Value::UInt(report.run.fast_path.splices),
    );
    run.insert(
        "sparse_peak_nonzeros".to_string(),
        Value::UInt(report.run.fast_path.peak_nonzeros),
    );
    Value::Object(run)
}

/// Extracts a best-effort job id from an unparseable request line, so the
/// error response still correlates with the input.
pub fn salvage_id(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| "<unknown>".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let mut req = JobRequest::new("job-1", "qreg q[1];", vec![0]);
        req.seed = 42;
        req.samples = Some(4);
        req.deadline_ms = Some(500);
        req.noise = Some("ibm_cairo".into());
        let line = req.to_json_line();
        assert_eq!(JobRequest::from_json_line(&line).unwrap(), req);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = JobRequest::from_json_line(r#"{"id":"x","program":"p"}"#).unwrap_err();
        assert!(err.contains("input_qubits"), "{err}");
        let err = JobRequest::from_json_line(r#"{"id":"x","program":"p","input_qubits":[0]}"#)
            .unwrap_err();
        assert!(err.contains("seed"), "{err}");
        assert!(JobRequest::from_json_line("not json").is_err());
    }

    #[test]
    fn salvage_id_recovers_when_possible() {
        assert_eq!(salvage_id(r#"{"id":"j7","seed":"bad"}"#), "j7");
        assert_eq!(salvage_id("garbage"), "<unknown>");
    }

    #[test]
    fn error_lines_carry_kind_and_message() {
        let resp = JobResponse::from_invalid_line("j", "missing seed");
        assert_eq!(resp.exit_code(), 1);
        let line = resp.to_json_line();
        assert!(line.contains("\"invalid_request\""), "{line}");
        assert!(line.contains("\"protocol\":1"), "{line}");
    }

    #[test]
    fn envelope_defaults_to_a_v1_verify_request() {
        // A pre-versioning line (no `v`, no `kind`) parses to the same
        // job the legacy codec produced.
        let line = r#"{"id":"x","program":"p","input_qubits":[0],"seed":3}"#;
        let legacy = JobRequest::from_json_line(line).unwrap();
        match Request::from_json_line(line).unwrap() {
            Request::Job(job) => assert_eq!(job, legacy),
            other => panic!("expected a job, got {other:?}"),
        }
        // An explicit `"v":1` and `"kind":"verify"` means the same.
        let line = r#"{"id":"x","kind":"verify","program":"p","input_qubits":[0],"seed":3,"v":1}"#;
        match Request::from_json_line(line).unwrap() {
            Request::Job(job) => assert_eq!(job, legacy),
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn envelope_rejects_bad_versions_and_kinds() {
        let err = Request::from_json_line(
            r#"{"id":"x","program":"p","input_qubits":[0],"seed":3,"v":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("v must be >= 1"), "{err}");
        let err = Request::from_json_line(
            r#"{"id":"x","program":"p","input_qubits":[0],"seed":3,"v":3}"#,
        )
        .unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");
        let err = Request::from_json_line(
            r#"{"id":"x","kind":"verify_stream","program":"p","input_qubits":[0],"seed":3}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown request kind"), "{err}");
        // The revisions kind postdates v1, so it must declare v2.
        let err = Request::from_json_line(
            r#"{"id":"x","kind":"verify_revisions","revisions":["p"],"input_qubits":[0],"seed":3}"#,
        )
        .unwrap_err();
        assert!(err.contains("requires"), "{err}");
    }

    #[test]
    fn revisions_request_round_trips_through_json() {
        let mut req = RevisionsRequest::new("rev-1", vec!["a".into(), "b".into()], vec![0, 1]);
        req.seed = 9;
        req.samples = Some(4);
        req.ensemble = Some("pauli_product".into());
        req.segment_gates = Some(1);
        let line = req.to_json_line();
        match Request::from_json_line(&line).unwrap() {
            Request::Revisions(parsed) => assert_eq!(parsed, req),
            other => panic!("expected a revisions request, got {other:?}"),
        }
    }

    #[test]
    fn revisions_request_validates_its_fields() {
        let base = |extra: &str| {
            format!(
                r#"{{"id":"x","kind":"verify_revisions","input_qubits":[0],"seed":3,"v":2{extra}}}"#
            )
        };
        let err = Request::from_json_line(&base("")).unwrap_err();
        assert!(err.contains("revisions"), "{err}");
        let err = Request::from_json_line(&base(r#","revisions":[]"#)).unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
        let err =
            Request::from_json_line(&base(r#","revisions":["p"],"segment_gates":0"#)).unwrap_err();
        assert!(err.contains("segment_gates"), "{err}");
        let err = Request::from_json_line(&base(r#","revisions":[7]"#)).unwrap_err();
        assert!(err.contains("program strings"), "{err}");
    }

    #[test]
    fn revisions_error_lines_stamp_protocol_two() {
        let resp = JobResponse::from_revisions_error(
            "rev-err",
            &JobError::Invalid {
                message: "nope".into(),
            },
        );
        let line = resp.to_json_line();
        assert!(line.contains("\"protocol\":2"), "{line}");
        assert_eq!(resp.exit_code(), 1);
    }
}
