//! The newline-delimited JSON protocol.
//!
//! One request per line in, one response per line out, responses in
//! request order. The full schema lives in `docs/serve-protocol.md` (and
//! machine-readable in `docs/serve-protocol.schema.json`, enforced by the
//! `serve_lint` CI tool); this module is the single codec for both sides.
//!
//! Design constraints, inherited from the workspace determinism story:
//!
//! - **Responses are bit-reproducible.** Floating-point results travel as
//!   16-hex-digit `f64::to_bits` strings (the workspace serde convention),
//!   objects serialize with sorted keys, and nothing scheduling-dependent
//!   (timings, which job led a coalesced flight) appears in a response —
//!   that information goes to the `morph-trace` recorder instead. Golden
//!   fixtures can therefore `diff` exactly.
//! - **Errors are in-band.** A failed job is a structured `error` response
//!   on its line, never a dead service or a missing line.

use std::collections::BTreeMap;

use serde::json::{self, Value};
use serde::Serialize;

use crate::service::{JobError, SubmitError};
use morphqpv::prelude::{Verdict, VerificationReport};

/// Protocol revision stamped on every response line.
pub const PROTOCOL_VERSION: u32 = 1;

/// One verification job, parsed from a request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen identifier echoed on the response line.
    pub id: String,
    /// Program in the surface syntax, including `// assert` lines.
    pub program: String,
    /// Qubits carrying the program input.
    pub input_qubits: Vec<usize>,
    /// RNG seed for the job (characterization seed is derived from it).
    pub seed: u64,
    /// Overrides the sampled-input budget.
    pub samples: Option<usize>,
    /// Job deadline in milliseconds, counted from submission.
    pub deadline_ms: Option<u64>,
    /// Overrides the validation solver's restart count.
    pub restarts: Option<usize>,
    /// Noise model name: `"noiseless"` (default) or `"ibm_cairo"`.
    pub noise: Option<String>,
}

impl JobRequest {
    /// A minimal request with the required fields; optional knobs default
    /// to `None`.
    pub fn new(
        id: impl Into<String>,
        program: impl Into<String>,
        input_qubits: Vec<usize>,
    ) -> Self {
        JobRequest {
            id: id.into(),
            program: program.into(),
            input_qubits,
            seed: 0,
            samples: None,
            deadline_ms: None,
            restarts: None,
            noise: None,
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line (bad JSON,
    /// missing or mistyped field).
    pub fn from_json_line(line: &str) -> Result<JobRequest, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = match &value {
            Value::Object(m) => m,
            other => return Err(format!("request must be an object, found {other:?}")),
        };
        let id = require_str(obj, "id")?;
        let program = require_str(obj, "program")?;
        let input_qubits = match obj.get("input_qubits") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "input_qubits entries must be unsigned integers".to_string())
                })
                .collect::<Result<Vec<usize>, String>>()?,
            Some(_) => return Err("input_qubits must be an array".into()),
            None => return Err("missing required field `input_qubits`".into()),
        };
        let seed = match obj.get("seed") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "seed must be an unsigned integer".to_string())?,
            None => return Err("missing required field `seed`".into()),
        };
        Ok(JobRequest {
            id,
            program,
            input_qubits,
            seed,
            samples: optional_u64(obj, "samples")?.map(|n| n as usize),
            deadline_ms: optional_u64(obj, "deadline_ms")?,
            restarts: optional_u64(obj, "restarts")?.map(|n| n as usize),
            noise: optional_str(obj, "noise")?,
        })
    }

    /// Renders the request as one JSON line (fixture generation, tests).
    pub fn to_json_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Value::Str(self.id.clone()));
        m.insert("program".to_string(), Value::Str(self.program.clone()));
        m.insert(
            "input_qubits".to_string(),
            Value::Array(
                self.input_qubits
                    .iter()
                    .map(|&q| Value::UInt(q as u64))
                    .collect(),
            ),
        );
        m.insert("seed".to_string(), Value::UInt(self.seed));
        if let Some(n) = self.samples {
            m.insert("samples".to_string(), Value::UInt(n as u64));
        }
        if let Some(ms) = self.deadline_ms {
            m.insert("deadline_ms".to_string(), Value::UInt(ms));
        }
        if let Some(r) = self.restarts {
            m.insert("restarts".to_string(), Value::UInt(r as u64));
        }
        if let Some(noise) = &self.noise {
            m.insert("noise".to_string(), Value::Str(noise.clone()));
        }
        json::to_string(&Value::Object(m))
    }
}

fn require_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{key} must be a string")),
        None => Err(format!("missing required field `{key}`")),
    }
}

fn optional_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be an unsigned integer")),
        None => Ok(None),
    }
}

fn optional_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("{key} must be a string")),
        None => Ok(None),
    }
}

/// Terminal status of one job, as rendered on its response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed; every assertion passed (process exit contribution 0).
    Passed,
    /// Completed; at least one assertion refuted (exit contribution 2).
    Refuted,
    /// Never ran: the submission queue was full or the service was
    /// shutting down (exit contribution 1).
    Rejected,
    /// Started but could not complete (exit contribution 1).
    Error,
}

impl JobStatus {
    fn tag(self) -> &'static str {
        match self {
            JobStatus::Passed => "passed",
            JobStatus::Refuted => "refuted",
            JobStatus::Rejected => "rejected",
            JobStatus::Error => "error",
        }
    }
}

/// One response line.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// The serialized line body (already deterministic).
    body: Value,
}

impl JobResponse {
    /// Builds the response for a completed verification.
    pub fn from_report(
        id: &str,
        fingerprint: morph_store::Fingerprint,
        report: &VerificationReport,
    ) -> JobResponse {
        let status = if report.all_passed() {
            JobStatus::Passed
        } else {
            JobStatus::Refuted
        };
        let assertions: Vec<Value> = report
            .outcomes
            .iter()
            .map(|o| {
                let mut m = BTreeMap::new();
                match &o.verdict {
                    Verdict::Passed {
                        max_objective,
                        confidence,
                    } => {
                        m.insert("verdict".to_string(), Value::Str("passed".into()));
                        m.insert("max_objective".to_string(), max_objective.to_value());
                        m.insert("confidence".to_string(), confidence.to_value());
                    }
                    Verdict::Failed { max_objective, .. } => {
                        m.insert("verdict".to_string(), Value::Str("failed".into()));
                        m.insert("max_objective".to_string(), max_objective.to_value());
                    }
                }
                Value::Object(m)
            })
            .collect();
        let mut run = BTreeMap::new();
        run.insert("executions".to_string(), Value::UInt(report.run.executions));
        run.insert("shots".to_string(), Value::UInt(report.run.shots));
        run.insert(
            "quantum_ops".to_string(),
            Value::UInt(report.run.quantum_ops),
        );
        run.insert(
            "solver_evaluations".to_string(),
            Value::UInt(report.run.solver_evaluations),
        );
        run.insert(
            "solver_iterations".to_string(),
            Value::UInt(report.run.solver_iterations),
        );
        run.insert("backend".to_string(), Value::Str(report.run.backend.tag()));
        run.insert(
            "sparse_spills".to_string(),
            Value::UInt(report.run.fast_path.spills),
        );
        run.insert(
            "sparse_switches".to_string(),
            Value::UInt(report.run.fast_path.switches),
        );
        run.insert(
            "splices".to_string(),
            Value::UInt(report.run.fast_path.splices),
        );
        run.insert(
            "sparse_peak_nonzeros".to_string(),
            Value::UInt(report.run.fast_path.peak_nonzeros),
        );

        let mut body = base_body(id, status);
        body.insert("characterization_fp".to_string(), fingerprint.to_value());
        body.insert("assertions".to_string(), Value::Array(assertions));
        body.insert("run".to_string(), Value::Object(run));
        JobResponse {
            id: id.to_string(),
            status,
            body: Value::Object(body),
        }
    }

    /// Builds the response for a job that started but failed.
    pub fn from_error(id: &str, error: &JobError) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Error, error.kind(), &error.to_string())
    }

    /// Builds the response for a submission the service refused.
    pub fn from_rejection(id: &str, rejection: &SubmitError) -> JobResponse {
        JobResponse::error_with(
            id,
            JobStatus::Rejected,
            rejection.kind(),
            &rejection.to_string(),
        )
    }

    /// Builds the response for a line that did not parse as a request.
    pub fn from_invalid_line(id: &str, message: &str) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Error, "invalid_request", message)
    }

    /// Builds a structured refusal with an explicit kind — the network
    /// listener's admission-control rejections (`connection_quota`,
    /// `job_quota`) that have no [`SubmitError`] counterpart. The job (or
    /// connection) never ran; status is `rejected`.
    pub fn from_refusal(id: &str, kind: &str, message: &str) -> JobResponse {
        JobResponse::error_with(id, JobStatus::Rejected, kind, message)
    }

    fn error_with(id: &str, status: JobStatus, kind: &str, message: &str) -> JobResponse {
        let mut body = base_body(id, status);
        let mut err = BTreeMap::new();
        err.insert("kind".to_string(), Value::Str(kind.to_string()));
        err.insert("message".to_string(), Value::Str(message.to_string()));
        body.insert("error".to_string(), Value::Object(err));
        JobResponse {
            id: id.to_string(),
            status,
            body: Value::Object(body),
        }
    }

    /// The response's process-exit-code contribution under the 0/2/1
    /// convention; a batch exits with the maximum across its lines.
    pub fn exit_code(&self) -> i32 {
        match self.status {
            JobStatus::Passed => 0,
            JobStatus::Refuted => 2,
            JobStatus::Rejected | JobStatus::Error => 1,
        }
    }

    /// Renders the response as one JSON line.
    pub fn to_json_line(&self) -> String {
        json::to_string(&self.body)
    }

    /// The structured body (for tests inspecting fields).
    pub fn body(&self) -> &Value {
        &self.body
    }
}

fn base_body(id: &str, status: JobStatus) -> BTreeMap<String, Value> {
    let mut m = BTreeMap::new();
    m.insert("id".to_string(), Value::Str(id.to_string()));
    m.insert(
        "protocol".to_string(),
        Value::UInt(u64::from(PROTOCOL_VERSION)),
    );
    m.insert("status".to_string(), Value::Str(status.tag().to_string()));
    m
}

/// Extracts a best-effort job id from an unparseable request line, so the
/// error response still correlates with the input.
pub fn salvage_id(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| "<unknown>".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let mut req = JobRequest::new("job-1", "qreg q[1];", vec![0]);
        req.seed = 42;
        req.samples = Some(4);
        req.deadline_ms = Some(500);
        req.noise = Some("ibm_cairo".into());
        let line = req.to_json_line();
        assert_eq!(JobRequest::from_json_line(&line).unwrap(), req);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = JobRequest::from_json_line(r#"{"id":"x","program":"p"}"#).unwrap_err();
        assert!(err.contains("input_qubits"), "{err}");
        let err = JobRequest::from_json_line(r#"{"id":"x","program":"p","input_qubits":[0]}"#)
            .unwrap_err();
        assert!(err.contains("seed"), "{err}");
        assert!(JobRequest::from_json_line("not json").is_err());
    }

    #[test]
    fn salvage_id_recovers_when_possible() {
        assert_eq!(salvage_id(r#"{"id":"j7","seed":"bad"}"#), "j7");
        assert_eq!(salvage_id("garbage"), "<unknown>");
    }

    #[test]
    fn error_lines_carry_kind_and_message() {
        let resp = JobResponse::from_invalid_line("j", "missing seed");
        assert_eq!(resp.exit_code(), 1);
        let line = resp.to_json_line();
        assert!(line.contains("\"invalid_request\""), "{line}");
        assert!(line.contains("\"protocol\":1"), "{line}");
    }
}
