//! The verification service: a bounded worker pool running jobs end to
//! end, with coalescing, deadlines, panic isolation, and telemetry.
//!
//! # Job lifecycle
//!
//! [`Service::submit`] is non-blocking: it either enqueues the job on the
//! `morph-parallel` [`WorkerPool`] and returns a [`JobHandle`], or refuses
//! with a structured [`SubmitError`] (queue full, shutting down). Once a
//! worker picks the job up it runs the full pipeline — parse, fingerprint,
//! characterize (coalesced), validate — and delivers the outcome through
//! the handle. Every failure mode is a [`JobError`] on the handle; a job
//! can never take the service down.
//!
//! # Determinism
//!
//! A job's results depend only on its request. The job RNG is seeded from
//! `request.seed`; one `u64` (`char_seed`) is drawn from it to key and
//! seed characterization — exactly the [`characterize_cached`] discipline
//! — and validation continues from the job's own stream. Whether a job
//! computed its characterization, followed a coalesced flight, or hit the
//! cache is therefore *invisible in its report* (the artifact round-trip
//! is bit-exact); it shows up only in the trace counters below.
//!
//! # Telemetry (`morph-trace`, off by default)
//!
//! - span `serve/job` per job (under the submitter's current span)
//! - counter `serve/characterize_leader` — characterizations computed
//! - counter `serve/coalesced_hit` — jobs served by a concurrent leader
//! - counter `serve/cache_hit` — jobs served from the artifact cache
//! - gauge `serve/queue_depth` — queue depth sampled at each submission
//!
//! [`characterize_cached`]: morphqpv::prelude::characterize_cached

use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use morph_parallel::{PoolRejection, WorkerPool};
use morph_qsim::NoiseModel;
use morph_store::{Fingerprint, FingerprintLock};
use morph_trace::env_knob;
use morphqpv::prelude::{
    assertions_from_source, parse_program, CancelToken, Cancelled, Characterization, InputEnsemble,
    MorphError, SegmentedCache, SegmentedConfig, VerificationReport, Verifier,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{JobRequest, RevisionsRequest};
use crate::shard::{CharacterizationShards, DEFAULT_SHARDS};
use crate::singleflight::{FlightOutcome, Joined};

/// How often a coalesced follower re-checks its own deadline while waiting
/// on a leader.
const FOLLOWER_TICK: Duration = Duration::from_millis(10);

/// How often a leader waiting on another *process's* store lock re-checks
/// its own deadline.
const STORE_LOCK_TICK: Duration = Duration::from_millis(10);

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded submission queue capacity (must be nonzero).
    pub queue_capacity: usize,
    /// Persistent artifact cache directory; `None` keeps the cache
    /// memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to jobs whose request carries no `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Independent cache/flight stripes (clamped to at least 1).
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            cache_dir: None,
            default_deadline_ms: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the `MORPH_SERVE_WORKERS`,
    /// `MORPH_SERVE_QUEUE_CAP`, and `MORPH_SERVE_SHARDS` environment
    /// variables. Unset variables keep the default; unparseable or
    /// out-of-range values (a zero queue capacity or stripe count) keep
    /// the default *and* warn once via [`morph_trace::warn_invalid_knob`].
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Some(n) = env_knob::<usize>("MORPH_SERVE_WORKERS") {
            config.workers = n;
        }
        match env_knob::<usize>("MORPH_SERVE_QUEUE_CAP") {
            Some(0) => morph_trace::warn_invalid_knob(
                "MORPH_SERVE_QUEUE_CAP",
                "0",
                "queue capacity must be >= 1",
            ),
            Some(n) => config.queue_capacity = n,
            None => {}
        }
        match env_knob::<usize>("MORPH_SERVE_SHARDS") {
            Some(0) => morph_trace::warn_invalid_knob(
                "MORPH_SERVE_SHARDS",
                "0",
                "stripe count must be >= 1",
            ),
            Some(n) => config.shards = n,
            None => {}
        }
        config
    }
}

/// Why [`Service::submit`] refused a job without running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure; retry later.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl SubmitError {
    /// Stable machine-readable tag used on protocol error lines.
    pub fn kind(&self) -> &'static str {
        match self {
            SubmitError::QueueFull { .. } => "queue_full",
            SubmitError::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<PoolRejection> for SubmitError {
    fn from(r: PoolRejection) -> Self {
        match r {
            PoolRejection::QueueFull { capacity } => SubmitError::QueueFull { capacity },
            PoolRejection::ShuttingDown => SubmitError::ShuttingDown,
        }
    }
}

/// Why a job that started could not produce a report.
#[derive(Debug)]
pub enum JobError {
    /// The job's deadline elapsed (possibly while still queued); the
    /// pipeline stopped at its next cancellation check.
    DeadlineExceeded,
    /// The job's worker panicked; the panic was contained to this job.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The request was structurally invalid (bad qubit index, unknown
    /// noise model, no assertions).
    Invalid {
        /// What was wrong.
        message: String,
    },
    /// The verification pipeline itself failed (parse error, solver
    /// failure, store I/O).
    Verification(MorphError),
}

impl JobError {
    /// Stable machine-readable tag used on protocol error lines.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::DeadlineExceeded => "deadline_exceeded",
            JobError::Panicked { .. } => "panicked",
            JobError::Invalid { .. } => "invalid_request",
            JobError::Verification(_) => "verification",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::Invalid { message } => write!(f, "invalid request: {message}"),
            JobError::Verification(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Verification(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MorphError> for JobError {
    fn from(e: MorphError) -> Self {
        match e {
            // The deadline is a service-level concept; surface it as the
            // dedicated variant rather than a wrapped pipeline error.
            MorphError::Cancelled(Cancelled::DeadlineExceeded) => JobError::DeadlineExceeded,
            other => JobError::Verification(other),
        }
    }
}

impl From<Cancelled> for JobError {
    fn from(e: Cancelled) -> Self {
        JobError::from(MorphError::from(e))
    }
}

/// A completed job: the characterization's content address plus the full
/// report.
#[derive(Debug)]
pub struct JobOutput {
    /// Content address of the characterization this job used — equal
    /// across all jobs that coalesced onto one flight.
    pub fingerprint: Fingerprint,
    /// The verification report, bit-identical to an uncoalesced run with
    /// the same request.
    pub report: VerificationReport,
}

/// Handle to one submitted job.
pub struct JobHandle {
    request_id: String,
    token: CancelToken,
    rx: mpsc::Receiver<Result<JobOutput, JobError>>,
}

impl JobHandle {
    /// The request id this handle tracks.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// Requests cooperative cancellation; the job stops at its next
    /// pipeline check-in and [`wait`](Self::wait) reports the outcome.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the job finishes.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        self.rx.recv().unwrap_or_else(|_| {
            // The worker vanished without reporting — only possible if the
            // service was torn down with the job still queued.
            Err(JobError::Panicked {
                message: "worker disappeared before delivering a result".to_string(),
            })
        })
    }
}

/// The outcome of one `verify_revisions` stream: one result per
/// revision, in stream order. A failed revision is an in-band error in
/// its slot; later revisions still run (their segment cache simply
/// misses whatever the failed revision would have contributed).
#[derive(Debug)]
pub struct RevisionsOutput {
    /// Per-revision reports (or failures), in request order.
    pub revisions: Vec<Result<VerificationReport, JobError>>,
}

/// Handle to one submitted `verify_revisions` stream.
pub struct RevisionsHandle {
    request_id: String,
    token: CancelToken,
    rx: mpsc::Receiver<Result<RevisionsOutput, JobError>>,
}

impl RevisionsHandle {
    /// The request id this handle tracks.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// Requests cooperative cancellation; the stream stops before its
    /// next revision and [`wait`](Self::wait) reports the outcome.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the whole stream finishes.
    pub fn wait(self) -> Result<RevisionsOutput, JobError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(JobError::Panicked {
                message: "worker disappeared before delivering a result".to_string(),
            })
        })
    }
}

struct ServiceShared {
    shards: CharacterizationShards,
}

/// The verification service. See the module docs for the job lifecycle.
pub struct Service {
    pool: WorkerPool,
    shared: Arc<ServiceShared>,
    default_deadline_ms: Option<u64>,
}

impl Service {
    /// Starts the worker pool and opens the artifact cache.
    ///
    /// # Errors
    ///
    /// The I/O error if `config.cache_dir` cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `config.queue_capacity` is zero.
    pub fn start(config: &ServeConfig) -> io::Result<Service> {
        let shards = CharacterizationShards::open(config.shards, config.cache_dir.as_deref())?;
        Ok(Service {
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            shared: Arc::new(ServiceShared { shards }),
            default_deadline_ms: config.default_deadline_ms,
        })
    }

    /// Submits a job without blocking.
    ///
    /// The job's deadline clock starts *now* — time spent queued counts
    /// against it.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the queue is full or the service is shutting
    /// down; the job was not accepted and will not run.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, SubmitError> {
        let deadline_ms = request.deadline_ms.or(self.default_deadline_ms);
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        let job_token = token.clone();
        let parent_span = morph_trace::current_span();
        let request_id = request.id.clone();
        self.pool.try_submit(move || {
            let _span = morph_trace::span_under(parent_span, "serve/job");
            let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&shared, &request, &job_token)))
                .unwrap_or_else(|payload| {
                    Err(JobError::Panicked {
                        message: panic_message(&payload),
                    })
                });
            // A dropped handle is fine — the job's work still happened
            // (and populated the cache); only the notification is lost.
            let _ = tx.send(outcome);
        })?;
        morph_trace::gauge("serve/queue_depth", self.pool.queue_depth() as f64);
        Ok(JobHandle {
            request_id,
            token,
            rx,
        })
    }

    /// Submits a `verify_revisions` stream without blocking.
    ///
    /// The whole stream runs **sequentially inside one pooled job**
    /// against a job-local in-memory [`SegmentedCache`]: revision `k+1`
    /// reuses every segment artifact revision `k` (or any earlier
    /// revision) already characterized, and because nothing about the
    /// stream is split across workers, the response is byte-identical at
    /// any worker count. The shared whole-run artifact cache and flight
    /// table are not consulted — a revision stream's reuse story is
    /// per-segment, not per-run.
    ///
    /// The deadline covers the whole stream; cancellation is checked
    /// between revisions.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the queue is full or the service is shutting
    /// down; the stream was not accepted and will not run.
    pub fn submit_revisions(
        &self,
        request: RevisionsRequest,
    ) -> Result<RevisionsHandle, SubmitError> {
        let deadline_ms = request.deadline_ms.or(self.default_deadline_ms);
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let (tx, rx) = mpsc::channel();
        let job_token = token.clone();
        let parent_span = morph_trace::current_span();
        let request_id = request.id.clone();
        self.pool.try_submit(move || {
            let _span = morph_trace::span_under(parent_span, "serve/job");
            let outcome = catch_unwind(AssertUnwindSafe(|| run_revisions(&request, &job_token)))
                .unwrap_or_else(|payload| {
                    Err(JobError::Panicked {
                        message: panic_message(&payload),
                    })
                });
            let _ = tx.send(outcome);
        })?;
        morph_trace::gauge("serve/queue_depth", self.pool.queue_depth() as f64);
        Ok(RevisionsHandle {
            request_id,
            token,
            rx,
        })
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Holds queued jobs (workers finish their current job and idle).
    /// Deterministic-saturation hook for tests; see [`WorkerPool::pause`].
    pub fn pause(&self) {
        self.pool.pause();
    }

    /// Releases jobs held by [`pause`](Self::pause).
    pub fn resume(&self) {
        self.pool.resume();
    }

    /// Blocks until every accepted job has finished. New submissions are
    /// still accepted during and after the drain.
    pub fn drain(&self) {
        self.pool.drain();
    }

    /// Graceful shutdown: runs every already-accepted job to completion,
    /// then joins the workers. Dropping the service does the same.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one job end to end on a worker thread.
fn run_job(
    shared: &ServiceShared,
    request: &JobRequest,
    token: &CancelToken,
) -> Result<JobOutput, JobError> {
    token.check()?;
    let verifier = build_verifier(&VerifierSpec {
        program: &request.program,
        input_qubits: &request.input_qubits,
        samples: request.samples,
        restarts: request.restarts,
        noise: request.noise.as_deref(),
    })?;

    // The characterize_cached RNG discipline, spelled out so the flight
    // table can sit between the fingerprint and the computation: draw one
    // u64 for the characterization, validate from the job's own stream.
    let mut job_rng = StdRng::seed_from_u64(request.seed);
    let char_seed: u64 = job_rng.gen();
    let fingerprint = verifier.characterization_fingerprint(char_seed);

    let characterization =
        obtain_characterization(shared, &verifier, fingerprint, char_seed, token)?;
    token.check()?;
    let report = verifier.try_validate_with(characterization, &mut job_rng, None, token)?;
    Ok(JobOutput {
        fingerprint,
        report,
    })
}

/// The request fields [`build_verifier`] consumes — one program plus the
/// knobs shared by single jobs and revision streams.
struct VerifierSpec<'a> {
    program: &'a str,
    input_qubits: &'a [usize],
    samples: Option<usize>,
    restarts: Option<usize>,
    noise: Option<&'a str>,
}

/// Parses and validates one program into a configured [`Verifier`].
fn build_verifier(spec: &VerifierSpec<'_>) -> Result<Verifier, JobError> {
    let circuit = parse_program(spec.program).map_err(MorphError::from)?;
    let assertions = assertions_from_source(spec.program).map_err(MorphError::from)?;
    if assertions.is_empty() {
        return Err(JobError::Invalid {
            message: "program contains no `// assert` specifications".to_string(),
        });
    }
    if spec.input_qubits.is_empty() {
        return Err(JobError::Invalid {
            message: "input_qubits must not be empty".to_string(),
        });
    }
    for &q in spec.input_qubits {
        if q >= circuit.n_qubits() {
            return Err(JobError::Invalid {
                message: format!(
                    "input qubit {q} out of range for a {}-qubit program",
                    circuit.n_qubits()
                ),
            });
        }
    }
    let mut verifier = Verifier::new(circuit).input_qubits(spec.input_qubits);
    if let Some(n) = spec.samples {
        if n == 0 {
            return Err(JobError::Invalid {
                message: "samples must be nonzero".to_string(),
            });
        }
        verifier = verifier.samples(n);
    }
    match spec.noise {
        None | Some("noiseless") => {}
        Some("ibm_cairo") => verifier = verifier.noise(NoiseModel::ibm_cairo()),
        Some(other) => {
            return Err(JobError::Invalid {
                message: format!(
                    "unknown noise model `{other}` (expected `noiseless` or `ibm_cairo`)"
                ),
            });
        }
    }
    if let Some(restarts) = spec.restarts {
        verifier = verifier.validation(morphqpv::prelude::ValidationConfig {
            solver_restarts: Some(restarts),
            ..Default::default()
        });
    }
    for assertion in assertions {
        verifier = verifier.assert_that(assertion);
    }
    Ok(verifier)
}

/// Runs one `verify_revisions` stream end to end on a worker thread:
/// every revision in order, sequentially, against one job-local segment
/// cache.
fn run_revisions(
    request: &RevisionsRequest,
    token: &CancelToken,
) -> Result<RevisionsOutput, JobError> {
    token.check()?;
    let seg = match request.segment_gates {
        Some(g) => SegmentedConfig::new().segment_gates(g),
        None => SegmentedConfig::from_env(),
    };
    let mut cache = SegmentedCache::in_memory();
    let mut revisions = Vec::with_capacity(request.revisions.len());
    for program in &request.revisions {
        token.check()?;
        morph_trace::counter("serve/revision", 1);
        revisions.push(run_revision(request, program, seg, &mut cache));
    }
    Ok(RevisionsOutput { revisions })
}

/// Verifies one revision incrementally against the stream's shared
/// segment cache.
///
/// Each revision restarts its RNG from the request seed, so its report
/// depends only on (program, shared knobs, seed) — never on where it
/// sits in the stream. The segment cache cannot break that: cached
/// segment artifacts round-trip bit-exactly, so a hit and a recompute
/// are indistinguishable in the report (the counts show up in the
/// response's `segments` object instead).
fn run_revision(
    request: &RevisionsRequest,
    program: &str,
    seg: SegmentedConfig,
    cache: &mut SegmentedCache,
) -> Result<VerificationReport, JobError> {
    let mut verifier = build_verifier(&VerifierSpec {
        program,
        input_qubits: &request.input_qubits,
        samples: request.samples,
        restarts: request.restarts,
        noise: request.noise.as_deref(),
    })?;
    match request.ensemble.as_deref() {
        None | Some("clifford") => {}
        Some("pauli_product") => verifier = verifier.ensemble(InputEnsemble::PauliProduct),
        Some("basis") => verifier = verifier.ensemble(InputEnsemble::Basis),
        Some(other) => {
            return Err(JobError::Invalid {
                message: format!(
                    "unknown ensemble `{other}` (expected `clifford`, `pauli_product`, or `basis`)"
                ),
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(request.seed);
    verifier
        .incremental(seg)
        .try_run_incremental(&mut rng, cache)
        .map_err(JobError::from)
}

/// The coalescing core: cache, then flight table, then compute as leader.
///
/// The loop re-enters after an abandoned flight (leader errored or
/// panicked) so a transient leader failure costs followers a re-election,
/// not a spurious error.
///
/// When the cache is disk-backed, a leader additionally takes the
/// fingerprint's cross-process [`FingerprintLock`] before computing, then
/// re-checks the cache: another *process* sharing `MORPH_CACHE_DIR` may
/// have published the artifact while this one waited. The in-process
/// flight table dedupes threads; the file lock dedupes processes.
fn obtain_characterization(
    shared: &ServiceShared,
    verifier: &Verifier,
    fingerprint: Fingerprint,
    char_seed: u64,
    token: &CancelToken,
) -> Result<Characterization, JobError> {
    loop {
        token.check()?;
        if let Some(hit) = shared.shards.cache_get(&fingerprint) {
            morph_trace::counter("serve/cache_hit", 1);
            return Ok(hit);
        }
        match shared.shards.join(fingerprint) {
            Joined::Leader(guard) => {
                // Double-check the cache: between this job's miss and
                // winning the flight, a previous leader may have published
                // its artifact and retired. Serving the hit (and completing
                // the flight with it) keeps "characterizations computed"
                // exactly equal to the `serve/characterize_leader` counter.
                if let Some(hit) = shared.shards.cache_get(&fingerprint) {
                    morph_trace::counter("serve/cache_hit", 1);
                    guard.complete(hit.clone());
                    return Ok(hit);
                }
                let _store_lock = match shared.shards.cache_dir() {
                    Some(dir) => {
                        let lock =
                            FingerprintLock::acquire(dir, &fingerprint, STORE_LOCK_TICK, || {
                                token.is_cancelled()
                            })
                            .map_err(|e| JobError::Verification(MorphError::Store(e)))?;
                        token.check()?;
                        // Holding the lock (or having given up on a
                        // cancelled token, caught above): another process
                        // may have published while this one waited.
                        if let Some(hit) = shared.shards.cache_get(&fingerprint) {
                            morph_trace::counter("serve/cache_hit", 1);
                            morph_trace::counter("serve/cross_process_hit", 1);
                            guard.complete(hit.clone());
                            return Ok(hit);
                        }
                        lock
                    }
                    None => None,
                };
                morph_trace::counter("serve/characterize_leader", 1);
                // An error here drops `guard`, abandoning the flight and
                // waking followers to re-elect.
                let ch = verifier.try_characterize_for_seed(char_seed, token)?;
                // Publish to the cache *before* retiring the flight so a
                // job arriving after removal finds the artifact.
                shared.shards.cache_put(fingerprint, &ch);
                guard.complete(ch.clone());
                return Ok(ch);
            }
            Joined::Follower(slot) => {
                match slot.wait(FOLLOWER_TICK, || token.is_cancelled()) {
                    FlightOutcome::Done(ch) => {
                        morph_trace::counter("serve/coalesced_hit", 1);
                        return Ok(ch);
                    }
                    // Leader gave up — loop back and re-elect.
                    FlightOutcome::Abandoned => continue,
                    FlightOutcome::TimedOut => {
                        token.check()?;
                        // give_up fired but the token has since recovered?
                        // Impossible (tokens never un-cancel), but looping
                        // is the safe answer.
                        continue;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_parses_and_ignores_garbage() {
        // `set_var` in a threaded test harness races with `getenv` anywhere
        // else in the process (and is outright UB on glibc), so each env
        // combination is probed in a re-exec'd child process whose
        // environment is fixed at spawn time. The child re-enters this test
        // with `MORPH_SERVE_ENV_PROBE=workers,queue` holding the expected
        // parse and reports through its exit code.
        if let Some(expect) = std::env::var_os("MORPH_SERVE_ENV_PROBE") {
            let expect = expect.into_string().expect("utf-8 probe expectation");
            let (w, q) = expect.split_once(',').expect("workers,queue");
            let config = ServeConfig::from_env();
            let ok = config.workers == w.parse::<usize>().unwrap()
                && config.queue_capacity == q.parse::<usize>().unwrap();
            std::process::exit(if ok { 3 } else { 4 });
        }
        let exe = std::env::current_exe().expect("test binary path");
        let default = ServeConfig::default();
        let probe = |vars: &[(&str, &str)], expect_w: usize, expect_q: usize| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args([
                "--exact",
                "service::tests::env_config_parses_and_ignores_garbage",
            ])
            .env("MORPH_SERVE_ENV_PROBE", format!("{expect_w},{expect_q}"))
            .env_remove("MORPH_SERVE_WORKERS")
            .env_remove("MORPH_SERVE_QUEUE_CAP")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
            for (k, v) in vars {
                cmd.env(k, v);
            }
            cmd.status().expect("spawn probe child").code()
        };
        assert_eq!(
            probe(
                &[
                    ("MORPH_SERVE_WORKERS", "3"),
                    ("MORPH_SERVE_QUEUE_CAP", "17")
                ],
                3,
                17,
            ),
            Some(3)
        );
        assert_eq!(
            probe(
                &[
                    ("MORPH_SERVE_WORKERS", "not-a-number"),
                    ("MORPH_SERVE_QUEUE_CAP", "0"),
                ],
                default.workers,
                default.queue_capacity,
            ),
            Some(3)
        );
        assert_eq!(probe(&[], default.workers, default.queue_capacity), Some(3));
    }

    #[test]
    fn submit_error_maps_pool_rejections() {
        let full: SubmitError = PoolRejection::QueueFull { capacity: 4 }.into();
        assert_eq!(full, SubmitError::QueueFull { capacity: 4 });
        assert_eq!(full.kind(), "queue_full");
        let down: SubmitError = PoolRejection::ShuttingDown.into();
        assert_eq!(down.kind(), "shutting_down");
    }

    #[test]
    fn deadline_cancellation_maps_to_job_error() {
        let e: JobError = MorphError::Cancelled(Cancelled::DeadlineExceeded).into();
        assert!(matches!(e, JobError::DeadlineExceeded));
        assert_eq!(e.kind(), "deadline_exceeded");
        let e: JobError = MorphError::Cancelled(Cancelled::Requested).into();
        assert!(matches!(e, JobError::Verification(_)));
    }
}
