//! `morph-serve` — batch and network front-end for the verification
//! service.
//!
//! **Batch mode** (default): reads newline-delimited JSON job requests
//! from a file (or stdin when no file is given), runs them on the
//! concurrent service, and writes one response line per request to
//! stdout, in request order. Protocol: `docs/serve-protocol.md`.
//!
//! **Listener mode** (`--listen [ADDR]`): binds a TCP socket and serves
//! the same JSON-lines protocol to concurrent keep-alive connections.
//! The bound address is announced on stdout as `listening on HOST:PORT`
//! (port `0` in ADDR lets the OS pick); the process then runs until its
//! stdin reaches EOF, at which point it drains open connections and
//! exits 0.
//!
//! ```text
//! morph-serve [REQUESTS.jsonl] [--listen [ADDR]] [--workers N]
//!             [--queue-cap N] [--cache-dir DIR] [--deadline-ms MS]
//!             [--trace-json PATH]
//! ```
//!
//! Batch exit code: the maximum per-job code under the workspace
//! convention — 0 all assertions passed, 2 at least one refuted, 1 any
//! job failed (including unusable requests). Flag errors exit 1 with
//! usage on stderr.
//!
//! `--workers` / `--queue-cap` default from `MORPH_SERVE_WORKERS` /
//! `MORPH_SERVE_QUEUE_CAP`; `--listen` without ADDR defaults from
//! `MORPH_SERVE_ADDR` (see `docs/configuration.md`). `--trace-json`
//! enables the `morph-trace` recorder and writes the span/counter export
//! (including the `serve/coalesced_hit` and `serve/characterize_leader`
//! counters, and in listener mode the `serve/latency_ns` histogram) to
//! the given path on exit.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use morph_serve::{run_batch, serve_listener, ListenerConfig, ServeConfig, Service};

struct Args {
    requests: Option<PathBuf>,
    config: ServeConfig,
    trace_json: Option<PathBuf>,
    listen: Option<ListenerConfig>,
}

const USAGE: &str = "usage: morph-serve [REQUESTS.jsonl] [--listen [ADDR]] [--workers N] \
[--queue-cap N] [--cache-dir DIR] [--deadline-ms MS] [--trace-json PATH]";

fn take_value(argv: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    if *i < argv.len() {
        let value = argv[*i].clone();
        *i += 1;
        Ok(value)
    } else {
        Err(format!("{flag} requires a value"))
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        requests: None,
        config: ServeConfig::from_env(),
        trace_json: None,
        listen: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].clone();
        i += 1;
        match arg.as_str() {
            "--listen" => {
                let mut listen = ListenerConfig::from_env();
                // ADDR is optional: consume the next token only if it
                // looks like host:port rather than another flag.
                if i < argv.len() && !argv[i].starts_with('-') && argv[i].contains(':') {
                    listen.addr = argv[i].clone();
                    i += 1;
                }
                args.listen = Some(listen);
            }
            "--workers" => {
                args.config.workers =
                    parse_count(&take_value(argv, &mut i, "--workers")?, "--workers")?;
            }
            "--queue-cap" => {
                let cap = parse_count(&take_value(argv, &mut i, "--queue-cap")?, "--queue-cap")?;
                if cap == 0 {
                    return Err("--queue-cap must be nonzero".to_string());
                }
                args.config.queue_capacity = cap;
            }
            "--cache-dir" => {
                args.config.cache_dir =
                    Some(PathBuf::from(take_value(argv, &mut i, "--cache-dir")?));
            }
            "--deadline-ms" => {
                args.config.default_deadline_ms = Some(parse_count(
                    &take_value(argv, &mut i, "--deadline-ms")?,
                    "--deadline-ms",
                )? as u64);
            }
            "--trace-json" => {
                args.trace_json = Some(PathBuf::from(take_value(argv, &mut i, "--trace-json")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if args.requests.is_some() {
                    return Err("at most one requests file".to_string());
                }
                args.requests = Some(PathBuf::from(path));
            }
        }
    }
    if args.listen.is_some() && args.requests.is_some() {
        return Err("--listen does not take a requests file".to_string());
    }
    Ok(args)
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag}: `{text}` is not an unsigned integer"))
}

/// Runs listener mode: announce the bound address, serve until stdin EOF.
fn run_listener(config: &ServeConfig, listen: &ListenerConfig) -> io::Result<i32> {
    let service = Arc::new(Service::start(config)?);
    let listener = serve_listener(Arc::clone(&service), listen)?;
    {
        let mut stdout = io::stdout().lock();
        writeln!(stdout, "listening on {}", listener.local_addr())?;
        stdout.flush()?;
    }
    // Stdin EOF is the shutdown signal: parents (tests, CI, the load
    // generator) hold a pipe open and close it to stop the server.
    let mut line = String::new();
    let mut stdin = io::stdin().lock();
    loop {
        line.clear();
        if stdin.read_line(&mut line)? == 0 {
            break;
        }
    }
    listener.shutdown();
    // The listener joined every connection thread, so this Arc is unique
    // again; drain the worker pool before exiting.
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
    Ok(0)
}

fn run(args: &Args) -> io::Result<i32> {
    if args.trace_json.is_some() {
        morph_trace::set_enabled(true);
    }
    let exit = if let Some(listen) = &args.listen {
        run_listener(&args.config, listen)?
    } else {
        let stdout = io::stdout();
        match &args.requests {
            Some(path) => run_batch(
                BufReader::new(File::open(path)?),
                stdout.lock(),
                &args.config,
            )?,
            None => run_batch(io::stdin().lock(), stdout.lock(), &args.config)?,
        }
    };
    if let Some(path) = &args.trace_json {
        std::fs::write(path, morph_trace::export_json())?;
    }
    Ok(exit)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            if message != USAGE {
                eprintln!("{USAGE}");
            }
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code.clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("morph-serve: {e}");
            ExitCode::from(1)
        }
    }
}
