//! `morph-serve` — batch front-end for the verification service.
//!
//! Reads newline-delimited JSON job requests from a file (or stdin when no
//! file is given), runs them on the concurrent service, and writes one
//! response line per request to stdout, in request order. Protocol:
//! `docs/serve-protocol.md`.
//!
//! ```text
//! morph-serve [REQUESTS.jsonl] [--workers N] [--queue-cap N]
//!             [--cache-dir DIR] [--deadline-ms MS] [--trace-json PATH]
//! ```
//!
//! Exit code: the maximum per-job code under the workspace convention —
//! 0 all assertions passed, 2 at least one refuted, 1 any job failed
//! (including unusable requests). Flag errors exit 1 with usage on
//! stderr.
//!
//! `--workers` / `--queue-cap` default from `MORPH_SERVE_WORKERS` /
//! `MORPH_SERVE_QUEUE_CAP` (see `docs/configuration.md`). `--trace-json`
//! enables the `morph-trace` recorder and writes the span/counter export
//! (including the `serve/coalesced_hit` and `serve/characterize_leader`
//! counters) to the given path after the batch.

use std::fs::File;
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::ExitCode;

use morph_serve::{run_batch, ServeConfig};

struct Args {
    requests: Option<PathBuf>,
    config: ServeConfig,
    trace_json: Option<PathBuf>,
}

const USAGE: &str = "usage: morph-serve [REQUESTS.jsonl] [--workers N] [--queue-cap N] \
[--cache-dir DIR] [--deadline-ms MS] [--trace-json PATH]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        requests: None,
        config: ServeConfig::from_env(),
        trace_json: None,
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workers" => {
                args.config.workers = parse_count(&value_of("--workers")?, "--workers")?;
            }
            "--queue-cap" => {
                let cap = parse_count(&value_of("--queue-cap")?, "--queue-cap")?;
                if cap == 0 {
                    return Err("--queue-cap must be nonzero".to_string());
                }
                args.config.queue_capacity = cap;
            }
            "--cache-dir" => args.config.cache_dir = Some(PathBuf::from(value_of("--cache-dir")?)),
            "--deadline-ms" => {
                args.config.default_deadline_ms =
                    Some(parse_count(&value_of("--deadline-ms")?, "--deadline-ms")? as u64);
            }
            "--trace-json" => args.trace_json = Some(PathBuf::from(value_of("--trace-json")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if args.requests.is_some() {
                    return Err("at most one requests file".to_string());
                }
                args.requests = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag}: `{text}` is not an unsigned integer"))
}

fn run(args: &Args) -> io::Result<i32> {
    if args.trace_json.is_some() {
        morph_trace::set_enabled(true);
    }
    let stdout = io::stdout();
    let exit = match &args.requests {
        Some(path) => run_batch(
            BufReader::new(File::open(path)?),
            stdout.lock(),
            &args.config,
        )?,
        None => run_batch(io::stdin().lock(), stdout.lock(), &args.config)?,
    };
    if let Some(path) = &args.trace_json {
        std::fs::write(path, morph_trace::export_json())?;
    }
    Ok(exit)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            if message != USAGE {
                eprintln!("{USAGE}");
            }
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code.clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("morph-serve: {e}");
            ExitCode::from(1)
        }
    }
}
