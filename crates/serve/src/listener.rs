//! The TCP front end: JSON-lines over keep-alive sockets.
//!
//! [`serve_listener`] binds a [`TcpListener`] and serves the existing
//! bit-reproducible protocol ([`crate::protocol`]) to any number of
//! concurrent clients. Each connection is newline-delimited JSON both
//! ways: one request per line in, one response per line out, **responses
//! in request order per connection** — the same contract as batch mode, so
//! golden fixtures diff byte-for-byte against a socket transcript. Within
//! that ordering constraint responses *stream*: a finished response is
//! written while later requests on the same connection are still being
//! read (reader and writer are separate threads joined by a FIFO).
//!
//! # Admission control
//!
//! Backpressure is always a structured line, never a dropped connection:
//!
//! - **Connection quota** ([`ListenerConfig::conn_limit`]): a client
//!   arriving past the limit receives one `connection_quota` rejection
//!   line and a clean close.
//! - **In-flight job quota** ([`ListenerConfig::inflight_limit`]): a
//!   request arriving while the connection already has that many
//!   unanswered jobs gets a `job_quota` rejection line in-slot.
//! - **Queue saturation**: the service's own `queue_full` rejection is
//!   forwarded in-slot (the listener never blocks the socket on a full
//!   queue).
//!
//! # Telemetry (`morph-trace`, off by default)
//!
//! Counters `serve/conn_opened`, `serve/conn_closed`,
//! `serve/conn_quota_rejected`, `serve/job_quota_rejected`,
//! `serve/net_requests`, `serve/net_responses`; histogram
//! `serve/latency_ns` (request read → response written, per request).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use morph_trace::{env_knob, lock_or_recover};

use crate::protocol::{salvage_id, JobResponse, Request};
use crate::service::{JobHandle, RevisionsHandle, Service, SubmitError};

/// How often blocked socket reads and the accept loop re-check the stop
/// flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Network listener configuration.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Bind address. Port `0` lets the OS pick (the bound address is
    /// reported by [`Listener::local_addr`]).
    pub addr: String,
    /// Maximum concurrently open client connections.
    pub conn_limit: usize,
    /// Maximum unanswered jobs per connection.
    pub inflight_limit: usize,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_limit: 64,
            inflight_limit: 32,
        }
    }
}

impl ListenerConfig {
    /// Defaults overridden by `MORPH_SERVE_ADDR`,
    /// `MORPH_SERVE_CONN_LIMIT`, and `MORPH_SERVE_INFLIGHT_LIMIT`.
    /// Unparseable or zero limits keep the default and warn once via
    /// [`morph_trace::warn_invalid_knob`].
    pub fn from_env() -> Self {
        let mut config = ListenerConfig::default();
        if let Ok(addr) = std::env::var("MORPH_SERVE_ADDR") {
            if !addr.trim().is_empty() {
                config.addr = addr.trim().to_string();
            }
        }
        for (name, slot) in [
            ("MORPH_SERVE_CONN_LIMIT", &mut config.conn_limit),
            ("MORPH_SERVE_INFLIGHT_LIMIT", &mut config.inflight_limit),
        ] {
            match env_knob::<usize>(name) {
                Some(0) => morph_trace::warn_invalid_knob(name, "0", "limit must be >= 1"),
                Some(n) => *slot = n,
                None => {}
            }
        }
        config
    }
}

/// A running network listener; dropping (or [`shutdown`](Self::shutdown))
/// stops accepting, lets open connections finish their in-flight work,
/// and joins every thread.
pub struct Listener {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Listener {
    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, winds down open connections (their already-read
    /// requests still get responses), and joins all listener threads. The
    /// [`Service`] itself is left running — shut it down separately.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        loop {
            // Connection threads may still be registering; drain until the
            // vector stays empty.
            let drained: Vec<JoinHandle<()>> =
                lock_or_recover(&self.conn_threads).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `config.addr` and serves `service` until shutdown.
///
/// # Errors
///
/// The I/O error if the address cannot be bound.
pub fn serve_listener(service: Arc<Service>, config: &ListenerConfig) -> io::Result<Listener> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conn_count = Arc::new(AtomicUsize::new(0));

    let accept = {
        let stop = Arc::clone(&stop);
        let conn_threads = Arc::clone(&conn_threads);
        let config = config.clone();
        std::thread::spawn(move || {
            accept_loop(
                &listener,
                &service,
                &config,
                &stop,
                &conn_threads,
                &conn_count,
            );
        })
    };

    Ok(Listener {
        local_addr,
        stop,
        accept: Some(accept),
        conn_threads,
    })
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    config: &ListenerConfig,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    conn_count: &Arc<AtomicUsize>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conn_count.load(Ordering::SeqCst) >= config.conn_limit {
                    morph_trace::counter("serve/conn_quota_rejected", 1);
                    refuse_connection(stream, config.conn_limit);
                    continue;
                }
                conn_count.fetch_add(1, Ordering::SeqCst);
                morph_trace::counter("serve/conn_opened", 1);
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let conn_count = Arc::clone(conn_count);
                let inflight_limit = config.inflight_limit;
                let handle = std::thread::spawn(move || {
                    serve_connection(stream, &service, inflight_limit, &stop);
                    conn_count.fetch_sub(1, Ordering::SeqCst);
                    morph_trace::counter("serve/conn_closed", 1);
                });
                lock_or_recover(conn_threads).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A failed accept (e.g. EMFILE) must not kill the listener.
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Writes one `connection_quota` rejection line and closes.
fn refuse_connection(mut stream: TcpStream, limit: usize) {
    let response = JobResponse::from_refusal(
        "<connection>",
        "connection_quota",
        &format!("connection limit reached (limit {limit})"),
    );
    let _ = writeln!(stream, "{}", response.to_json_line());
    let _ = stream.flush();
}

/// One queued unit of per-connection output, in request order.
enum Slot {
    /// Already resolved (parse error or admission rejection).
    Ready(Box<JobResponse>),
    /// A submitted job; the writer blocks on the handle in slot order.
    Pending(String, JobHandle),
    /// A submitted `verify_revisions` stream; one response line like any
    /// other slot, and one unit of the in-flight quota.
    PendingRevisions(String, RevisionsHandle),
}

/// A request's transit record: the slot plus its arrival instant for the
/// latency histogram.
struct Entry {
    slot: Slot,
    arrived: Instant,
}

/// Serves one keep-alive connection: a reader loop on this thread feeding
/// a writer thread through an order-preserving FIFO.
fn serve_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    inflight_limit: usize,
    stop: &AtomicBool,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Entry>();
    // Unanswered submitted jobs on this connection; the reader admits
    // against it, the writer retires it after each response line.
    let in_flight = Arc::new(AtomicUsize::new(0));

    let writer = {
        let in_flight = Arc::clone(&in_flight);
        std::thread::spawn(move || write_loop(write_half, rx, &in_flight))
    };

    read_loop(stream, service, inflight_limit, stop, &tx, &in_flight);

    drop(tx); // Reader done: writer drains remaining slots, then exits.
    let _ = writer.join();
}

/// Reads newline-delimited requests, submitting each and queuing its slot.
///
/// Framing is manual (byte buffer + explicit `\n` scan): `BufReader`
/// would discard its internal buffer on the read-timeout errors this loop
/// uses to poll the stop flag, losing bytes of a half-received line.
fn read_loop(
    mut stream: TcpStream,
    service: &Arc<Service>,
    inflight_limit: usize,
    stop: &AtomicBool,
    tx: &mpsc::Sender<Entry>,
    in_flight: &Arc<AtomicUsize>,
) {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // Client closed its write side.
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw[..raw.len() - 1]);
                    if line.trim().is_empty() {
                        continue;
                    }
                    let entry = Entry {
                        slot: admit(&line, service, inflight_limit, in_flight),
                        arrived: Instant::now(),
                    };
                    if tx.send(entry).is_err() {
                        return; // Writer died (broken socket).
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Parses and submits one request line under the connection's quotas.
fn admit(
    line: &str,
    service: &Arc<Service>,
    inflight_limit: usize,
    in_flight: &Arc<AtomicUsize>,
) -> Slot {
    morph_trace::counter("serve/net_requests", 1);
    let request = match Request::from_json_line(line) {
        Ok(request) => request,
        Err(message) => {
            let id = salvage_id(line);
            return Slot::Ready(Box::new(JobResponse::from_invalid_line(&id, &message)));
        }
    };
    let id = request.id().to_string();
    if in_flight.load(Ordering::SeqCst) >= inflight_limit {
        morph_trace::counter("serve/job_quota_rejected", 1);
        return Slot::Ready(Box::new(JobResponse::from_refusal(
            &id,
            "job_quota",
            &format!("connection in-flight job limit reached (limit {inflight_limit})"),
        )));
    }
    match request {
        Request::Job(request) => match service.submit(request) {
            Ok(handle) => {
                in_flight.fetch_add(1, Ordering::SeqCst);
                Slot::Pending(id, handle)
            }
            Err(rejection @ (SubmitError::QueueFull { .. } | SubmitError::ShuttingDown)) => {
                Slot::Ready(Box::new(JobResponse::from_rejection(&id, &rejection)))
            }
        },
        Request::Revisions(request) => match service.submit_revisions(request) {
            Ok(handle) => {
                in_flight.fetch_add(1, Ordering::SeqCst);
                Slot::PendingRevisions(id, handle)
            }
            Err(rejection @ (SubmitError::QueueFull { .. } | SubmitError::ShuttingDown)) => {
                Slot::Ready(Box::new(JobResponse::from_revisions_rejection(
                    &id, &rejection,
                )))
            }
        },
    }
}

/// Writes responses in FIFO (request) order, streaming each as soon as its
/// job finishes.
fn write_loop(mut stream: TcpStream, rx: mpsc::Receiver<Entry>, in_flight: &AtomicUsize) {
    for entry in rx {
        let response = match entry.slot {
            Slot::Ready(response) => *response,
            Slot::Pending(id, handle) => {
                let response = match handle.wait() {
                    Ok(out) => JobResponse::from_report(&id, out.fingerprint, &out.report),
                    Err(e) => JobResponse::from_error(&id, &e),
                };
                in_flight.fetch_sub(1, Ordering::SeqCst);
                response
            }
            Slot::PendingRevisions(id, handle) => {
                let response = match handle.wait() {
                    Ok(out) => JobResponse::from_revisions(&id, &out.revisions),
                    Err(e) => JobResponse::from_revisions_error(&id, &e),
                };
                in_flight.fetch_sub(1, Ordering::SeqCst);
                response
            }
        };
        if writeln!(stream, "{}", response.to_json_line()).is_err() {
            return; // Peer gone; pending handles drain via their Drops.
        }
        let _ = stream.flush();
        morph_trace::counter("serve/net_responses", 1);
        morph_trace::histogram(
            "serve/latency_ns",
            entry.arrived.elapsed().as_nanos() as u64,
        );
    }
}
