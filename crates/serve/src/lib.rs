//! morph-serve: a concurrent verification service for MorphQPV.
//!
//! Turns the one-shot verification pipeline (`morphqpv`) into a service: a
//! bounded worker pool accepts **jobs** — circuit + assertions + config —
//! over a newline-delimited JSON protocol (see [`protocol`]), runs each
//! end to end, and answers with one structured response line per request.
//! The library API ([`Service`]) serves in-process callers, the
//! `morph-serve` binary reads a batch from a file or stdin, and
//! [`serve_listener`] exposes the same protocol over TCP.
//!
//! Besides single jobs, the protocol's v2 `verify_revisions` kind submits
//! an **ordered revision stream**: the service verifies each program
//! revision incrementally ([`Service::submit_revisions`]), reusing every
//! cached segment artifact the edit didn't touch, and reports per-segment
//! hit/miss counts per revision.
//!
//! The throughput mechanism is **single-flight coalescing**
//! ([`singleflight`]): jobs are keyed by the content address of their
//! characterization (the `morph-store` fingerprint), and concurrent jobs
//! with the same key share a single characterization run — one leader
//! computes, followers wait — layered *above* the persistent artifact
//! cache, which continues to serve repeats that are no longer concurrent.
//! Reports stay bit-identical whether a job led, followed, or hit the
//! cache.
//!
//! Robustness properties (each tested in `tests/serve_service.rs`):
//! queue saturation surfaces as a structured rejection, never a deadlock;
//! deadlines cancel cooperatively between pipeline stages; a panicking job
//! is contained to its own error response; shutdown drains accepted work
//! first.

pub mod listener;
pub mod protocol;
pub mod service;
pub mod shard;
pub mod singleflight;

pub use listener::{serve_listener, Listener, ListenerConfig};
pub use protocol::{
    JobRequest, JobResponse, JobStatus, Request, RevisionsRequest, PROTOCOL_VERSION,
    PROTOCOL_VERSION_REVISIONS,
};
pub use service::{
    JobError, JobHandle, JobOutput, RevisionsHandle, RevisionsOutput, ServeConfig, Service,
    SubmitError,
};
pub use shard::{CharacterizationShards, DEFAULT_SHARDS};

use std::io::{self, BufRead, Write};
use std::time::Duration;

/// How long [`run_batch`] backs off before retrying a saturated queue.
const RESUBMIT_TICK: Duration = Duration::from_millis(5);

/// Runs a batch of request lines through a fresh [`Service`] and writes
/// one response line per request, in request order.
///
/// Queue saturation is handled by blocking the submitter (retry with
/// backoff), not by rejecting: a batch driver has nothing better to do
/// with backpressure than wait, and retrying keeps the output independent
/// of queue timing. Lines that fail to parse produce in-band
/// `invalid_request` error responses.
///
/// Returns the batch exit code: the maximum per-line code under the
/// workspace 0/2/1 convention (0 all passed, 2 refuted, 1 failure).
///
/// # Errors
///
/// Only I/O errors from `input` or `output`; job failures are in-band.
pub fn run_batch(
    input: impl BufRead,
    mut output: impl Write,
    config: &ServeConfig,
) -> io::Result<i32> {
    enum Slot {
        Ready(Box<JobResponse>),
        Pending(String, JobHandle),
        PendingRevisions(String, RevisionsHandle),
    }

    /// Retries a saturated queue until the service accepts or refuses.
    fn submit_with_backoff<H>(
        mut submit: impl FnMut() -> Result<H, SubmitError>,
    ) -> Result<H, SubmitError> {
        loop {
            match submit() {
                Ok(handle) => return Ok(handle),
                Err(SubmitError::QueueFull { .. }) => std::thread::sleep(RESUBMIT_TICK),
                Err(rejection) => return Err(rejection),
            }
        }
    }

    let service = Service::start(config)?;
    let mut slots = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json_line(&line) {
            Err(message) => {
                let id = protocol::salvage_id(&line);
                slots.push(Slot::Ready(Box::new(JobResponse::from_invalid_line(
                    &id, &message,
                ))));
            }
            Ok(Request::Job(request)) => {
                let id = request.id.clone();
                match submit_with_backoff(|| service.submit(request.clone())) {
                    Ok(handle) => slots.push(Slot::Pending(id, handle)),
                    Err(rejection) => slots.push(Slot::Ready(Box::new(
                        JobResponse::from_rejection(&id, &rejection),
                    ))),
                }
            }
            Ok(Request::Revisions(request)) => {
                let id = request.id.clone();
                match submit_with_backoff(|| service.submit_revisions(request.clone())) {
                    Ok(handle) => slots.push(Slot::PendingRevisions(id, handle)),
                    Err(rejection) => slots.push(Slot::Ready(Box::new(
                        JobResponse::from_revisions_rejection(&id, &rejection),
                    ))),
                }
            }
        }
    }

    let mut exit = 0;
    for slot in slots {
        let response = match slot {
            Slot::Ready(response) => *response,
            Slot::Pending(id, handle) => match handle.wait() {
                Ok(out) => JobResponse::from_report(&id, out.fingerprint, &out.report),
                Err(e) => JobResponse::from_error(&id, &e),
            },
            Slot::PendingRevisions(id, handle) => match handle.wait() {
                Ok(out) => JobResponse::from_revisions(&id, &out.revisions),
                Err(e) => JobResponse::from_revisions_error(&id, &e),
            },
        };
        exit = exit.max(response.exit_code());
        writeln!(output, "{}", response.to_json_line())?;
    }
    service.shutdown();
    Ok(exit)
}
