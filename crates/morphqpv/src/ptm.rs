//! Pauli-transfer-matrix (PTM) characterization — an extension of the
//! paper's pairs-based approximation.
//!
//! The sampled `⟨σ_in,i, σ_T,i⟩` pairs determine (a least-squares estimate
//! of) the *entire linear channel* between the input and the tracepoint.
//! Representing that channel explicitly as a real matrix over the Pauli
//! basis gives:
//!
//! - O(d⁴)-once assembly, then O(d⁴) per prediction independent of
//!   `N_sample` (vs. `O(N_sample · d²)` for the pairs form) — better when
//!   many predictions amortize a large sample set;
//! - direct access to channel diagnostics (trace preservation, unitality)
//!   that the pairs form hides.
//!
//! The `ptm_vs_pairs` ablation bench compares the two forms.

use morph_linalg::{solve_sym_regularized, CMatrix, C64};
use morph_qsim::matrices;
use morph_tomography::pauli_strings;

use crate::approx::ApproximationFunction;

/// A linear channel estimate in the Pauli basis: `r_out = M · r_in` where
/// `r` are normalized Pauli coefficient vectors.
#[derive(Debug, Clone)]
pub struct PauliTransferMatrix {
    n_in: usize,
    n_out: usize,
    /// Row-major `4^n_out × 4^n_in` real matrix.
    m: Vec<f64>,
    in_paulis: Vec<CMatrix>,
    out_paulis: Vec<CMatrix>,
}

impl PauliTransferMatrix {
    /// Fits the PTM from an approximation function's sampled pairs by
    /// regularized least squares on each output-Pauli coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not powers of two (guaranteed by
    /// [`ApproximationFunction`]'s constructor).
    pub fn fit(f: &ApproximationFunction) -> Self {
        let d_in = f.input_dim();
        let d_out = f.trace_dim();
        let n_in = d_in.trailing_zeros() as usize;
        let n_out = d_out.trailing_zeros() as usize;
        let in_paulis: Vec<CMatrix> = pauli_strings(n_in)
            .iter()
            .map(|s| matrices::pauli_string(s))
            .collect();
        let out_paulis: Vec<CMatrix> = pauli_strings(n_out)
            .iter()
            .map(|s| matrices::pauli_string(s))
            .collect();
        let k_in = in_paulis.len();
        let k_out = out_paulis.len();

        // Pauli coordinates of every sampled pair.
        let coords = |rho: &CMatrix, paulis: &[CMatrix], d: usize| -> Vec<f64> {
            paulis
                .iter()
                .map(|p| p.matmul(rho).trace().re / d as f64)
                .collect()
        };
        let xs: Vec<Vec<f64>> = f
            .sampled_inputs()
            .iter()
            .map(|rho| coords(rho, &in_paulis, d_in))
            .collect();
        let ys: Vec<Vec<f64>> = f
            .sampled_traces()
            .iter()
            .map(|rho| coords(rho, &out_paulis, d_out))
            .collect();

        // Normal equations shared across all output coordinates:
        // G = Σ x xᵀ; per-row b_j = Σ y_j x.
        let n_samples = xs.len();
        let mut gram = vec![vec![0.0f64; k_in]; k_in];
        for x in &xs {
            for (a, &xa) in x.iter().enumerate() {
                for (b, &xb) in x.iter().enumerate().skip(a) {
                    gram[a][b] += xa * xb;
                }
            }
        }
        // Mirror the upper triangle; both halves of `gram` alias, so this
        // stays index-based.
        #[allow(clippy::needless_range_loop)]
        for a in 0..k_in {
            for b in 0..a {
                gram[a][b] = gram[b][a];
            }
        }
        let mut m = vec![0.0f64; k_out * k_in];
        for j in 0..k_out {
            let mut rhs = vec![0.0f64; k_in];
            for s in 0..n_samples {
                for a in 0..k_in {
                    rhs[a] += ys[s][j] * xs[s][a];
                }
            }
            let row = solve_sym_regularized(&gram, &rhs).expect("consistent dimensions");
            m[j * k_in..(j + 1) * k_in].copy_from_slice(&row);
        }
        PauliTransferMatrix {
            n_in,
            n_out,
            m,
            in_paulis,
            out_paulis,
        }
    }

    /// Input qubit count.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output qubit count.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Predicts the tracepoint state for an input density matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rho_in` has the wrong dimension.
    pub fn predict(&self, rho_in: &CMatrix) -> CMatrix {
        let d_in = 1usize << self.n_in;
        assert_eq!(rho_in.rows(), d_in, "input dimension mismatch");
        let k_in = self.in_paulis.len();
        let k_out = self.out_paulis.len();
        let x: Vec<f64> = self
            .in_paulis
            .iter()
            .map(|p| p.matmul(rho_in).trace().re / d_in as f64)
            .collect();
        let d_out = 1usize << self.n_out;
        let mut out = CMatrix::zeros(d_out, d_out);
        for j in 0..k_out {
            let y: f64 = self.m[j * k_in..(j + 1) * k_in]
                .iter()
                .zip(&x)
                .map(|(&mja, &xa)| mja * xa)
                .sum();
            if y.abs() > 1e-14 {
                out += &self.out_paulis[j].scale(C64::real(y));
            }
        }
        out
    }

    /// Channel diagnostic: a trace-preserving map sends the identity
    /// coordinate to itself. Returns `|M[0][0] − 1|` plus the norm of the
    /// rest of row 0 (both ≈ 0 for a well-characterized physical channel).
    pub fn trace_preservation_defect(&self) -> f64 {
        let k_in = self.in_paulis.len();
        let mut defect = (self.m[0] - 1.0).abs();
        for a in 1..k_in {
            defect += self.m[a].abs();
        }
        defect
    }

    /// Channel diagnostic: a unital map sends the maximally mixed state to
    /// itself, i.e. column 0 is `e_0`. Returns the deviation.
    pub fn unitality_defect(&self) -> f64 {
        let k_in = self.in_paulis.len();
        let k_out = self.out_paulis.len();
        let mut defect = 0.0;
        for j in 1..k_out {
            defect += self.m[j * k_in].abs();
        }
        defect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_clifford::InputEnsemble;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn channel_pairs(
        u: &CMatrix,
        n: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> ApproximationFunction {
        let inputs: Vec<CMatrix> = InputEnsemble::PauliProduct
            .generate(n, count, rng)
            .into_iter()
            .map(|i| i.rho)
            .collect();
        let traces: Vec<CMatrix> = inputs
            .iter()
            .map(|r| u.matmul(r).matmul(&u.dagger()))
            .collect();
        ApproximationFunction::new(inputs, traces).unwrap()
    }

    #[test]
    fn ptm_matches_pairs_on_full_span() {
        let mut rng = StdRng::seed_from_u64(0);
        let u = matrices::h().kron(&matrices::ry(0.8));
        let f = channel_pairs(&u, 2, 16, &mut rng);
        let ptm = PauliTransferMatrix::fit(&f);
        for probe in InputEnsemble::Clifford.generate(2, 6, &mut rng) {
            let truth = u.matmul(&probe.rho).matmul(&u.dagger());
            assert!(ptm.predict(&probe.rho).approx_eq(&truth, 1e-8));
            assert!(f.predict(&probe.rho).unwrap().approx_eq(&truth, 1e-8));
        }
    }

    #[test]
    fn unitary_channel_diagnostics_are_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = matrices::rx(1.2);
        let f = channel_pairs(&u, 1, 4, &mut rng);
        let ptm = PauliTransferMatrix::fit(&f);
        assert!(ptm.trace_preservation_defect() < 1e-8);
        assert!(ptm.unitality_defect() < 1e-8);
        assert_eq!(ptm.n_in(), 1);
        assert_eq!(ptm.n_out(), 1);
    }

    #[test]
    fn nonunital_channel_detected() {
        // Amplitude-damping-style pairs: |1><1| ↦ mostly |0><0|.
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
        let damp = |rho: &CMatrix| -> CMatrix {
            // γ = 0.5 amplitude damping on diagonal + scaled coherences.
            let g: f64 = 0.5;
            let mut out = CMatrix::zeros(2, 2);
            out[(0, 0)] = rho[(0, 0)] + rho[(1, 1)].scale(g);
            out[(1, 1)] = rho[(1, 1)].scale(1.0 - g);
            out[(0, 1)] = rho[(0, 1)].scale((1.0 - g).sqrt());
            out[(1, 0)] = rho[(1, 0)].scale((1.0 - g).sqrt());
            out
        };
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let plus_i = CMatrix::outer(
            &[C64::real(h), C64::new(0.0, h)],
            &[C64::real(h), C64::new(0.0, h)],
        );
        let inputs = vec![zero.clone(), one.clone(), plus.clone(), plus_i.clone()];
        let traces: Vec<CMatrix> = inputs.iter().map(&damp).collect();
        let f = ApproximationFunction::new(inputs, traces).unwrap();
        let ptm = PauliTransferMatrix::fit(&f);
        assert!(
            ptm.trace_preservation_defect() < 1e-8,
            "damping preserves trace"
        );
        assert!(ptm.unitality_defect() > 0.1, "damping is not unital");
        // Prediction still matches the channel.
        let test = CMatrix::outer(
            &[C64::real(0.6), C64::real(0.8)],
            &[C64::real(0.6), C64::real(0.8)],
        );
        assert!(ptm.predict(&test).approx_eq(&damp(&test), 1e-8));
    }

    #[test]
    fn under_sampled_ptm_is_a_projection_like_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = matrices::h();
        let f = channel_pairs(&u, 1, 2, &mut rng); // under-complete
        let ptm = PauliTransferMatrix::fit(&f);
        let probe = InputEnsemble::Clifford.generate(1, 1, &mut rng).remove(0);
        let truth = u.matmul(&probe.rho).matmul(&u.dagger());
        // Both estimators agree with each other even when inexact.
        let a = ptm.predict(&probe.rho);
        let b = f.predict(&probe.rho).unwrap();
        assert!(
            a.approx_eq(&b, 1e-6),
            "PTM and pairs disagree:\n{a}\nvs\n{b}"
        );
        let _ = truth;
    }
}
