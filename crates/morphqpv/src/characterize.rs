//! Program characterization (Section 5): input sampling + tracepoint
//! readout, producing one [`ApproximationFunction`] per tracepoint.
//!
//! Sampling runs execute through [`Executor`], so noiseless sweeps get the
//! statevector gate-fusion pre-pass and noisy density sweeps get the
//! qubit-local channel kernels automatically; a simulator arithmetic
//! change of this kind bumps [`crate::cache::FINGERPRINT_DOMAIN`] so stale
//! artifacts are never reused.

use std::collections::BTreeMap;

use morph_backend::{
    plan_characterization, suffix_circuit, BackendChoice, FastPathStats, PlanInputs, Simulator,
    SparseSim, StabilizerSim,
};
use morph_clifford::{InputEnsemble, InputState};
use morph_linalg::CMatrix;
use morph_qprog::{BackendMode, Circuit, Executor, Instruction, TracepointId};
use morph_qsim::{DensityMatrix, NoiseModel, StateVector};
use morph_tomography::{read_state, CostLedger, ReadoutMode, SharedLedger};
use rand::rngs::StdRng;

use crate::approx::ApproximationFunction;
use crate::cancel::{CancelToken, Cancelled};

/// How the sampling sweep walks the `(input, gate)` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// State-major: one full program execution per sampled input. Kept as
    /// the oracle the batched path is property-tested against.
    PerState,
    /// Gate-major (the default): inputs are grouped into batches of
    /// [`char_batch_size`] lanes and each gate is applied across all lanes
    /// of a batch in one strided pass. Bit-identical to [`SweepMode::PerState`]
    /// at every batch size and worker count, so the mode is excluded from
    /// the cache fingerprint.
    #[default]
    Batched,
}

/// Lanes per batch for [`SweepMode::Batched`]: the `MORPH_CHAR_BATCH`
/// environment variable when set to a positive integer, else 32.
///
/// Batch size never changes results (each lane's readout RNG stream is keyed
/// by its global input index), only the memory/locality trade-off.
pub fn char_batch_size() -> usize {
    match morph_trace::env_knob::<usize>("MORPH_CHAR_BATCH") {
        Some(0) => {
            morph_trace::warn_invalid_knob("MORPH_CHAR_BATCH", "0", "batch size must be >= 1");
            32
        }
        Some(b) => b,
        None => 32,
    }
}

/// Configuration of the characterization stage.
#[derive(Debug, Clone)]
pub struct CharacterizationConfig {
    /// Number of sampled inputs (`N_sample`).
    pub n_samples: usize,
    /// Which input family to sample (Fig 15(a) ablation).
    pub ensemble: InputEnsemble,
    /// How tracepoint states are read out (exact / tomography /
    /// probabilities-only for Strategy-prop).
    pub readout: ReadoutMode,
    /// Qubits carrying the program input; the rest start in `|0⟩`.
    pub input_qubits: Vec<usize>,
    /// Hardware noise model applied during sampling runs.
    pub noise: NoiseModel,
    /// Worker threads for the per-input sampling sweep: `0` (the default)
    /// uses all available cores, `1` runs serially on the caller's thread.
    /// Results are bit-identical at every setting — each sampled input owns
    /// an RNG stream derived from `(master seed, input index)`, so
    /// scheduling never reaches the sampled data (see DESIGN.md
    /// "Deterministic parallelism").
    pub parallelism: usize,
    /// Sweep loop order (default: [`SweepMode::Batched`]). Bit-identical
    /// either way; `PerState` exists as the test oracle and a debugging aid.
    pub sweep: SweepMode,
    /// Which simulation backend executes the sweep (default:
    /// [`BackendMode::Auto`]). The `MORPH_BACKEND` environment variable
    /// replaces `Auto` at plan time (explicitly forced modes keep their
    /// say); the effective choice is recorded in
    /// [`Characterization::backend`]. Like `parallelism` and `sweep`, the
    /// mode is excluded from the cache fingerprint — fast paths are
    /// value-equivalent to the dense kernels (bit-identical on the sparse
    /// path; see DESIGN.md "Pluggable simulation backends").
    pub backend: BackendMode,
}

impl CharacterizationConfig {
    /// A noiseless, exact-readout configuration with Clifford inputs on the
    /// given qubits — the common case in the evaluation.
    pub fn exact(input_qubits: Vec<usize>, n_samples: usize) -> Self {
        CharacterizationConfig {
            n_samples,
            ensemble: InputEnsemble::Clifford,
            readout: ReadoutMode::Exact,
            input_qubits,
            noise: NoiseModel::noiseless(),
            parallelism: 0,
            sweep: SweepMode::default(),
            backend: BackendMode::Auto,
        }
    }

    /// The paper's Theorem 2 sample budget for 100 % accuracy:
    /// `2^(N_in + 1)`, saturating at `usize::MAX` when the register is too
    /// wide for the budget to be representable.
    pub fn paper_full_budget(n_in: usize) -> usize {
        u32::try_from(n_in + 1)
            .ok()
            .and_then(|shift| 1usize.checked_shl(shift))
            .unwrap_or(usize::MAX)
    }

    /// Starts a [`CharacterizationConfigBuilder`] for the given input
    /// qubits. Defaults mirror [`CharacterizationConfig::exact`] with the
    /// paper sample budget capped at 32.
    pub fn builder(input_qubits: Vec<usize>) -> CharacterizationConfigBuilder {
        let n_samples = CharacterizationConfig::paper_full_budget(input_qubits.len()).min(32);
        CharacterizationConfigBuilder {
            config: CharacterizationConfig::exact(input_qubits, n_samples),
        }
    }
}

/// Builder for [`CharacterizationConfig`] — the counterpart of
/// [`morph_qprog::Executor::builder`] for the characterization stage.
///
/// # Examples
///
/// ```
/// use morphqpv::CharacterizationConfig;
/// use morph_tomography::ReadoutMode;
///
/// let config = CharacterizationConfig::builder(vec![0, 1])
///     .samples(8)
///     .readout(ReadoutMode::Shots(200))
///     .parallelism(1)
///     .build();
/// assert_eq!(config.n_samples, 8);
/// ```
#[derive(Debug, Clone)]
pub struct CharacterizationConfigBuilder {
    config: CharacterizationConfig,
}

impl CharacterizationConfigBuilder {
    /// Sets the number of sampled inputs (`N_sample`).
    pub fn samples(mut self, n: usize) -> Self {
        self.config.n_samples = n;
        self
    }

    /// Selects the input ensemble (default: Clifford).
    pub fn ensemble(mut self, ensemble: InputEnsemble) -> Self {
        self.config.ensemble = ensemble;
        self
    }

    /// Selects the tracepoint readout mode (default: exact).
    pub fn readout(mut self, readout: ReadoutMode) -> Self {
        self.config.readout = readout;
        self
    }

    /// Applies a hardware noise model to the sampling runs (default:
    /// noiseless).
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.config.noise = noise;
        self
    }

    /// Sets the sweep worker count (`0` = all cores, the default).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.parallelism = workers;
        self
    }

    /// Selects the sweep loop order (default: [`SweepMode::Batched`]).
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Selects the simulation backend (default: [`BackendMode::Auto`]).
    pub fn backend(mut self, backend: BackendMode) -> Self {
        self.config.backend = backend;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> CharacterizationConfig {
        self.config
    }
}

/// The output of characterization: sampled inputs, per-tracepoint sampled
/// states, the fitted approximation functions, and the cost ledger.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// The sampled inputs (on the input qubits).
    pub inputs: Vec<InputState>,
    /// Captured tracepoint states per sample, per tracepoint.
    pub traces: BTreeMap<TracepointId, Vec<CMatrix>>,
    /// Execution costs incurred.
    pub ledger: CostLedger,
    /// The backend the sweep actually executed on (after `BackendMode`
    /// resolution and eligibility checks).
    pub backend: BackendChoice,
    /// Sparse fast-path events over the whole sweep: spill/switch/splice
    /// counts summed across lanes, nonzero peak maxed across lanes — a
    /// deterministic function of the plan and the sampled inputs, so it
    /// is identical at any worker count and batch size.
    pub fast_path: FastPathStats,
}

impl Characterization {
    /// Builds the approximation function for a tracepoint.
    ///
    /// # Panics
    ///
    /// Panics if the tracepoint was not captured.
    pub fn approximation(&self, id: TracepointId) -> ApproximationFunction {
        let traces = self
            .traces
            .get(&id)
            .unwrap_or_else(|| panic!("tracepoint {id} was not captured"));
        let inputs: Vec<CMatrix> = self.inputs.iter().map(|i| i.rho.clone()).collect();
        ApproximationFunction::new(inputs, traces.clone())
            .expect("characterization produced consistent shapes")
    }

    /// Approximation functions for every captured tracepoint.
    pub fn all_approximations(&self) -> BTreeMap<TracepointId, ApproximationFunction> {
        self.traces
            .keys()
            .map(|&id| (id, self.approximation(id)))
            .collect()
    }
}

/// Runs the characterization: samples inputs, executes the program per
/// input (exactly, or with channel noise for small registers), reads each
/// tracepoint through the configured tomography mode, and accounts costs.
///
/// # Panics
///
/// Panics if the circuit has no tracepoints, the input qubits are invalid,
/// or a noisy run is requested for a register too large for density-matrix
/// simulation (> 12 qubits).
pub fn characterize(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    rng: &mut StdRng,
) -> Characterization {
    try_characterize(circuit, config, rng, &CancelToken::new())
        .expect("a fresh token never cancels")
}

/// [`characterize`] with cooperative cancellation: `cancel` is checked
/// before input generation and at the start of each sampling task, so a
/// deadline fires within one program execution's latency.
///
/// A run that completes is bit-identical to an uncancellable run — the
/// checks never touch the RNG streams.
///
/// # Errors
///
/// [`Cancelled`] when the token fires before the sweep finishes.
///
/// # Panics
///
/// Same caller-bug conditions as [`characterize`].
pub fn try_characterize(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    rng: &mut StdRng,
    cancel: &CancelToken,
) -> Result<Characterization, Cancelled> {
    assert!(
        !circuit.tracepoints().is_empty(),
        "program has no tracepoints to characterize"
    );
    let n = circuit.n_qubits();
    let n_in = config.input_qubits.len();
    assert!(n_in > 0, "no input qubits configured");
    for &q in &config.input_qubits {
        assert!(q < n, "input qubit {q} out of range");
    }

    cancel.check()?;
    let inputs =
        config
            .ensemble
            .generate_with_workers(n_in, config.n_samples, rng, config.parallelism);
    try_characterize_with_inputs(circuit, config, inputs, rng, cancel)
}

/// Characterization with an explicit input set — used by Strategy-adapt,
/// which picks eigenvector inputs instead of sampling an ensemble.
///
/// Inputs are swept in parallel according to `config.parallelism`. Input `i`
/// reads its tracepoints with an RNG stream derived from one master seed
/// (drawn from `rng`) and `i`, and each worker accumulates costs in a local
/// [`CostLedger`] merged exactly through a [`SharedLedger`], so the traces
/// and the ledger are bit-identical at every worker count.
///
/// # Panics
///
/// See [`characterize`].
pub fn characterize_with_inputs(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    inputs: Vec<InputState>,
    rng: &mut StdRng,
) -> Characterization {
    try_characterize_with_inputs(circuit, config, inputs, rng, &CancelToken::new())
        .expect("a fresh token never cancels")
}

/// [`characterize_with_inputs`] with cooperative cancellation (see
/// [`try_characterize`]).
///
/// # Errors
///
/// [`Cancelled`] when the token fires before the sweep finishes.
///
/// # Panics
///
/// See [`characterize`].
pub fn try_characterize_with_inputs(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    inputs: Vec<InputState>,
    rng: &mut StdRng,
    cancel: &CancelToken,
) -> Result<Characterization, Cancelled> {
    let n = circuit.n_qubits();
    let n_in = config.input_qubits.len();
    let ops_per_shot = circuit.op_cost() as u64;
    let executor = Executor::builder()
        .noise(config.noise)
        .backend(config.backend)
        .build();
    if !config.noise.is_noiseless() {
        assert!(
            n <= 12,
            "noisy characterization needs density-matrix simulation (≤ 12 qubits)"
        );
    }

    cancel.check()?;
    let trace = morph_trace::span("characterize");
    let trace_parent = trace.id();
    morph_trace::counter("characterize/inputs", inputs.len() as u64);

    // Fuse the shared main circuit once per sweep (noiseless only — channel
    // noise attaches per physical gate). Input preparation is applied
    // per lane, unfused, so both sweep modes execute the same gate
    // arithmetic: prep gates, then the fused main circuit. The per-state
    // sweep re-fuses per input (see below) but `fuse_circuit` is
    // deterministic, so it executes these exact gates too.
    let fused_main;
    let main: &Circuit = if config.noise.is_noiseless() {
        fused_main = executor.fuse_for_run(circuit);
        &fused_main
    } else {
        circuit
    };

    // Select the simulation backend for the whole sweep. All inputs run on
    // one backend so the traces form a coherent family; eligibility covers
    // the main circuit *and* every input's preparation circuit.
    let preps_clifford = inputs.iter().all(|input| {
        input.prep.instructions().iter().all(|inst| match inst {
            Instruction::Gate(g) => morph_backend::is_clifford_gate(g),
            Instruction::Barrier => true,
            _ => false,
        })
    });
    let plan = plan_characterization(&PlanInputs {
        circuit,
        mode: config.backend,
        noiseless: config.noise.is_noiseless(),
        n_input_qubits: n_in,
        preps_clifford,
    });

    let master = morph_parallel::derive_master(rng);
    let shared = SharedLedger::new();

    // Prepares lane `i`'s initial state the way the state-major sweep
    // always has: the remapped input-prep gates applied to the full-width
    // |0…0⟩ (plus per-gate channel noise on the noisy path, mirroring what
    // executing the prep as a circuit prefix would do).
    let prep_state = |i: usize| -> StateVector {
        let prep = inputs[i].prep.remap_qubits(&config.input_qubits, n);
        let mut state = StateVector::zero_state(n);
        for inst in prep.instructions() {
            match inst {
                Instruction::Gate(g) => g.apply(&mut state),
                Instruction::Barrier => {}
                other => panic!("input preparation must be unitary, got {other:?}"),
            }
        }
        state
    };
    // Gate-major fast path: the prep only touches the `n_in` input qubits,
    // so simulate it on the narrow input register and scatter the 2^n_in
    // amplitudes into the lane. The per-pair gate arithmetic is register-
    // width independent, so every supported amplitude carries the exact
    // bits the full-width prep produces, and off-support amplitudes are
    // exactly zero either way (see `StateVector::embed`).
    let prep_state_narrow = |i: usize| -> StateVector {
        let mut sub = StateVector::zero_state(n_in);
        for inst in inputs[i].prep.instructions() {
            match inst {
                Instruction::Gate(g) => g.apply(&mut sub),
                Instruction::Barrier => {}
                other => panic!("input preparation must be unitary, got {other:?}"),
            }
        }
        StateVector::embed(&sub, &config.input_qubits, n)
    };
    let prep_density = |i: usize| -> DensityMatrix {
        let prep = inputs[i].prep.remap_qubits(&config.input_qubits, n);
        let mut rho = DensityMatrix::zero_state(n);
        for inst in prep.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    rho.apply_gate(g);
                    config.noise.apply_to_density(&mut rho, g);
                }
                Instruction::Barrier => {}
                other => panic!("input preparation must be unitary, got {other:?}"),
            }
        }
        rho
    };
    // Tracepoint readout for lane `i`: its RNG stream is keyed by the
    // *global* input index, so batch size, sweep mode, and worker count all
    // produce bit-identical traces.
    let read_record = |i: usize,
                       tracepoints: &BTreeMap<TracepointId, CMatrix>,
                       local: &mut CostLedger|
     -> Vec<(TracepointId, CMatrix)> {
        let mut task_rng = morph_parallel::child_rng(master, i as u64);
        tracepoints
            .iter()
            .map(|(id, rho)| {
                (
                    *id,
                    read_state(rho, config.readout, ops_per_shot, local, &mut task_rng),
                )
            })
            .collect()
    };

    let mut fast_path = FastPathStats::default();
    let per_input: Vec<Result<Vec<(TracepointId, CMatrix)>, Cancelled>> = if plan.choice
        != BackendChoice::Dense
    {
        // Fast paths sweep state-major regardless of `config.sweep`: each
        // lane is an O(n²) tableau walk or a support-sized sparse run, so
        // gate-major batching has nothing to amortize. Readout stays keyed
        // by the global input index, so results are bit-identical at every
        // worker count and `SweepMode`.
        let suffix_fused = match plan.choice {
            // The stabilizer prefix runs the *raw* instruction stream
            // (fusion emits `Gate::Unitary` payloads the tableau cannot
            // represent); the spliced suffix benefits from fusion.
            BackendChoice::CliffordPrefix { split } => {
                Some(executor.fuse_for_run(&suffix_circuit(circuit, split)))
            }
            _ => None,
        };
        let no_prep = Circuit::new(n);
        type LaneTraces = Vec<(TracepointId, CMatrix)>;
        let lanes: Vec<Result<(LaneTraces, FastPathStats), Cancelled>> =
            morph_parallel::parallel_map(config.parallelism, &inputs, |i, input| {
                cancel.check()?;
                let _input_span = morph_trace::span_under(trace_parent, "input");
                let mut local = CostLedger::new();
                let prep = input.prep.remap_qubits(&config.input_qubits, n);
                let (tracepoints, stats) = match plan.choice {
                    BackendChoice::Stabilizer => {
                        let mut sim = StabilizerSim::new(n);
                        let tracepoints = run_on_simulator(&mut sim, &prep, circuit.instructions());
                        (tracepoints, FastPathStats::default())
                    }
                    BackendChoice::Sparse => {
                        let mut sim = SparseSim::new(n);
                        let tracepoints = run_on_simulator(&mut sim, &prep, main.instructions());
                        (tracepoints, sim.stats())
                    }
                    BackendChoice::CliffordPrefix { split } => {
                        // Staged splice: tableau over the Clifford
                        // prefix, then hand the materialized state to
                        // the adaptive sparse register, which runs the
                        // fused suffix and spills/switches itself to
                        // dense if the support saturates. Every stage
                        // is bitwise-faithful, so the traces match the
                        // dense sweep on monomial-Clifford inputs just
                        // as the direct handoff did.
                        let mut tableau = StabilizerSim::new(n);
                        let mut tracepoints =
                            run_on_simulator(&mut tableau, &prep, &circuit.instructions()[..split]);
                        let mut sim = SparseSim::from_statevector(&tableau.to_statevector());
                        sim.record_splice();
                        tracepoints.extend(run_on_simulator(
                            &mut sim,
                            &no_prep,
                            suffix_fused
                                .as_ref()
                                .expect("suffix fused above")
                                .instructions(),
                        ));
                        (tracepoints, sim.stats())
                    }
                    BackendChoice::Dense => unreachable!("dense handled by the sweep arms"),
                };
                let captured = read_record(i, &tracepoints, &mut local);
                shared.merge(&local);
                Ok((captured, stats))
            });
        // Lane order is the input order, so this fold — and therefore
        // the merged stats — is identical at any worker count.
        lanes
            .into_iter()
            .map(|lane| {
                lane.map(|(captured, stats)| {
                    fast_path.merge(&stats);
                    captured
                })
            })
            .collect()
    } else {
        match config.sweep {
            SweepMode::PerState => {
                morph_parallel::parallel_map(config.parallelism, &inputs, |i, _input| {
                    // One check per sampling task: a firing deadline stops the
                    // sweep within one program execution's latency. The abandoned
                    // partial result is discarded wholesale, so completed runs
                    // remain bit-identical to uncancellable ones.
                    cancel.check()?;
                    // Telemetry never touches the task RNG streams, so traces
                    // stay bit-identical whether or not the recorder is enabled.
                    let _input_span = morph_trace::span_under(trace_parent, "input");
                    let mut local = CostLedger::new();
                    let record = if config.noise.is_noiseless() {
                        // The legacy state-major pipeline ran the fusion
                        // pre-pass once per input; `run_expected` (not
                        // `run_expected_prefused`) preserves that cost so the
                        // oracle stays faithful to the sweep the gate-major
                        // mode replaces. `fuse_circuit` is deterministic, so
                        // the re-fused gates — and therefore the traces — are
                        // bitwise identical to the shared-fusion batched arm.
                        executor.run_expected(circuit, &prep_state(i))
                    } else {
                        executor.run_expected_noisy(main, &prep_density(i))
                    };
                    let captured = read_record(i, &record.tracepoints, &mut local);
                    shared.merge(&local);
                    Ok(captured)
                })
            }
            SweepMode::Batched => {
                let ranges = morph_parallel::batch_ranges(inputs.len(), char_batch_size());
                morph_trace::counter("characterize/batches", ranges.len() as u64);
                #[allow(clippy::type_complexity)]
                let per_batch: Vec<
                    Result<Vec<Vec<(TracepointId, CMatrix)>>, Cancelled>,
                > = morph_parallel::parallel_map(config.parallelism, &ranges, |_, range| {
                    // One check per batch: same granularity guarantee as the
                    // per-state path, one batched execution's latency.
                    cancel.check()?;
                    let _batch_span = morph_trace::span_under(trace_parent, "batch");
                    let mut local = CostLedger::new();
                    let records = if config.noise.is_noiseless() {
                        let states: Vec<StateVector> =
                            range.clone().map(prep_state_narrow).collect();
                        executor.run_expected_batch_prefused(main, &states)
                    } else {
                        let densities: Vec<DensityMatrix> =
                            range.clone().map(prep_density).collect();
                        executor.run_expected_noisy_batch(main, &densities)
                    };
                    let captured = records
                        .iter()
                        .zip(range.clone())
                        .map(|(record, i)| read_record(i, &record.tracepoints, &mut local))
                        .collect();
                    shared.merge(&local);
                    Ok(captured)
                });
                let mut flat = Vec::with_capacity(inputs.len());
                for batch in per_batch {
                    match batch {
                        Ok(captured) => flat.extend(captured.into_iter().map(Ok)),
                        Err(c) => flat.push(Err(c)),
                    }
                }
                flat
            }
        }
    };

    let mut traces: BTreeMap<TracepointId, Vec<CMatrix>> = BTreeMap::new();
    for captured in per_input {
        for (id, observed) in captured? {
            traces.entry(id).or_default().push(observed);
        }
    }

    let ledger = shared.snapshot();
    morph_trace::counter("characterize/executions", ledger.executions);
    morph_trace::counter("characterize/shots", ledger.shots);
    morph_trace::counter("characterize/quantum_ops", ledger.quantum_ops);
    if fast_path.peak_nonzeros > 0 {
        // One gauge sample per sweep: the max over lanes, which is
        // worker-count- and batch-size-invariant.
        morph_trace::gauge("backend/sparse_nonzero_hwm", fast_path.peak_nonzeros as f64);
    }

    Ok(Characterization {
        inputs,
        traces,
        ledger,
        backend: plan.choice,
        fast_path,
    })
}

/// Applies `prep` then walks `instructions` on a fast-path backend,
/// capturing every tracepoint's reduced density matrix. The selection plan
/// guarantees representability (all-Clifford for the tableau, unitary for
/// both), so a refusal here is a planner bug.
fn run_on_simulator<S: Simulator>(
    sim: &mut S,
    prep: &Circuit,
    instructions: &[Instruction],
) -> BTreeMap<TracepointId, CMatrix> {
    for inst in prep.instructions() {
        match inst {
            Instruction::Gate(g) => sim
                .apply_gate(g)
                .expect("backend plan guarantees representable input preparations"),
            Instruction::Barrier => {}
            other => panic!("input preparation must be unitary, got {other:?}"),
        }
    }
    let mut tracepoints = BTreeMap::new();
    for inst in instructions {
        match inst {
            Instruction::Gate(g) => sim
                .apply_gate(g)
                .expect("backend plan guarantees a representable circuit"),
            Instruction::Tracepoint { id, qubits } => {
                tracepoints.insert(*id, sim.tracepoint_rdm(qubits));
            }
            Instruction::Barrier => {}
            other => panic!("backend plan guarantees a unitary circuit, got {other:?}"),
        }
    }
    tracepoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::TracepointId;
    use rand::{Rng, SeedableRng};

    /// Two-qubit program: input on qubit 0, tracepoint after an H–CX block.
    fn sample_program() -> Circuit {
        let mut c = Circuit::new(2);
        c.tracepoint(1, &[0]);
        c.h(1).cx(0, 1);
        c.tracepoint(2, &[0, 1]);
        c
    }

    #[test]
    fn garbage_char_batch_warns_and_keeps_default() {
        // `set_var` is UB in a threaded harness; each garbage value is
        // probed in a re-exec'd child whose environment is fixed at spawn.
        // The child re-enters this test, checks the fallback, and exits 3
        // (ok) or 4; the parent also asserts the stderr warning.
        if std::env::var_os("MORPH_CHAR_ENV_PROBE").is_some() {
            std::process::exit(if char_batch_size() == 32 { 3 } else { 4 });
        }
        let exe = std::env::current_exe().expect("test binary path");
        let probe = |value: &str| {
            let out = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "characterize::tests::garbage_char_batch_warns_and_keeps_default",
                    "--nocapture",
                ])
                .env("MORPH_CHAR_ENV_PROBE", "1")
                .env("MORPH_CHAR_BATCH", value)
                .stdout(std::process::Stdio::null())
                .output()
                .expect("spawn probe child");
            (
                out.status.code(),
                String::from_utf8_lossy(&out.stderr).to_string(),
            )
        };
        for garbage in ["not-a-number", "-3", "0", "4.5"] {
            let (code, stderr) = probe(garbage);
            assert_eq!(code, Some(3), "default survives {garbage:?}");
            assert!(
                stderr.contains("MORPH_CHAR_BATCH"),
                "{garbage:?} warns on stderr, got: {stderr}"
            );
        }
    }

    #[test]
    fn characterize_captures_all_tracepoints() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = CharacterizationConfig::exact(vec![0], 4);
        let ch = characterize(&sample_program(), &config, &mut rng);
        assert_eq!(ch.inputs.len(), 4);
        assert_eq!(ch.traces.len(), 2);
        assert_eq!(ch.traces[&TracepointId(1)].len(), 4);
        assert_eq!(
            ch.ledger.executions, 8,
            "one exact readout per tracepoint per input"
        );
    }

    #[test]
    fn tracepoint_one_reproduces_input() {
        // T1 is on the input qubit before any gate touches it, so the
        // captured state equals the sampled input.
        let mut rng = StdRng::seed_from_u64(1);
        let config = CharacterizationConfig::exact(vec![0], 6);
        let ch = characterize(&sample_program(), &config, &mut rng);
        for (input, captured) in ch.inputs.iter().zip(&ch.traces[&TracepointId(1)]) {
            assert!(input.rho.approx_eq(captured, 1e-10));
        }
    }

    #[test]
    fn approximation_predicts_unseen_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = CharacterizationConfig {
            n_samples: 4,
            ensemble: InputEnsemble::PauliProduct, // spans the 1-qubit space
            ..CharacterizationConfig::exact(vec![0], 4)
        };
        let circuit = sample_program();
        let ch = characterize(&circuit, &config, &mut rng);
        let f = ch.approximation(TracepointId(2));

        // Ground truth for a fresh input.
        let test = InputEnsemble::Clifford.generate(1, 3, &mut rng);
        for t in &test {
            let prep = t.prep.remap_qubits(&[0], 2);
            let mut full = Circuit::new(2);
            full.extend_from(&prep);
            full.extend_from(&circuit);
            let truth = Executor::default()
                .run_expected(&full, &StateVector::zero_state(2))
                .state(TracepointId(2))
                .clone();
            let predicted = f.predict(&t.rho).unwrap();
            assert!(
                predicted.approx_eq(&truth, 1e-8),
                "prediction mismatch for a spanned input"
            );
        }
    }

    #[test]
    fn shot_readout_costs_more_and_is_noisy() {
        let mut rng = StdRng::seed_from_u64(3);
        let exact_cfg = CharacterizationConfig::exact(vec![0], 3);
        let shot_cfg = CharacterizationConfig {
            readout: ReadoutMode::Shots(200),
            ..exact_cfg.clone()
        };
        let exact = characterize(&sample_program(), &exact_cfg, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(3);
        let shot = characterize(&sample_program(), &shot_cfg, &mut rng2);
        assert!(shot.ledger.shots > exact.ledger.shots * 10);
        // Same sampled inputs (same seed), different capture fidelity.
        let a = &exact.traces[&TracepointId(2)][0];
        let b = &shot.traces[&TracepointId(2)][0];
        assert!(
            (a - b).frobenius_norm() > 1e-6,
            "shot noise should perturb the estimate"
        );
        assert!(
            (a - b).frobenius_norm() < 0.5,
            "but not beyond statistical error"
        );
    }

    #[test]
    fn noisy_characterization_differs_from_ideal() {
        let mut rng = StdRng::seed_from_u64(4);
        let noisy_cfg = CharacterizationConfig {
            noise: NoiseModel::ibm_cairo(),
            ..CharacterizationConfig::exact(vec![0], 3)
        };
        let noisy = characterize(&sample_program(), &noisy_cfg, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        let ideal = characterize(
            &sample_program(),
            &CharacterizationConfig::exact(vec![0], 3),
            &mut rng2,
        );
        let a = &noisy.traces[&TracepointId(2)][0];
        let b = &ideal.traces[&TracepointId(2)][0];
        assert!((a - b).frobenius_norm() > 1e-4);
    }

    #[test]
    fn paper_budget_formula() {
        assert_eq!(CharacterizationConfig::paper_full_budget(3), 16);
        assert_eq!(CharacterizationConfig::paper_full_budget(5), 64);
    }

    #[test]
    fn paper_budget_saturates_instead_of_overflowing() {
        // The old `1usize << (n_in + 1)` panics (debug) or wraps to 0
        // (release) once the shift reaches the word width.
        let bits = usize::BITS as usize;
        assert_eq!(
            CharacterizationConfig::paper_full_budget(bits - 2),
            1usize << (bits - 1)
        );
        assert_eq!(
            CharacterizationConfig::paper_full_budget(bits - 1),
            usize::MAX
        );
        assert_eq!(
            CharacterizationConfig::paper_full_budget(bits + 100),
            usize::MAX
        );
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let run = |parallelism: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            let config = CharacterizationConfig {
                parallelism,
                readout: ReadoutMode::Shots(50),
                ..CharacterizationConfig::exact(vec![0], 6)
            };
            characterize(&sample_program(), &config, &mut rng)
        };
        let serial = run(1);
        let wide = run(4);
        assert_eq!(serial.ledger, wide.ledger, "cost merging must be exact");
        for (id, states) in &serial.traces {
            for (a, b) in states.iter().zip(&wide.traces[id]) {
                assert!(
                    (a - b).frobenius_norm() == 0.0,
                    "trace at {id} differs between worker counts"
                );
            }
        }
    }

    #[test]
    fn batched_and_per_state_sweeps_are_bit_identical() {
        // The batched sweep must agree bitwise with the per-state oracle —
        // noiseless and noisy, shot readout (exercising per-lane RNG
        // streams), every worker count.
        for noise in [NoiseModel::noiseless(), NoiseModel::ibm_cairo()] {
            let run = |sweep: SweepMode, parallelism: usize| {
                let mut rng = StdRng::seed_from_u64(21);
                let config = CharacterizationConfig {
                    sweep,
                    parallelism,
                    noise,
                    readout: ReadoutMode::Shots(40),
                    ..CharacterizationConfig::exact(vec![0], 6)
                };
                characterize(&sample_program(), &config, &mut rng)
            };
            let oracle = run(SweepMode::PerState, 1);
            for parallelism in [1usize, 3] {
                let batched = run(SweepMode::Batched, parallelism);
                assert_eq!(oracle.ledger, batched.ledger);
                for (id, states) in &oracle.traces {
                    for (a, b) in states.iter().zip(&batched.traces[id]) {
                        assert_eq!(a, b, "trace at {id} differs from oracle");
                    }
                }
            }
        }
    }

    #[test]
    fn builder_matches_exact_defaults() {
        let built = CharacterizationConfig::builder(vec![0, 1]).build();
        let exact = CharacterizationConfig::exact(vec![0, 1], 8);
        assert_eq!(built.n_samples, exact.n_samples);
        assert_eq!(built.input_qubits, exact.input_qubits);
        assert!(built.noise.is_noiseless());
        let custom = CharacterizationConfig::builder(vec![0])
            .samples(5)
            .ensemble(InputEnsemble::Basis)
            .noise(NoiseModel::ibm_cairo())
            .parallelism(2)
            .build();
        assert_eq!(custom.n_samples, 5);
        assert_eq!(custom.parallelism, 2);
        assert!(!custom.noise.is_noiseless());
    }

    #[test]
    fn cancelled_token_aborts_before_work() {
        let token = crate::CancelToken::new();
        token.cancel();
        let mut rng = StdRng::seed_from_u64(0);
        let config = CharacterizationConfig::exact(vec![0], 4);
        let result = try_characterize(&sample_program(), &config, &mut rng, &token);
        assert_eq!(result.unwrap_err(), crate::Cancelled::Requested);
    }

    #[test]
    fn completed_cancellable_run_matches_plain_run() {
        let config = CharacterizationConfig::exact(vec![0], 4);
        let mut rng_a = StdRng::seed_from_u64(5);
        let plain = characterize(&sample_program(), &config, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(5);
        let token = crate::CancelToken::new();
        let checked =
            try_characterize(&sample_program(), &config, &mut rng_b, &token).expect("no cancel");
        assert_eq!(plain.ledger, checked.ledger);
        for (id, states) in &plain.traces {
            for (a, b) in states.iter().zip(&checked.traces[id]) {
                assert_eq!(a, b, "cancellation checks must not perturb results");
            }
        }
        // Both consumed the caller RNG identically.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "no tracepoints")]
    fn rejects_program_without_tracepoints() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = characterize(&c, &CharacterizationConfig::exact(vec![0], 2), &mut rng);
    }
}
