//! Sample-space pruning strategies (Section 5.4).
//!
//! - **Strategy-adapt**: eigendecompose the expected input ensemble and
//!   sample only the dominant eigenvectors.
//! - **Strategy-const**: pin part of the input register to a constant so
//!   only the remaining qubits are sampled.
//! - **Strategy-prop**: read only the property the assertion checks
//!   (probabilities instead of full tomography) — realized by
//!   [`morph_tomography::ReadoutMode::ProbabilitiesOnly`] in the
//!   characterization config.

use morph_clifford::InputState;
use morph_linalg::{eigh, CMatrix};
use morph_qprog::Circuit;
use morph_qsim::StateVector;

/// Strategy-adapt: given the density matrices of the expected input
/// workload (e.g. an encoded training set), returns preparation-ready input
/// states for the `top_k` eigenvectors of the average state, ordered by
/// eigenvalue.
///
/// The retained eigenvalue mass is returned alongside, so callers can pick
/// `top_k` against an accuracy target (the paper keeps 95 %).
///
/// # Panics
///
/// Panics if `dataset` is empty, shapes are inconsistent, or
/// `top_k` is zero or exceeds the dimension.
pub fn adaptive_inputs(dataset: &[CMatrix], top_k: usize) -> (Vec<InputState>, f64) {
    assert!(!dataset.is_empty(), "empty input dataset");
    let d = dataset[0].rows();
    assert!(top_k >= 1 && top_k <= d, "top_k out of range");
    let mut avg = CMatrix::zeros(d, d);
    for rho in dataset {
        assert_eq!(rho.rows(), d, "inconsistent dataset shapes");
        avg += &rho.scale_re(1.0 / dataset.len() as f64);
    }
    let eig = eigh(&avg);
    let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
    let kept: f64 = eig.values.iter().take(top_k).map(|v| v.max(0.0)).sum();
    let n_qubits = d.trailing_zeros() as usize;
    let mut out = Vec::with_capacity(top_k);
    for k in 0..top_k {
        let vec = eig.vector(k);
        let state = StateVector::from_amplitudes(vec.clone());
        let rho = state.density_matrix();
        // Preparation circuit placeholder: a single arbitrary-unitary gate
        // loading the eigenvector (state preparation on hardware would
        // synthesize this; cost accounting treats it as one dense unitary).
        let mut prep = Circuit::new(n_qubits);
        let u = unitary_sending_zero_to(&vec);
        prep.gate(morph_qsim::Gate::Unitary((0..n_qubits).collect(), u));
        out.push(InputState { prep, state, rho });
    }
    (out, if total > 0.0 { kept / total } else { 0.0 })
}

/// Strategy-adapt, operator-space variant: spans the *operator* space of
/// the dominant `top_k`-dimensional eigen-subspace of the workload, by
/// preparing all `k²` probe states `vᵢ`, `(vᵢ+vⱼ)/√2`, `(vᵢ+ivⱼ)/√2`.
/// These probes make every workload state inside the dominant subspace
/// exactly representable (projection accuracy = retained eigenmass),
/// unlike the bare eigenvector ensemble whose span misses the
/// cross-coherence operators.
///
/// Returns the probes and the retained eigenvalue mass.
///
/// # Panics
///
/// Panics under the same conditions as [`adaptive_inputs`].
pub fn adaptive_operator_inputs(dataset: &[CMatrix], top_k: usize) -> (Vec<InputState>, f64) {
    assert!(!dataset.is_empty(), "empty input dataset");
    let d = dataset[0].rows();
    assert!(top_k >= 1 && top_k <= d, "top_k out of range");
    let mut avg = CMatrix::zeros(d, d);
    for rho in dataset {
        assert_eq!(rho.rows(), d, "inconsistent dataset shapes");
        avg += &rho.scale_re(1.0 / dataset.len() as f64);
    }
    let eig = eigh(&avg);
    let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
    let kept: f64 = eig.values.iter().take(top_k).map(|v| v.max(0.0)).sum();
    let n_qubits = d.trailing_zeros() as usize;
    let vectors: Vec<Vec<morph_linalg::C64>> = (0..top_k).map(|k| eig.vector(k)).collect();

    let mut kets: Vec<Vec<morph_linalg::C64>> = Vec::with_capacity(top_k * top_k);
    for v in &vectors {
        kets.push(v.clone());
    }
    let s = 1.0 / 2f64.sqrt();
    for i in 0..top_k {
        for j in (i + 1)..top_k {
            let mut plus = vec![morph_linalg::C64::ZERO; d];
            let mut plus_i = vec![morph_linalg::C64::ZERO; d];
            for idx in 0..d {
                plus[idx] = (vectors[i][idx] + vectors[j][idx]).scale(s);
                plus_i[idx] = (vectors[i][idx] + morph_linalg::C64::I * vectors[j][idx]).scale(s);
            }
            kets.push(plus);
            kets.push(plus_i);
        }
    }
    let inputs = kets
        .into_iter()
        .map(|ket| {
            let state = StateVector::from_amplitudes(ket.clone());
            let rho = state.density_matrix();
            let mut prep = Circuit::new(n_qubits);
            let u = unitary_sending_zero_to(state.amplitudes());
            prep.gate(morph_qsim::Gate::Unitary((0..n_qubits).collect(), u));
            InputState { prep, state, rho }
        })
        .collect();
    (inputs, if total > 0.0 { kept / total } else { 0.0 })
}

/// Builds a unitary whose first column is `target` (Householder-style
/// completion), so `U|0…0⟩ = |target⟩`.
fn unitary_sending_zero_to(target: &[morph_linalg::C64]) -> CMatrix {
    use morph_linalg::C64;
    let d = target.len();
    let mut cols: Vec<Vec<C64>> = vec![target.to_vec()];
    // Gram–Schmidt complete with basis vectors.
    for j in 0..d {
        if cols.len() == d {
            break;
        }
        let mut v = vec![C64::ZERO; d];
        v[j] = C64::ONE;
        for col in &cols {
            let overlap: C64 = col.iter().zip(&v).map(|(a, b)| a.conj() * *b).sum();
            for (vi, ci) in v.iter_mut().zip(col) {
                *vi -= overlap * *ci;
            }
        }
        let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-9 {
            for vi in &mut v {
                *vi = *vi / norm;
            }
            cols.push(v);
        }
    }
    CMatrix::from_fn(d, d, |r, c| cols[c][r])
}

/// Strategy-const: embeds sampled states on the *free* qubits into the full
/// input register with the remaining input qubits pinned to a
/// computational-basis constant.
///
/// Returns the full-register input states (prep circuits remapped so that
/// `free_qubits[i]` carries sampled qubit `i`, with X gates realizing the
/// constant bits).
///
/// # Panics
///
/// Panics if registers overlap, are empty, or the constant does not fit.
pub fn constant_pinned_inputs(
    sampled: &[InputState],
    free_qubits: &[usize],
    pinned_qubits: &[usize],
    pinned_value: u64,
) -> Vec<InputState> {
    assert!(!free_qubits.is_empty(), "no free qubits");
    for q in pinned_qubits {
        assert!(
            !free_qubits.contains(q),
            "pinned qubit {q} overlaps free set"
        );
    }
    assert!(
        pinned_qubits.len() >= 64 || pinned_value < (1u64 << pinned_qubits.len()),
        "pinned value does not fit"
    );
    let n_total = free_qubits
        .iter()
        .chain(pinned_qubits)
        .max()
        .map(|&m| m + 1)
        .expect("nonempty registers");
    sampled
        .iter()
        .map(|input| {
            let mut prep = input.prep.remap_qubits(free_qubits, n_total);
            let mut header = Circuit::new(n_total);
            for (i, &q) in pinned_qubits.iter().enumerate() {
                if (pinned_value >> (pinned_qubits.len() - 1 - i)) & 1 == 1 {
                    header.x(q);
                }
            }
            header.extend_from(&prep);
            prep = header;
            // Full-register state: run the prep on |0…0⟩.
            let mut state = StateVector::zero_state(n_total);
            for inst in prep.instructions() {
                if let morph_qprog::Instruction::Gate(g) = inst {
                    g.apply(&mut state);
                }
            }
            let rho = state.density_matrix();
            InputState { prep, state, rho }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_clifford::InputEnsemble;
    use morph_linalg::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adaptive_inputs_recover_dominant_subspace() {
        // Dataset concentrated on |0> with a sprinkle of |+>.
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let dataset = vec![zero.clone(), zero.clone(), zero.clone(), plus];
        let (inputs, mass) = adaptive_inputs(&dataset, 1);
        assert_eq!(inputs.len(), 1);
        assert!(
            mass > 0.8,
            "dominant eigenvector should carry most mass, got {mass}"
        );
        // The top eigenvector leans toward |0>.
        assert!(inputs[0].rho[(0, 0)].re > 0.7);
    }

    #[test]
    fn adaptive_inputs_span_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(0);
        let dataset: Vec<CMatrix> = InputEnsemble::Clifford
            .generate(2, 12, &mut rng)
            .into_iter()
            .map(|i| i.rho)
            .collect();
        let (one, mass1) = adaptive_inputs(&dataset, 1);
        let (four, mass4) = adaptive_inputs(&dataset, 4);
        assert_eq!(one.len(), 1);
        assert_eq!(four.len(), 4);
        assert!(mass4 >= mass1);
        assert!((mass4 - 1.0).abs() < 1e-9, "full spectrum keeps all mass");
    }

    #[test]
    fn adaptive_prep_circuit_prepares_the_eigenvector() {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset: Vec<CMatrix> = InputEnsemble::Clifford
            .generate(2, 8, &mut rng)
            .into_iter()
            .map(|i| i.rho)
            .collect();
        let (inputs, _) = adaptive_inputs(&dataset, 2);
        for input in &inputs {
            let mut psi = StateVector::zero_state(2);
            for inst in input.prep.instructions() {
                if let morph_qprog::Instruction::Gate(g) = inst {
                    g.apply(&mut psi);
                }
            }
            assert!(psi.approx_eq_up_to_phase(&input.state, 1e-9));
        }
    }

    #[test]
    fn adaptive_operator_inputs_cover_dominant_subspace() {
        // Workload confined to span{|00>, |01>}: 4 operator probes (k=2)
        // make every workload state exactly representable.
        let mut rng = StdRng::seed_from_u64(9);
        let dataset: Vec<CMatrix> = (0..10)
            .map(|_| {
                let a: f64 = rand::Rng::gen_range(&mut rng, 0.1..0.9);
                let amps = vec![
                    C64::real(a.sqrt()),
                    C64::new(0.0, (1.0 - a).sqrt()),
                    C64::ZERO,
                    C64::ZERO,
                ];
                StateVector::from_amplitudes(amps).density_matrix()
            })
            .collect();
        let (inputs, mass) = adaptive_operator_inputs(&dataset, 2);
        assert_eq!(inputs.len(), 4);
        assert!(mass > 0.999, "workload is rank-2, got mass {mass}");
        let basis: Vec<CMatrix> = inputs.iter().map(|i| i.rho.clone()).collect();
        for rho in &dataset {
            let alphas = morph_linalg::decompose_hermitian(&basis, rho).unwrap();
            let rec = morph_linalg::recombine(&basis, &alphas);
            assert!(
                morph_linalg::hs_accuracy(&rec, rho) > 0.999,
                "workload state not representable"
            );
        }
    }

    #[test]
    fn constant_pinning_embeds_and_pins() {
        let mut rng = StdRng::seed_from_u64(2);
        let sampled = InputEnsemble::PauliProduct.generate(1, 3, &mut rng);
        // Free qubit 2, pinned qubits {0, 1} to value 0b10.
        let pinned = constant_pinned_inputs(&sampled, &[2], &[0, 1], 0b10);
        assert_eq!(pinned.len(), 3);
        for p in &pinned {
            assert_eq!(p.state.n_qubits(), 3);
            assert!(
                (p.state.prob_one(0) - 1.0).abs() < 1e-12,
                "qubit 0 pinned to 1"
            );
            assert!(p.state.prob_one(1) < 1e-12, "qubit 1 pinned to 0");
        }
        // The free qubit still varies across the ensemble.
        let v0 = pinned[0].state.prob_one(2);
        let v1 = pinned[1].state.prob_one(2);
        assert!((v0 - v1).abs() > 0.5);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_registers_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = InputEnsemble::Basis.generate(1, 1, &mut rng);
        let _ = constant_pinned_inputs(&sampled, &[0], &[0], 0);
    }

    #[test]
    fn unitary_completion_is_unitary() {
        let v = vec![
            C64::real(0.5),
            C64::new(0.5, 0.5),
            C64::real(0.5),
            C64::ZERO,
        ];
        let u = unitary_sending_zero_to(&v);
        assert!(u.is_unitary(1e-9));
        // First column is the target.
        for (i, &vi) in v.iter().enumerate() {
            assert!(u[(i, 0)].approx_eq(vi, 1e-12));
        }
    }
}
