//! Classical predicates over density matrices (Definition 1).
//!
//! A predicate is encoded as an objective function `P(ρ)` with
//! `P(ρ) ≤ 0 ⇔ the predicate is true`, exactly as Section 4 defines it, so
//! that validation can maximize the guarantee objective directly.

use std::fmt;
use std::sync::Arc;

use morph_linalg::{purity_defect, CMatrix};

/// A predicate over a single state.
///
/// # Examples
///
/// ```
/// use morph_linalg::{C64, CMatrix};
/// use morphqpv::StatePredicate;
///
/// let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
/// assert!(StatePredicate::IsPure.holds(&zero, 1e-9));
/// assert!(StatePredicate::equals(zero.clone()).holds(&zero, 1e-9));
/// ```
#[derive(Clone)]
pub enum StatePredicate {
    /// The state is pure: objective `‖ρρ† − ρ‖`.
    IsPure,
    /// The state equals a target: objective `‖ρ − σ‖`.
    Equals(CMatrix),
    /// The state differs from a target by at least `margin` in Frobenius
    /// norm: objective `margin − ‖ρ − σ‖`.
    NotEquals {
        /// State to differ from.
        target: CMatrix,
        /// Minimum required distance.
        margin: f64,
    },
    /// `tr(Oρ) > threshold`: objective `threshold − tr(Oρ)`.
    ExpectationAbove {
        /// Hermitian observable.
        observable: CMatrix,
        /// Strict lower bound on the expectation.
        threshold: f64,
    },
    /// `tr(Oρ) ≤ threshold`: objective `tr(Oρ) − threshold`.
    ExpectationBelow {
        /// Hermitian observable.
        observable: CMatrix,
        /// Upper bound on the expectation.
        threshold: f64,
    },
    /// The probability of a computational-basis outcome is at least `p`:
    /// objective `p − ρ[i][i]`.
    ProbabilityAtLeast {
        /// Basis index.
        basis: usize,
        /// Required probability.
        p: f64,
    },
    /// An arbitrary classical function of the density matrix (the paper
    /// allows any formulation since ρ lives on the classical side).
    Custom(Arc<dyn Fn(&CMatrix) -> f64 + Send + Sync>),
}

impl StatePredicate {
    /// Convenience constructor for [`StatePredicate::Equals`].
    pub fn equals(target: CMatrix) -> Self {
        StatePredicate::Equals(target)
    }

    /// Convenience constructor for [`StatePredicate::NotEquals`] with the
    /// default margin `0.1`.
    pub fn not_equals(target: CMatrix) -> Self {
        StatePredicate::NotEquals {
            target,
            margin: 0.1,
        }
    }

    /// Wraps a closure as a predicate objective.
    pub fn custom(f: impl Fn(&CMatrix) -> f64 + Send + Sync + 'static) -> Self {
        StatePredicate::Custom(Arc::new(f))
    }

    /// The objective value `P(ρ)`; ≤ 0 means the predicate holds.
    pub fn objective(&self, rho: &CMatrix) -> f64 {
        match self {
            StatePredicate::IsPure => purity_defect(rho),
            StatePredicate::Equals(target) => (rho - target).frobenius_norm(),
            StatePredicate::NotEquals { target, margin } => {
                margin - (rho - target).frobenius_norm()
            }
            StatePredicate::ExpectationAbove {
                observable,
                threshold,
            } => threshold - morph_linalg::expectation(observable, rho),
            StatePredicate::ExpectationBelow {
                observable,
                threshold,
            } => morph_linalg::expectation(observable, rho) - threshold,
            StatePredicate::ProbabilityAtLeast { basis, p } => {
                p - rho.get(*basis, *basis).map(|z| z.re).unwrap_or(0.0)
            }
            StatePredicate::Custom(f) => f(rho),
        }
    }

    /// `true` if the objective is within `tol` of the feasible region.
    pub fn holds(&self, rho: &CMatrix, tol: f64) -> bool {
        self.objective(rho) <= tol
    }
}

impl fmt::Debug for StatePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatePredicate::IsPure => write!(f, "IsPure"),
            StatePredicate::Equals(_) => write!(f, "Equals(⟨state⟩)"),
            StatePredicate::NotEquals { margin, .. } => {
                write!(f, "NotEquals(⟨state⟩, margin={margin})")
            }
            StatePredicate::ExpectationAbove { threshold, .. } => {
                write!(f, "ExpectationAbove({threshold})")
            }
            StatePredicate::ExpectationBelow { threshold, .. } => {
                write!(f, "ExpectationBelow({threshold})")
            }
            StatePredicate::ProbabilityAtLeast { basis, p } => {
                write!(f, "ProbabilityAtLeast(|{basis}⟩, {p})")
            }
            StatePredicate::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// A predicate over a *pair* of states — the relational power that
/// distinguishes MorphQPV's multi-state assertions (Table 2's
/// "Evolution" row).
#[derive(Clone)]
pub enum RelationPredicate {
    /// The two states are equal: objective `‖ρ₁ − ρ₂‖`.
    Equal,
    /// The states differ by at least `margin`: objective
    /// `margin − ‖ρ₁ − ρ₂‖`.
    NotEqual {
        /// Minimum required distance.
        margin: f64,
    },
    /// The states are within `tolerance`: objective
    /// `‖ρ₁ − ρ₂‖ − tolerance`. Used for the QNN pruning check
    /// (`‖ρ − ρ'‖ ≤ β`).
    Within {
        /// Allowed distance β.
        tolerance: f64,
    },
    /// Both states give the same expectation of an observable up to
    /// `tolerance`: objective `|tr(Oρ₁) − tr(Oρ₂)| − tolerance`.
    ExpectationMatch {
        /// Hermitian observable.
        observable: CMatrix,
        /// Allowed expectation difference.
        tolerance: f64,
    },
    /// The overlap phase `arg tr(ρ₂†ρ₁)` equals `phase` up to `tolerance`
    /// radians — the teleportation feedback example of Section 4.
    PhaseDifference {
        /// Expected phase in radians.
        phase: f64,
        /// Allowed deviation in radians.
        tolerance: f64,
    },
    /// Arbitrary classical relation.
    Custom(Arc<RelationFn>),
}

/// Objective signature for [`RelationPredicate::Custom`]: maps a pair of
/// density matrices to a value that is ≤ 0 when the relation holds.
pub type RelationFn = dyn Fn(&CMatrix, &CMatrix) -> f64 + Send + Sync;

impl RelationPredicate {
    /// Wraps a closure as a relational objective.
    pub fn custom(f: impl Fn(&CMatrix, &CMatrix) -> f64 + Send + Sync + 'static) -> Self {
        RelationPredicate::Custom(Arc::new(f))
    }

    /// The objective value `P(ρ₁, ρ₂)`; ≤ 0 means the relation holds.
    ///
    /// # Panics
    ///
    /// [`RelationPredicate::Equal`]-family objectives panic if the states
    /// have different dimensions.
    pub fn objective(&self, rho1: &CMatrix, rho2: &CMatrix) -> f64 {
        match self {
            RelationPredicate::Equal => (rho1 - rho2).frobenius_norm(),
            RelationPredicate::NotEqual { margin } => margin - (rho1 - rho2).frobenius_norm(),
            RelationPredicate::Within { tolerance } => (rho1 - rho2).frobenius_norm() - tolerance,
            RelationPredicate::ExpectationMatch {
                observable,
                tolerance,
            } => {
                (morph_linalg::expectation(observable, rho1)
                    - morph_linalg::expectation(observable, rho2))
                .abs()
                    - tolerance
            }
            RelationPredicate::PhaseDifference { phase, tolerance } => {
                let overlap = rho2.dagger().matmul(rho1).trace();
                let mut delta = overlap.arg() - phase;
                // Wrap to (−π, π].
                while delta > std::f64::consts::PI {
                    delta -= 2.0 * std::f64::consts::PI;
                }
                while delta <= -std::f64::consts::PI {
                    delta += 2.0 * std::f64::consts::PI;
                }
                delta.abs() - tolerance
            }
            RelationPredicate::Custom(f) => f(rho1, rho2),
        }
    }

    /// `true` if the objective is within `tol` of feasibility.
    pub fn holds(&self, rho1: &CMatrix, rho2: &CMatrix, tol: f64) -> bool {
        self.objective(rho1, rho2) <= tol
    }
}

impl fmt::Debug for RelationPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationPredicate::Equal => write!(f, "Equal"),
            RelationPredicate::NotEqual { margin } => write!(f, "NotEqual(margin={margin})"),
            RelationPredicate::Within { tolerance } => write!(f, "Within({tolerance})"),
            RelationPredicate::ExpectationMatch { tolerance, .. } => {
                write!(f, "ExpectationMatch(tol={tolerance})")
            }
            RelationPredicate::PhaseDifference { phase, tolerance } => {
                write!(f, "PhaseDifference({phase} ± {tolerance})")
            }
            RelationPredicate::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_linalg::C64;

    fn ket0() -> CMatrix {
        CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO])
    }

    fn ket1() -> CMatrix {
        CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE])
    }

    fn mixed() -> CMatrix {
        CMatrix::identity(2).scale_re(0.5)
    }

    #[test]
    fn is_pure_discriminates() {
        assert!(StatePredicate::IsPure.holds(&ket0(), 1e-9));
        assert!(!StatePredicate::IsPure.holds(&mixed(), 1e-9));
    }

    #[test]
    fn equality_objectives() {
        assert!(StatePredicate::equals(ket0()).holds(&ket0(), 1e-9));
        assert!(!StatePredicate::equals(ket0()).holds(&ket1(), 1e-9));
        assert!(StatePredicate::not_equals(ket0()).holds(&ket1(), 1e-9));
        assert!(!StatePredicate::not_equals(ket0()).holds(&ket0(), 1e-9));
    }

    #[test]
    fn expectation_predicates() {
        let z = morph_qsim::matrices::z();
        let above = StatePredicate::ExpectationAbove {
            observable: z.clone(),
            threshold: 0.5,
        };
        assert!(above.holds(&ket0(), 1e-9)); // <Z> = 1 > 0.5
        assert!(!above.holds(&ket1(), 1e-9)); // <Z> = −1
        let below = StatePredicate::ExpectationBelow {
            observable: z,
            threshold: 0.0,
        };
        assert!(below.holds(&ket1(), 1e-9));
        assert!(!below.holds(&ket0(), 1e-9));
    }

    #[test]
    fn probability_predicate() {
        let p = StatePredicate::ProbabilityAtLeast { basis: 1, p: 0.4 };
        assert!(p.holds(&mixed(), 1e-9));
        assert!(!p.holds(&ket0(), 1e-9));
        // Out-of-range basis index reads probability 0.
        let oob = StatePredicate::ProbabilityAtLeast { basis: 9, p: 0.1 };
        assert!(!oob.holds(&mixed(), 1e-9));
    }

    #[test]
    fn custom_predicate() {
        let trace_one = StatePredicate::custom(|rho| (rho.trace().re - 1.0).abs());
        assert!(trace_one.holds(&ket0(), 1e-9));
        assert!(!trace_one.holds(&CMatrix::identity(2), 1e-9));
    }

    #[test]
    fn relation_equal_and_within() {
        assert!(RelationPredicate::Equal.holds(&ket0(), &ket0(), 1e-9));
        assert!(!RelationPredicate::Equal.holds(&ket0(), &ket1(), 1e-9));
        assert!(RelationPredicate::Within { tolerance: 2.0 }.holds(&ket0(), &ket1(), 1e-9));
        assert!(!RelationPredicate::Within { tolerance: 0.5 }.holds(&ket0(), &ket1(), 1e-9));
    }

    #[test]
    fn relation_expectation_match() {
        let z = morph_qsim::matrices::z();
        let m = RelationPredicate::ExpectationMatch {
            observable: z,
            tolerance: 0.1,
        };
        assert!(m.holds(&ket0(), &ket0(), 1e-9));
        assert!(!m.holds(&ket0(), &ket1(), 1e-9));
    }

    #[test]
    fn relation_phase_difference() {
        // ρ1 = |+><+|, ρ2 = |−><−|: tr(ρ2†ρ1) is real positive (overlap 0)…
        // use coherences instead: compare |+> against e^{iπ}-rotated |+>.
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let pred = RelationPredicate::PhaseDifference {
            phase: 0.0,
            tolerance: 0.1,
        };
        assert!(pred.holds(&plus, &plus, 1e-9));
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let preds: Vec<Box<dyn fmt::Debug>> = vec![
            Box::new(StatePredicate::IsPure),
            Box::new(StatePredicate::equals(ket0())),
            Box::new(RelationPredicate::Equal),
            Box::new(RelationPredicate::PhaseDifference {
                phase: 1.0,
                tolerance: 0.1,
            }),
        ];
        for p in preds {
            assert!(!format!("{p:?}").is_empty());
        }
    }
}
