//! Segment-granular incremental characterization (the "revision loop").
//!
//! The PR-2 store content-addresses whole `(circuit, config, seed)` runs:
//! edit one gate and the fingerprint changes, so everything recomputes.
//! This module makes characterization *incremental* across program
//! revisions by splitting the circuit into segments whose identities
//! depend only on their own content:
//!
//! 1. **Segmentation** ([`segment_plan`]): a canonical pass over the IR
//!    that cuts at every tracepoint and at content-defined gate
//!    boundaries. Whether a boundary follows gate `g` is a pure function
//!    of `g`'s own canonical bytes (hashed into
//!    [`SEGMENT_CUT_DOMAIN`], cut when the hash is `0 mod
//!    segment_gates`), so editing gate `k` never moves a boundary
//!    elsewhere — the classic content-defined-chunking trick. Mean
//!    segment length is [`SegmentedConfig::segment_gates`].
//! 2. **Per-segment fingerprints** ([`segment_fingerprint`]): each
//!    segment is addressed by its own circuit bytes plus the
//!    characterization config (ensemble, readout, noise, sample budget)
//!    and the run's master seed — *not* by its position in the program.
//!    A segment's RNG seed is derived from its fingerprint, so its
//!    artifact is position-independent and reusable wherever the same
//!    gates appear. Parallelism, sweep mode, and backend are excluded
//!    exactly as in the whole-run fingerprint: results are bit-identical
//!    across all of them, so they must not fragment the cache.
//! 3. **Structural diff + reuse** ([`try_characterize_incremental`]):
//!    the revised circuit's segment fingerprints are matched against the
//!    [`SegmentedCache`]. Reuse is content-addressed (any segment seen
//!    before, anywhere, is a hit); the longest-common-prefix/suffix
//!    against the previous revision is additionally reported as
//!    [`SegmentReport::reused_prefix`]/[`reused_suffix`](SegmentReport::reused_suffix)
//!    so callers can see that an edit to layer `k` kept everything
//!    outside `k`'s chunk.
//! 4. **Composition**: cached stage artifacts plus freshly characterized
//!    deltas rebuild the [`ChainedApproximation`], and the tracepoint
//!    traces are synthesized by walking each sampled input's density
//!    matrix through the stage functions — yielding a full
//!    [`Characterization`] that downstream validation consumes unchanged.
//!
//! Noiseless exact-readout runs store segments as pure boundary
//! statevectors (cheap, scales to wide registers); noisy or shot-limited
//! runs delegate to the density-matrix characterization per segment.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::path::Path;

use morph_backend::{BackendChoice, FastPathStats};
use morph_clifford::{basis_prep, clifford_prep, pauli_product_prep, InputEnsemble, InputState};
use morph_linalg::{CMatrix, SolveError};
use morph_qprog::{Circuit, Instruction, TracepointId};
use morph_qsim::{DensityMatrix, StateVector};
use morph_store::{Fingerprint, FingerprintBuilder, MorphStore, StoreStats};
use morph_tomography::{CostLedger, ReadoutMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

use crate::approx::{ApproximationFunction, ChainedApproximation};
use crate::cache::{
    artifact_envelope, check_artifact_envelope, decode_backend, decode_fast_path, encode_fast_path,
    record_store_delta,
};
use crate::characterize::{Characterization, CharacterizationConfig};

/// Domain tag for per-segment artifact fingerprints. Bump the version
/// suffix whenever segment characterization changes meaning for the same
/// inputs.
pub const SEGMENT_DOMAIN: &str = "morphqpv/segment/v1";

/// Domain tag for the content-defined boundary decision. Changing this
/// (or the cut rule) re-segments every program, invalidating all cached
/// segments at once — bump deliberately.
pub const SEGMENT_CUT_DOMAIN: &str = "morphqpv/segment-cut/v1";

/// Default mean segment length, in gates.
pub const DEFAULT_SEGMENT_GATES: usize = 4;

/// Tuning knobs for the segmentation pass.
///
/// Build one with [`SegmentedConfig::new`] and the builder-style setters,
/// or [`SegmentedConfig::from_env`] to honor `MORPH_SEGMENT_GATES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedConfig {
    /// Target mean gates per segment (content-defined, so individual
    /// segments vary around this). `1` cuts after every gate.
    pub segment_gates: usize,
}

impl Default for SegmentedConfig {
    fn default() -> Self {
        SegmentedConfig {
            segment_gates: DEFAULT_SEGMENT_GATES,
        }
    }
}

impl SegmentedConfig {
    /// The default configuration ([`DEFAULT_SEGMENT_GATES`] gates per
    /// segment on average).
    pub fn new() -> Self {
        SegmentedConfig::default()
    }

    /// Sets the target mean segment length in gates.
    pub fn segment_gates(mut self, gates: usize) -> Self {
        self.segment_gates = gates;
        self
    }

    /// The default configuration with `MORPH_SEGMENT_GATES` applied when
    /// set and valid (invalid values warn and keep the default).
    pub fn from_env() -> Self {
        let mut cfg = SegmentedConfig::default();
        match morph_trace::env_knob::<usize>("MORPH_SEGMENT_GATES") {
            Some(0) => morph_trace::warn_invalid_knob(
                "MORPH_SEGMENT_GATES",
                "0",
                "segment size must be >= 1 gate",
            ),
            Some(gates) => cfg.segment_gates = gates,
            None => {}
        }
        cfg
    }
}

/// Structured failure modes of the segmented/incremental surface
/// (replacing the `assert!` preconditions of the original
/// `characterize_segmented` helper).
#[derive(Debug)]
pub enum SegmentError {
    /// The program contains measurement, reset, or classical feedback.
    NotUnitary,
    /// The program has no gates to segment.
    NoGates,
    /// The program has no tracepoints, so there is nothing to
    /// characterize.
    NoTracepoints,
    /// `n_segments == 0` was requested.
    ZeroSegments,
    /// `segment_gates == 0` was configured.
    ZeroSegmentGates,
    /// More segments were requested than the program has gates.
    TooManySegments {
        /// The requested segment count.
        requested: usize,
        /// The program's gate count.
        gates: usize,
    },
    /// The per-segment stages could not be composed into a chain.
    Compose(SolveError),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::NotUnitary => {
                write!(
                    f,
                    "segmented characterization requires a measurement-free program"
                )
            }
            SegmentError::NoGates => {
                write!(f, "segmented characterization requires at least one gate")
            }
            SegmentError::NoTracepoints => {
                write!(f, "program has no tracepoints to characterize")
            }
            SegmentError::ZeroSegments => write!(f, "need at least one segment"),
            SegmentError::ZeroSegmentGates => {
                write!(f, "segment size must be at least one gate")
            }
            SegmentError::TooManySegments { requested, gates } => write!(
                f,
                "requested {requested} segments but the program has only {gates} gates"
            ),
            SegmentError::Compose(e) => write!(f, "segment composition failed: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Compose(e) => Some(e),
            _ => None,
        }
    }
}

/// The canonical segmentation of a circuit: maximal gate runs split at
/// tracepoints and content-defined boundaries.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// Register width shared by every segment.
    pub n_qubits: usize,
    /// The gate-only segment circuits, in program order.
    pub segments: Vec<Circuit>,
    /// Each tracepoint as `(id, qubits, boundary)`: the tracepoint
    /// observes the state after `boundary` segments have been applied.
    pub tracepoints: Vec<(TracepointId, Vec<usize>, usize)>,
}

/// Whether a boundary follows this gate: a pure function of the gate's
/// own canonical bytes, so edits elsewhere never move it.
fn gate_cuts(inst: &Instruction, n_qubits: usize, segment_gates: usize) -> bool {
    if segment_gates <= 1 {
        return true;
    }
    let mut probe = Circuit::new(n_qubits);
    probe.push(inst.clone());
    let mut bytes = Vec::new();
    probe.canonical_bytes(&mut bytes);
    let fp = FingerprintBuilder::new(SEGMENT_CUT_DOMAIN)
        .field_bytes("gate", &bytes)
        .finish();
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&fp.0[..8]);
    u64::from_le_bytes(prefix) % (segment_gates as u64) == 0
}

/// Computes the canonical segmentation of `circuit` under `config`.
///
/// # Errors
///
/// [`SegmentError::ZeroSegmentGates`] for a zero segment size,
/// [`SegmentError::NotUnitary`] for programs with measurement/feedback,
/// [`SegmentError::NoGates`] for gate-free programs.
pub fn segment_plan(
    circuit: &Circuit,
    config: &SegmentedConfig,
) -> Result<SegmentPlan, SegmentError> {
    if config.segment_gates == 0 {
        return Err(SegmentError::ZeroSegmentGates);
    }
    if circuit.has_nonunitary() {
        return Err(SegmentError::NotUnitary);
    }
    let n = circuit.n_qubits();
    let mut segments: Vec<Circuit> = Vec::new();
    let mut tracepoints = Vec::new();
    let mut current = Circuit::new(n);
    let mut current_len = 0usize;
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate(_) => {
                current.push(inst.clone());
                current_len += 1;
                if gate_cuts(inst, n, config.segment_gates) {
                    segments.push(std::mem::replace(&mut current, Circuit::new(n)));
                    current_len = 0;
                }
            }
            Instruction::Tracepoint { id, qubits } => {
                if current_len > 0 {
                    segments.push(std::mem::replace(&mut current, Circuit::new(n)));
                    current_len = 0;
                }
                tracepoints.push((*id, qubits.clone(), segments.len()));
            }
            Instruction::Barrier => {}
            _ => return Err(SegmentError::NotUnitary),
        }
    }
    if current_len > 0 {
        segments.push(current);
    }
    if segments.is_empty() {
        return Err(SegmentError::NoGates);
    }
    Ok(SegmentPlan {
        n_qubits: n,
        segments,
        tracepoints,
    })
}

/// Content address of one segment's characterization artifact.
///
/// Position-independent: only the segment's own circuit bytes, the
/// characterization config (minus parallelism/sweep/backend and minus
/// `input_qubits` — segments always span the full register), and the
/// run's master seed enter the hash.
pub fn segment_fingerprint(
    segment: &Circuit,
    config: &CharacterizationConfig,
    master_seed: u64,
) -> Fingerprint {
    let mut circuit_bytes = Vec::new();
    segment.canonical_bytes(&mut circuit_bytes);
    let mut noise_bytes = Vec::new();
    config.noise.canonical_bytes(&mut noise_bytes);
    let (readout_tag, readout_param) = config.readout.tag();
    FingerprintBuilder::new(SEGMENT_DOMAIN)
        .field_bytes("circuit", &circuit_bytes)
        .field_str("ensemble", config.ensemble.tag())
        .field_str("readout", readout_tag)
        .field_u64("readout-param", readout_param)
        .field_bytes("noise", &noise_bytes)
        .field_u64("n-samples", config.n_samples as u64)
        .field_u64("seed", master_seed)
        .finish()
}

/// The segment's RNG seed, derived from its content address so the
/// artifact is reproducible wherever the segment appears. Public so
/// callers driving [`characterize_segment`] directly (e.g. the revision
/// bench) reproduce the exact artifact the incremental path would store.
pub fn segment_seed(fp: &Fingerprint) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&fp.0[..8]);
    u64::from_le_bytes(b)
}

/// One characterized segment, as stored.
#[derive(Debug, Clone)]
pub enum SegmentStage {
    /// Noiseless exact-readout runs: sampled boundary statevectors
    /// (input/output pairs). Cheap to store and simulate, so this form
    /// scales to registers far wider than the density path.
    Pure {
        /// Sampled input states at the segment's entry boundary.
        inputs: Vec<StateVector>,
        /// The same states propagated to the exit boundary.
        outputs: Vec<StateVector>,
    },
    /// Noisy or shot-limited runs: the fitted density-matrix stage map.
    Density(ApproximationFunction),
}

/// A per-segment cache artifact: the stage plus the cost/backend
/// metadata a warm run must restore.
#[derive(Debug, Clone)]
pub struct SegmentArtifact {
    /// The stage payload.
    pub stage: SegmentStage,
    /// Cost of the original characterization run for this segment.
    pub ledger: CostLedger,
    /// Backend that produced the artifact.
    pub backend: BackendChoice,
    /// Fast-path statistics of the original run.
    pub fast_path: FastPathStats,
}

fn apply_unitary(circuit: &Circuit, psi: &mut StateVector) {
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate(g) => g.apply(psi),
            Instruction::Barrier => {}
            other => panic!("segment must be unitary, got {other:?}"),
        }
    }
}

/// Whether `config` characterizes segments as pure boundary states.
fn pure_mode(config: &CharacterizationConfig) -> bool {
    config.noise.is_noiseless() && matches!(config.readout, ReadoutMode::Exact)
}

/// Characterizes one segment from scratch under `config`, seeded by
/// `seg_seed` (normally [`segment_fingerprint`]-derived — see
/// [`try_characterize_incremental`]).
///
/// Noiseless exact-readout configs sample the ensemble as statevectors
/// and record boundary pairs; anything else delegates to the full
/// density-matrix characterization of the segment.
///
/// # Panics
///
/// Same conditions as [`crate::characterize`] on the density path
/// (noisy registers wider than 12 qubits, zero samples).
pub fn characterize_segment(
    segment: &Circuit,
    config: &CharacterizationConfig,
    seg_seed: u64,
) -> SegmentArtifact {
    let n = segment.n_qubits();
    if pure_mode(config) {
        let mut rng = StdRng::seed_from_u64(seg_seed);
        let master = morph_parallel::derive_master(&mut rng);
        let mut ledger = CostLedger::new();
        let mut inputs = Vec::with_capacity(config.n_samples);
        let mut outputs = Vec::with_capacity(config.n_samples);
        for i in 0..config.n_samples {
            // Mirrors `InputEnsemble::generate`'s preparation circuits
            // without materializing the 2^n x 2^n density matrices the
            // `InputState` form carries.
            let prep = match config.ensemble {
                InputEnsemble::Basis => basis_prep(n, i % (1usize << n.min(30))),
                InputEnsemble::PauliProduct => pauli_product_prep(n, i),
                InputEnsemble::Clifford => {
                    let mut child = morph_parallel::child_rng(master, i as u64);
                    clifford_prep(n, i % (1usize << n.min(30)), &mut child)
                }
            };
            let mut psi = StateVector::zero_state(n);
            apply_unitary(&prep, &mut psi);
            inputs.push(psi.clone());
            apply_unitary(segment, &mut psi);
            outputs.push(psi);
            ledger.executions += 1;
            ledger.quantum_ops += (prep.op_cost() + segment.op_cost()) as u64;
        }
        SegmentArtifact {
            stage: SegmentStage::Pure { inputs, outputs },
            ledger,
            backend: BackendChoice::Dense,
            fast_path: FastPathStats::default(),
        }
    } else {
        let all: Vec<usize> = (0..n).collect();
        let mut seg_circ = segment.clone();
        seg_circ.tracepoint(0, &all);
        let seg_config = CharacterizationConfig {
            input_qubits: all,
            ..config.clone()
        };
        let mut seg_rng = StdRng::seed_from_u64(seg_seed);
        let ch = crate::characterize(&seg_circ, &seg_config, &mut seg_rng);
        SegmentArtifact {
            stage: SegmentStage::Density(ch.approximation(TracepointId(0))),
            ledger: ch.ledger,
            backend: ch.backend,
            fast_path: ch.fast_path,
        }
    }
}

/// The density-matrix stage map of a stored segment: pure boundary pairs
/// are lifted to rank-one densities, density stages are used as-is.
///
/// # Errors
///
/// The [`SolveError`] if the boundary samples cannot be fitted (e.g.
/// zero samples survived decoding).
pub fn stage_function(stage: &SegmentStage) -> Result<ApproximationFunction, SolveError> {
    match stage {
        SegmentStage::Pure { inputs, outputs } => {
            let ins: Vec<CMatrix> = inputs
                .iter()
                .map(|v| CMatrix::outer(v.amplitudes(), v.amplitudes()))
                .collect();
            let outs: Vec<CMatrix> = outputs
                .iter()
                .map(|v| CMatrix::outer(v.amplitudes(), v.amplitudes()))
                .collect();
            ApproximationFunction::new(ins, outs)
        }
        SegmentStage::Density(f) => Ok(f.clone()),
    }
}

fn encode_segment_artifact(a: &SegmentArtifact) -> Value {
    let mut m = match &a.stage {
        SegmentStage::Pure { inputs, outputs } => {
            let mut m = artifact_envelope("segment-pure");
            m.insert("inputs".to_string(), inputs.to_value());
            m.insert("outputs".to_string(), outputs.to_value());
            m
        }
        SegmentStage::Density(f) => {
            let mut m = artifact_envelope("segment-density");
            m.insert("stage".to_string(), f.to_value());
            m
        }
    };
    m.insert("ledger".to_string(), a.ledger.to_value());
    m.insert("backend".to_string(), Value::Str(a.backend.tag()));
    m.insert("fast_path".to_string(), encode_fast_path(&a.fast_path));
    Value::Object(m)
}

fn decode_segment_artifact(value: &Value) -> Result<SegmentArtifact, FromValueError> {
    let kind = value
        .require("kind")?
        .as_str()
        .ok_or_else(|| FromValueError::new("artifact kind must be a string"))?
        .to_string();
    // The kind is dispatched below; the envelope check still validates
    // the artifact version.
    check_artifact_envelope(value, &kind)?;
    let stage = match kind.as_str() {
        "segment-pure" => SegmentStage::Pure {
            inputs: Vec::from_value(value.require("inputs")?)?,
            outputs: Vec::from_value(value.require("outputs")?)?,
        },
        "segment-density" => {
            SegmentStage::Density(ApproximationFunction::from_value(value.require("stage")?)?)
        }
        other => {
            return Err(FromValueError::new(format!(
                "unknown segment artifact kind {other:?}"
            )))
        }
    };
    Ok(SegmentArtifact {
        stage,
        ledger: CostLedger::from_value(value.require("ledger")?)?,
        backend: decode_backend(value)?,
        fast_path: decode_fast_path(value.require("fast_path")?)?,
    })
}

/// Decoded artifacts kept per cache (FIFO-bounded). Decoding a wide
/// segment's statevector pairs out of the store's [`Value`] form costs
/// more than the hash-and-lookup around it, so revision loops that hit
/// the same segments every pass keep the decoded form hot.
const DECODED_CAP: usize = 64;

/// A per-segment artifact cache over [`MorphStore`], plus the previous
/// revision's segment-fingerprint list for prefix/suffix diff reporting.
///
/// Hits are served from a bounded decoded-artifact tier when possible
/// (64 entries, FIFO; filled by earlier `get`/`put` calls in this
/// process), skipping the store's [`Value`] round-trip; the store below
/// remains the source of truth and the only persistent tier.
#[derive(Debug)]
pub struct SegmentedCache {
    store: MorphStore,
    last_plan: Option<Vec<Fingerprint>>,
    decoded: BTreeMap<Fingerprint, SegmentArtifact>,
    decoded_order: VecDeque<Fingerprint>,
}

impl SegmentedCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory() -> Self {
        SegmentedCache {
            store: MorphStore::in_memory(),
            last_plan: None,
            decoded: BTreeMap::new(),
            decoded_order: VecDeque::new(),
        }
    }

    /// A persistent cache rooted at `dir` (created if absent). Sharing a
    /// directory with a [`crate::CharacterizationCache`] is safe — the
    /// two fingerprint domains cannot collide.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(SegmentedCache {
            store: MorphStore::open(dir.as_ref().to_path_buf())?,
            last_plan: None,
            decoded: BTreeMap::new(),
            decoded_order: VecDeque::new(),
        })
    }

    /// Hit/miss/corruption counters.
    pub fn stats(&self) -> &StoreStats {
        self.store.stats()
    }

    /// Looks up a segment artifact. Decode failures (version or kind
    /// mismatch, damaged payload) behave as misses.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<SegmentArtifact> {
        if let Some(artifact) = self.decoded.get(fp) {
            if morph_trace::enabled() {
                morph_trace::counter(&format!("store/{SEGMENT_DOMAIN}/decoded_hit"), 1);
            }
            return Some(artifact.clone());
        }
        let before = *self.store.stats();
        let result = self
            .store
            .get(fp)
            .and_then(|v| decode_segment_artifact(&v).ok());
        if morph_trace::enabled() {
            let after = *self.store.stats();
            record_store_delta(SEGMENT_DOMAIN, &before, &after);
            if after.hits() > before.hits() && result.is_none() {
                morph_trace::counter(&format!("store/{SEGMENT_DOMAIN}/decode_miss"), 1);
            }
        }
        if let Some(artifact) = &result {
            self.memoize(*fp, artifact.clone());
        }
        result
    }

    /// Inserts into the decoded tier, evicting oldest-first past
    /// [`DECODED_CAP`].
    fn memoize(&mut self, fp: Fingerprint, artifact: SegmentArtifact) {
        if self.decoded.insert(fp, artifact).is_none() {
            self.decoded_order.push_back(fp);
            if self.decoded_order.len() > DECODED_CAP {
                if let Some(oldest) = self.decoded_order.pop_front() {
                    self.decoded.remove(&oldest);
                }
            }
        }
    }

    /// Stores a segment artifact under its fingerprint. I/O failures are
    /// reported but leave the in-memory tier populated.
    pub fn put(&mut self, fp: Fingerprint, artifact: &SegmentArtifact) -> io::Result<()> {
        self.memoize(fp, artifact.clone());
        let cost = artifact.ledger.quantum_ops.max(1);
        let result = self.store.put(fp, encode_segment_artifact(artifact), cost);
        if morph_trace::enabled() {
            morph_trace::counter(&format!("store/{SEGMENT_DOMAIN}/write"), 1);
        }
        result
    }

    /// Direct access to the underlying store.
    pub fn store(&self) -> &MorphStore {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut MorphStore {
        &mut self.store
    }
}

/// Per-revision segment reuse accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segments in this revision's plan.
    pub total: u64,
    /// Positions served from the cache (or deduplicated within the run).
    pub hits: u64,
    /// Unique segments characterized from scratch.
    pub misses: u64,
    /// Leading segments identical to the previous revision in this
    /// cache (longest common prefix of the fingerprint lists).
    pub reused_prefix: u64,
    /// Trailing segments identical to the previous revision (longest
    /// common suffix, disjoint from the prefix).
    pub reused_suffix: u64,
}

/// The result of an incremental characterization: the full
/// [`Characterization`] (bit-identical between cold and warm runs), the
/// composed per-segment chain, and the reuse report.
#[derive(Debug, Clone)]
pub struct IncrementalCharacterization {
    /// The synthesized whole-program characterization, consumable by
    /// validation exactly like [`crate::characterize`]'s output.
    pub characterization: Characterization,
    /// The per-segment stage chain.
    pub chain: ChainedApproximation,
    /// Per-segment hit/miss and prefix/suffix reuse.
    pub segments: SegmentReport,
}

/// Incremental [`crate::characterize`]: segments the program, reuses
/// every cached segment artifact, characterizes only the deltas, and
/// rebuilds the full characterization by composition.
///
/// RNG discipline matches [`crate::characterize_cached`]: exactly one
/// `u64` is drawn from `rng`, so hit and miss paths advance the caller's
/// RNG identically and a warm run is bit-identical to a cold run.
///
/// # Errors
///
/// See [`SegmentError`].
///
/// # Panics
///
/// Same input-qubit/sample-count conditions as [`crate::characterize`].
pub fn try_characterize_incremental(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    seg: &SegmentedConfig,
    rng: &mut StdRng,
    cache: &mut SegmentedCache,
) -> Result<IncrementalCharacterization, SegmentError> {
    let master_seed: u64 = rng.gen();
    incremental_for_seed(circuit, config, seg, master_seed, cache)
}

/// Panicking convenience wrapper around [`try_characterize_incremental`].
///
/// # Panics
///
/// On any [`SegmentError`].
pub fn characterize_incremental(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    seg: &SegmentedConfig,
    rng: &mut StdRng,
    cache: &mut SegmentedCache,
) -> IncrementalCharacterization {
    try_characterize_incremental(circuit, config, seg, rng, cache).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_characterize_incremental`] with an explicit master seed (the
/// deterministic entry point used by the serve batch mode).
///
/// # Errors
///
/// See [`SegmentError`].
pub fn incremental_for_seed(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    seg: &SegmentedConfig,
    master_seed: u64,
    cache: &mut SegmentedCache,
) -> Result<IncrementalCharacterization, SegmentError> {
    let plan = segment_plan(circuit, seg)?;
    if plan.tracepoints.is_empty() {
        return Err(SegmentError::NoTracepoints);
    }
    let n = plan.n_qubits;
    let n_in = config.input_qubits.len();
    assert!(
        n_in > 0,
        "characterization requires at least one input qubit"
    );
    for &q in &config.input_qubits {
        assert!(q < n, "input qubit {q} out of range for {n} qubits");
    }

    // Fingerprint every segment, then fetch-or-characterize each unique
    // fingerprint once. A position is a hit when its artifact came from
    // the cache or from an earlier identical segment in the same run.
    let fps: Vec<Fingerprint> = plan
        .segments
        .iter()
        .map(|s| segment_fingerprint(s, config, master_seed))
        .collect();
    let mut artifacts: BTreeMap<Fingerprint, SegmentArtifact> = BTreeMap::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (segment, fp) in plan.segments.iter().zip(&fps) {
        if artifacts.contains_key(fp) {
            hits += 1;
            continue;
        }
        if let Some(artifact) = cache.get(fp) {
            hits += 1;
            artifacts.insert(*fp, artifact);
            continue;
        }
        let artifact = characterize_segment(segment, config, segment_seed(fp));
        misses += 1;
        // Persistence is best-effort, as in `characterize_cached`.
        let _ = cache.put(*fp, &artifact);
        artifacts.insert(*fp, artifact);
    }
    morph_trace::counter("incremental/segments", fps.len() as u64);
    if hits > 0 {
        morph_trace::counter("incremental/segment_hit", hits);
    }
    if misses > 0 {
        morph_trace::counter("incremental/segment_miss", misses);
    }

    // Positional diff against the previous revision seen by this cache:
    // longest common prefix, then the longest common suffix over the
    // remainder (clamped so the two never overlap).
    let (reused_prefix, reused_suffix) = match &cache.last_plan {
        Some(prev) => {
            let lcp = prev.iter().zip(&fps).take_while(|(a, b)| a == b).count();
            let max_suffix = prev.len().min(fps.len()) - lcp;
            let suffix = prev
                .iter()
                .rev()
                .zip(fps.iter().rev())
                .take_while(|(a, b)| a == b)
                .count()
                .min(max_suffix);
            (lcp as u64, suffix as u64)
        }
        None => (0, 0),
    };
    cache.last_plan = Some(fps.clone());

    // Compose: per-position stage functions (duplicates share their
    // artifact but get their own fitted stage), merged cost metadata.
    let mut stage_fns = Vec::with_capacity(fps.len());
    let mut ledger = CostLedger::new();
    let mut fast_path = FastPathStats::default();
    let mut backend = None;
    for fp in &fps {
        let artifact = &artifacts[fp];
        stage_fns.push(stage_function(&artifact.stage).map_err(SegmentError::Compose)?);
        ledger.merge(&artifact.ledger);
        fast_path.merge(&artifact.fast_path);
        if backend.is_none() {
            backend = Some(artifact.backend);
        }
    }

    // Synthesize the whole-program characterization: sample the global
    // input ensemble from the master seed, walk each input's density
    // matrix through the stages, and record every tracepoint's partial
    // trace at its boundary.
    let mut input_rng = StdRng::seed_from_u64(master_seed);
    let inputs = config
        .ensemble
        .generate(n_in, config.n_samples, &mut input_rng);
    let noiseless = config.noise.is_noiseless();
    let init_rho = |input: &InputState| -> CMatrix {
        if noiseless {
            let mut sub = StateVector::zero_state(n_in);
            apply_unitary(&input.prep, &mut sub);
            StateVector::embed(&sub, &config.input_qubits, n).density_matrix()
        } else {
            let prep = input.prep.remap_qubits(&config.input_qubits, n);
            let mut rho = DensityMatrix::zero_state(n);
            for inst in prep.instructions() {
                match inst {
                    Instruction::Gate(g) => {
                        rho.apply_gate(g);
                        config.noise.apply_to_density(&mut rho, g);
                    }
                    Instruction::Barrier => {}
                    other => panic!("input preparation must be unitary, got {other:?}"),
                }
            }
            rho.into_matrix()
        }
    };
    let mut traces: BTreeMap<TracepointId, Vec<CMatrix>> = plan
        .tracepoints
        .iter()
        .map(|(id, _, _)| (*id, Vec::new()))
        .collect();
    for input in &inputs {
        let mut rho = init_rho(input);
        for boundary in 0..=stage_fns.len() {
            for (id, qubits, at) in &plan.tracepoints {
                if *at == boundary {
                    let dm = DensityMatrix::from_matrix(rho.clone());
                    traces
                        .get_mut(id)
                        .expect("trace bucket exists for every planned tracepoint")
                        .push(dm.partial_trace(qubits));
                }
            }
            if boundary < stage_fns.len() {
                rho = stage_fns[boundary]
                    .predict(&rho)
                    .map_err(SegmentError::Compose)?;
            }
        }
    }

    let chain = ChainedApproximation::new(stage_fns).map_err(SegmentError::Compose)?;
    let characterization = Characterization {
        inputs,
        traces,
        ledger,
        backend: backend.expect("plan has at least one segment"),
        fast_path,
    };
    Ok(IncrementalCharacterization {
        characterization,
        chain,
        segments: SegmentReport {
            total: fps.len() as u64,
            hits,
            misses,
            reused_prefix,
            reused_suffix,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_linalg::hs_accuracy;
    use morph_qsim::NoiseModel;

    fn traced_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).ry(1, 0.7);
        c.tracepoint(1, &[0, 1]);
        c.cz(0, 1).h(1).cx(1, 0);
        c.tracepoint(2, &[0]);
        c
    }

    fn exact_config() -> CharacterizationConfig {
        // PauliProduct with 16 samples spans the full 2-qubit operator
        // space, so every stage fit is exact.
        CharacterizationConfig {
            ensemble: InputEnsemble::PauliProduct,
            ..CharacterizationConfig::exact(vec![0, 1], 16)
        }
    }

    #[test]
    fn cuts_depend_only_on_the_gate_itself() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let base = segment_plan(&traced_circuit(), &seg).unwrap();
        // Re-planning the identical circuit reproduces the identical
        // segmentation.
        let again = segment_plan(&traced_circuit(), &seg).unwrap();
        assert_eq!(base.segments.len(), again.segments.len());
        for (a, b) in base.segments.iter().zip(&again.segments) {
            let (mut ab, mut bb) = (Vec::new(), Vec::new());
            a.canonical_bytes(&mut ab);
            b.canonical_bytes(&mut bb);
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn single_gate_insert_changes_at_most_two_segment_fingerprints() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let base = segment_plan(&traced_circuit(), &seg).unwrap();
        let base_fps: Vec<Fingerprint> = base
            .segments
            .iter()
            .map(|s| segment_fingerprint(s, &config, 7))
            .collect();
        // Insert one gate at every possible instruction position.
        let original = traced_circuit();
        for pos in 0..=original.instructions().len() {
            let mut edited = original.clone();
            let mut gate = Circuit::new(2);
            gate.rz(0, 0.3);
            edited.insert(pos, gate.instructions()[0].clone());
            let plan = segment_plan(&edited, &seg).unwrap();
            let fps: Vec<Fingerprint> = plan
                .segments
                .iter()
                .map(|s| segment_fingerprint(s, &config, 7))
                .collect();
            let base_set: std::collections::BTreeSet<_> = base_fps.iter().collect();
            let fresh = fps.iter().filter(|fp| !base_set.contains(fp)).count();
            assert!(
                fresh <= 2,
                "insert at {pos} produced {fresh} fresh segments (want <= 2)"
            );
        }
    }

    #[test]
    fn segment_artifact_round_trips_through_encoding() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let plan = segment_plan(&traced_circuit(), &seg).unwrap();
        let artifact = characterize_segment(&plan.segments[0], &config, 99);
        let decoded = decode_segment_artifact(&encode_segment_artifact(&artifact)).unwrap();
        assert_eq!(decoded.ledger, artifact.ledger);
        match (&artifact.stage, &decoded.stage) {
            (
                SegmentStage::Pure { inputs, outputs },
                SegmentStage::Pure {
                    inputs: di,
                    outputs: do_,
                },
            ) => {
                assert_eq!(inputs, di);
                assert_eq!(outputs, do_);
            }
            other => panic!("stage flavor changed in round trip: {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_degrades_to_miss() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let plan = segment_plan(&traced_circuit(), &seg).unwrap();
        let artifact = characterize_segment(&plan.segments[0], &config, 1);
        let mut value = encode_segment_artifact(&artifact);
        if let Value::Object(m) = &mut value {
            m.insert("artifact_version".to_string(), Value::UInt(999));
        }
        assert!(decode_segment_artifact(&value).is_err());
    }

    fn assert_char_identical(a: &Characterization, b: &Characterization) {
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.inputs.len(), b.inputs.len());
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.prep, y.prep);
            assert_eq!(x.state, y.state);
        }
        assert_eq!(
            a.traces.keys().collect::<Vec<_>>(),
            b.traces.keys().collect::<Vec<_>>()
        );
        for (id, states) in &a.traces {
            for (x, y) in states.iter().zip(&b.traces[id]) {
                assert_eq!(x, y, "trace {id} differs");
            }
        }
    }

    #[test]
    fn warm_run_is_bit_identical_and_all_hits() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let circuit = traced_circuit();
        let mut cache = SegmentedCache::in_memory();

        let mut rng_cold = StdRng::seed_from_u64(5);
        let cold = try_characterize_incremental(&circuit, &config, &seg, &mut rng_cold, &mut cache)
            .unwrap();
        assert_eq!(cold.segments.hits, 0);
        assert!(cold.segments.misses >= 1);

        let mut rng_warm = StdRng::seed_from_u64(5);
        let warm = try_characterize_incremental(&circuit, &config, &seg, &mut rng_warm, &mut cache)
            .unwrap();
        assert_eq!(warm.segments.misses, 0);
        assert_eq!(warm.segments.hits, warm.segments.total);
        assert_eq!(warm.segments.reused_prefix, warm.segments.total);
        assert_char_identical(&cold.characterization, &warm.characterization);
        // Both paths drew exactly one u64 from the caller's stream.
        assert_eq!(rng_cold.gen::<u64>(), rng_warm.gen::<u64>());
    }

    #[test]
    fn one_gate_edit_recomputes_at_most_two_segments() {
        // A deeper program so the plan has 3+ segments.
        let mut circuit = Circuit::new(2);
        for i in 0..12 {
            circuit.h(0).cx(0, 1).rz(1, 0.1 * (i as f64 + 1.0));
        }
        circuit.tracepoint(1, &[0, 1]);
        let seg = SegmentedConfig::new().segment_gates(3);
        let config = exact_config();
        let mut cache = SegmentedCache::in_memory();

        let mut rng = StdRng::seed_from_u64(9);
        let cold =
            try_characterize_incremental(&circuit, &config, &seg, &mut rng, &mut cache).unwrap();
        assert!(
            cold.segments.total >= 3,
            "test needs a 3+-segment plan, got {}",
            cold.segments.total
        );

        // Mutate one mid-circuit gate.
        let mut edited = circuit.clone();
        let pos = edited
            .instructions()
            .iter()
            .position(|i| matches!(i, Instruction::Gate(morph_qsim::Gate::RZ(_, _))))
            .unwrap();
        edited.remove(pos);
        let mut gate = Circuit::new(2);
        gate.rz(1, 2.222);
        edited.insert(pos, gate.instructions()[0].clone());

        let mut rng = StdRng::seed_from_u64(9);
        let warm =
            try_characterize_incremental(&edited, &config, &seg, &mut rng, &mut cache).unwrap();
        assert!(
            warm.segments.misses <= 2,
            "one-gate mutate recomputed {} segments",
            warm.segments.misses
        );
        assert!(warm.segments.hits >= warm.segments.total - 2);
        assert!(
            warm.segments.reused_prefix + warm.segments.reused_suffix
                >= warm.segments.total.saturating_sub(2)
        );
    }

    #[test]
    fn incremental_traces_match_direct_simulation() {
        // Noiseless exact configs make every stage exact on the sampled
        // span, so synthesized traces must match a direct statevector
        // simulation of each input.
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let circuit = traced_circuit();
        let mut cache = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(3);
        let inc =
            try_characterize_incremental(&circuit, &config, &seg, &mut rng, &mut cache).unwrap();

        for (idx, input) in inc.characterization.inputs.iter().enumerate() {
            let mut psi = StateVector::zero_state(2);
            apply_unitary(&input.prep, &mut psi);
            for inst in circuit.instructions() {
                if let Instruction::Tracepoint { id, qubits } = inst {
                    let expected = psi.reduced_density_matrix(qubits);
                    let got = &inc.characterization.traces[id][idx];
                    assert!(
                        hs_accuracy(got, &expected) > 0.999,
                        "trace {id} diverged for input {idx}"
                    );
                } else if let Instruction::Gate(g) = inst {
                    g.apply(&mut psi);
                }
            }
        }
    }

    #[test]
    fn noisy_configs_take_the_density_path() {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = CharacterizationConfig {
            noise: NoiseModel::ibm_cairo(),
            ..CharacterizationConfig::exact(vec![0, 1], 8)
        };
        let circuit = traced_circuit();
        let mut cache = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(1);
        let inc =
            try_characterize_incremental(&circuit, &config, &seg, &mut rng, &mut cache).unwrap();
        assert!(inc.segments.misses >= 1);
        assert!(!inc.characterization.traces[&TracepointId(1)].is_empty());
    }

    #[test]
    fn structured_errors_replace_panics() {
        let seg = SegmentedConfig::new();
        let config = exact_config();
        let mut cache = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(0);

        let mut measured = traced_circuit();
        measured.measure(0, 0);
        assert!(matches!(
            try_characterize_incremental(&measured, &config, &seg, &mut rng, &mut cache),
            Err(SegmentError::NotUnitary)
        ));

        let mut gateless = Circuit::new(1);
        gateless.tracepoint(1, &[0]);
        assert!(matches!(
            try_characterize_incremental(&gateless, &config, &seg, &mut rng, &mut cache),
            Err(SegmentError::NoGates)
        ));

        let mut untraced = Circuit::new(1);
        untraced.h(0);
        assert!(matches!(
            try_characterize_incremental(&untraced, &config, &seg, &mut rng, &mut cache),
            Err(SegmentError::NoTracepoints)
        ));

        let zero = SegmentedConfig::new().segment_gates(0);
        assert!(matches!(
            try_characterize_incremental(&traced_circuit(), &config, &zero, &mut rng, &mut cache),
            Err(SegmentError::ZeroSegmentGates)
        ));
    }
}
