//! Segmented characterization: the Section 9.2 noise optimization as a
//! library operation.
//!
//! Splits a program into contiguous gate segments at (virtual) intermediate
//! tracepoints, characterizes each segment independently under the
//! configured noise, and returns the composed [`ChainedApproximation`].
//! Combined with [`Mitigation`](crate::Mitigation) between stages, this is
//! what recovers approximation accuracy on noisy hardware (Fig 14).
//!
//! This is the fixed-count, uncached form (exactly `n_segments` chunks of
//! equal size). The revision-loop surface — content-defined segmentation,
//! per-segment cache artifacts, and structural diffing — lives in
//! [`crate::incremental`].

use morph_qprog::{Circuit, Instruction, TracepointId};
use rand::rngs::StdRng;

use crate::approx::{ApproximationFunction, ChainedApproximation};
use crate::characterize::{characterize, CharacterizationConfig};
use crate::incremental::SegmentError;
use morph_tomography::CostLedger;

/// Output of a segmented characterization.
#[derive(Debug, Clone)]
pub struct SegmentedCharacterization {
    /// The composed input→output approximation.
    pub chain: ChainedApproximation,
    /// Total execution costs across all segment characterizations.
    pub ledger: CostLedger,
}

/// Splits `circuit`'s gates into `n_segments` contiguous chunks (i.e.
/// `n_segments − 1` intermediate tracepoints) and characterizes each chunk
/// over the *full register* with `config`'s ensemble/readout/noise.
///
/// The per-segment characterization samples fresh inputs at the segment
/// boundary — the hardware procedure the paper describes, where each
/// relation `ρ_{T_{i+1}} = f_i(ρ_{T_i})` is measured directly rather than
/// through the preceding noisy prefix.
///
/// # Errors
///
/// [`SegmentError::ZeroSegments`] for `n_segments == 0`,
/// [`SegmentError::NotUnitary`] for programs with measurement/feedback,
/// [`SegmentError::NoGates`] for gate-free programs,
/// [`SegmentError::TooManySegments`] when `n_segments` exceeds the gate
/// count, and [`SegmentError::Compose`] if the stages do not chain.
///
/// # Panics
///
/// Panics if the register is too large for the configured (noisy)
/// execution backend, as in [`characterize`].
pub fn try_characterize_segmented(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    n_segments: usize,
    rng: &mut StdRng,
) -> Result<SegmentedCharacterization, SegmentError> {
    if n_segments == 0 {
        return Err(SegmentError::ZeroSegments);
    }
    if circuit.has_nonunitary() {
        return Err(SegmentError::NotUnitary);
    }
    let n = circuit.n_qubits();
    let gates: Vec<Instruction> = circuit
        .instructions()
        .iter()
        .filter(|i| matches!(i, Instruction::Gate(_)))
        .cloned()
        .collect();
    if gates.is_empty() {
        return Err(SegmentError::NoGates);
    }
    if n_segments > gates.len() {
        return Err(SegmentError::TooManySegments {
            requested: n_segments,
            gates: gates.len(),
        });
    }
    let per = gates.len().div_ceil(n_segments);

    let mut stages: Vec<ApproximationFunction> = Vec::new();
    let mut ledger = CostLedger::new();
    for chunk in gates.chunks(per) {
        let mut segment = Circuit::new(n);
        for inst in chunk {
            segment.push(inst.clone());
        }
        segment.tracepoint(0, &(0..n).collect::<Vec<_>>());
        let seg_config = CharacterizationConfig {
            input_qubits: (0..n).collect(),
            ..config.clone()
        };
        let ch = characterize(&segment, &seg_config, rng);
        ledger.merge(&ch.ledger);
        stages.push(ch.approximation(TracepointId(0)));
    }
    let chain = ChainedApproximation::new(stages).map_err(SegmentError::Compose)?;
    Ok(SegmentedCharacterization { chain, ledger })
}

/// Panicking forwarder kept for source compatibility.
///
/// # Panics
///
/// On any [`SegmentError`] (the conditions the original version asserted).
#[deprecated(note = "use `try_characterize_segmented`, which reports structured `SegmentError`s")]
pub fn characterize_segmented(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    n_segments: usize,
    rng: &mut StdRng,
) -> SegmentedCharacterization {
    try_characterize_segmented(circuit, config, n_segments, rng).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::approx::Mitigation;
    use morph_clifford::InputEnsemble;
    use morph_linalg::hs_accuracy;
    use morph_qprog::Executor;
    use morph_qsim::{NoiseModel, StateVector};
    use rand::SeedableRng;

    fn test_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).ry(1, 0.7).cz(0, 1).h(1).cx(1, 0);
        c
    }

    fn full_span_config(noise: NoiseModel) -> CharacterizationConfig {
        CharacterizationConfig {
            n_samples: 16,
            ensemble: InputEnsemble::PauliProduct,
            noise,
            ..CharacterizationConfig::exact(vec![0, 1], 16)
        }
    }

    fn ideal_output(
        circuit: &Circuit,
        probe: &morph_clifford::InputState,
    ) -> morph_linalg::CMatrix {
        let mut full = Circuit::new(2);
        full.extend_from(&probe.prep);
        full.extend_from(circuit);
        full.tracepoint(9, &[0, 1]);
        Executor::default()
            .run_expected(&full, &StateVector::zero_state(2))
            .state(TracepointId(9))
            .clone()
    }

    #[test]
    fn noiseless_segmentation_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let circuit = test_circuit();
        for k in [1usize, 2, 3] {
            let seg = characterize_segmented(
                &circuit,
                &full_span_config(NoiseModel::noiseless()),
                k,
                &mut rng,
            );
            assert_eq!(seg.chain.len(), k.min(circuit.gate_count()));
            let probe = InputEnsemble::Clifford.generate(2, 1, &mut rng).remove(0);
            let predicted = seg.chain.predict(&probe.rho).unwrap();
            let truth = ideal_output(&circuit, &probe);
            assert!(
                hs_accuracy(&predicted, &truth) > 0.999,
                "k={k}: exact span must predict exactly"
            );
        }
    }

    #[test]
    fn noisy_segmentation_with_purification_beats_single_segment() {
        let mut rng = StdRng::seed_from_u64(1);
        let circuit = test_circuit();
        let noise = NoiseModel::ibm_cairo();
        let accuracy = |k: usize, rng: &mut StdRng| -> f64 {
            let seg = characterize_segmented(&circuit, &full_span_config(noise), k, rng);
            let probes = InputEnsemble::Clifford.generate(2, 6, rng);
            probes
                .iter()
                .map(|p| {
                    let predicted = seg
                        .chain
                        .predict_with_mitigation(&p.rho, Mitigation::Purify)
                        .unwrap();
                    hs_accuracy(&predicted, &ideal_output(&circuit, p))
                })
                .sum::<f64>()
                / 6.0
        };
        let single = accuracy(1, &mut rng);
        let segmented = accuracy(3, &mut rng);
        assert!(
            segmented >= single - 0.02,
            "segmentation must not hurt: {segmented} vs {single}"
        );
    }

    #[test]
    fn ledger_accumulates_across_segments() {
        let mut rng = StdRng::seed_from_u64(2);
        let circuit = test_circuit();
        let one = characterize_segmented(
            &circuit,
            &full_span_config(NoiseModel::noiseless()),
            1,
            &mut rng,
        );
        let three = characterize_segmented(
            &circuit,
            &full_span_config(NoiseModel::noiseless()),
            3,
            &mut rng,
        );
        assert!(three.ledger.executions > one.ledger.executions);
    }

    #[test]
    #[should_panic(expected = "measurement-free")]
    fn feedback_programs_rejected() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = characterize_segmented(&c, &full_span_config(NoiseModel::noiseless()), 2, &mut rng);
    }

    #[test]
    fn oversized_segment_count_is_an_error_not_a_clamp() {
        let mut rng = StdRng::seed_from_u64(3);
        let circuit = test_circuit();
        let result = try_characterize_segmented(
            &circuit,
            &full_span_config(NoiseModel::noiseless()),
            circuit.gate_count() + 1,
            &mut rng,
        );
        match result {
            Err(SegmentError::TooManySegments { requested, gates }) => {
                assert_eq!(requested, 7);
                assert_eq!(gates, 6);
            }
            other => panic!("expected TooManySegments, got {other:?}"),
        }
        // Zero segments and gate-free programs report structured errors
        // too, instead of the old assert/clamp behavior.
        assert!(matches!(
            try_characterize_segmented(
                &circuit,
                &full_span_config(NoiseModel::noiseless()),
                0,
                &mut rng
            ),
            Err(SegmentError::ZeroSegments)
        ));
        let empty = Circuit::new(1);
        assert!(matches!(
            try_characterize_segmented(
                &empty,
                &full_span_config(NoiseModel::noiseless()),
                1,
                &mut rng
            ),
            Err(SegmentError::NoGates)
        ));
    }
}
