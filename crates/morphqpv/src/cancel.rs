//! Cooperative cancellation for the verification pipeline.
//!
//! Characterization and validation are long-running, CPU-bound stages with
//! no natural preemption point, so services that impose deadlines (e.g.
//! `morph-serve`) need the pipeline to *check in* between units of work. A
//! [`CancelToken`] carries an optional wall-clock deadline plus a manual
//! kill switch; the cancellable entry points
//! ([`crate::try_characterize`][crate::try_characterize],
//! [`Verifier::try_validate_with`][crate::Verifier::try_validate_with])
//! call [`CancelToken::check`] between pipeline stages — before input
//! generation, at the start of each sampling task, and between assertions —
//! and bail out with [`Cancelled`] instead of finishing doomed work.
//!
//! Cancellation never changes results: a run that completes did exactly
//! what an uncancellable run would have done (the checks read an atomic
//! and the clock, never the RNG streams).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a pipeline run was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cancelled {
    /// The token's deadline elapsed.
    DeadlineExceeded,
    /// [`CancelToken::cancel`] was called.
    Requested,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cancelled::DeadlineExceeded => write!(f, "deadline exceeded"),
            Cancelled::Requested => write!(f, "cancellation requested"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// A cloneable cancellation handle: an optional deadline plus a manual
/// flag shared by every clone.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels manually (no deadline).
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token whose [`check`](Self::check) starts failing once `timeout`
    /// has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once the token is cancelled (manually or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.why().is_some()
    }

    /// The pipeline's check-in point: `Ok(())` to keep going, `Err` with
    /// the reason to stop.
    pub fn check(&self) -> Result<(), Cancelled> {
        match self.why() {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    fn why(&self) -> Option<Cancelled> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(Cancelled::Requested);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(Cancelled::DeadlineExceeded),
            _ => None,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checks() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.check(), Ok(()));
    }

    #[test]
    fn manual_cancel_reaches_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert_eq!(clone.check(), Err(Cancelled::Requested));
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(token.check(), Err(Cancelled::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_cancel() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(token.check(), Ok(()));
    }

    #[test]
    fn manual_cancel_wins_over_deadline_reporting() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        token.cancel();
        assert_eq!(token.check(), Err(Cancelled::Requested));
    }
}
