//! The blessed public surface, importable in one line.
//!
//! Everything a typical verification — library call, CLI, or service —
//! needs, re-exported under stable names:
//!
//! ```
//! use morphqpv::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut program = Circuit::new(1);
//! program.tracepoint(1, &[0]);
//! program.x(0);
//! program.tracepoint(2, &[0]);
//!
//! let report = Verifier::new(program)
//!     .samples(4)
//!     .assert_that(
//!         Assertion::new()
//!             .assume(TracepointId(1), StatePredicate::IsPure)
//!             .guarantee_state(TracepointId(2), StatePredicate::IsPure),
//!     )
//!     .run(&mut StdRng::seed_from_u64(0));
//! assert!(report.all_passed());
//! assert_eq!(report.exit_code(), 0);
//! ```
//!
//! Anything *not* re-exported here (solver internals, approximation
//! machinery, pruning strategies) is still reachable through the crate
//! root, but its names are less settled.

pub use crate::assertion::{AssumeGuarantee, StateRef};
pub use crate::cache::{characterize_cached, CharacterizationCache};
pub use crate::cancel::{CancelToken, Cancelled};
pub use crate::characterize::{
    characterize, Characterization, CharacterizationConfig, CharacterizationConfigBuilder,
};
pub use crate::confidence::ConfidenceModel;
pub use crate::counterexample::CounterExample;
pub use crate::error::MorphError;
pub use crate::incremental::{
    characterize_incremental, try_characterize_incremental, IncrementalCharacterization,
    SegmentError, SegmentReport, SegmentedCache, SegmentedConfig,
};
pub use crate::predicate::{RelationPredicate, StatePredicate};
pub use crate::spec::{assertions_from_source, parse_assertion};
pub use crate::validate::{
    SolverKind, ValidationConfig, ValidationError, ValidationOutcome, Verdict,
};
pub use crate::verifier::{verify_source, CacheSummary, RunReport, VerificationReport, Verifier};

pub use morph_clifford::{InputEnsemble, InputState};
pub use morph_qprog::{parse_program, Circuit, Executor, ExecutorBuilder, TracepointId};

/// The paper's Definition 1 assume–guarantee assertion, under the name the
/// rest of the API documentation uses.
pub type Assertion = AssumeGuarantee;
