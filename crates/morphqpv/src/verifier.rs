//! High-level verification front-end: the three-step MorphQPV flow
//! (assert → characterize → validate) behind one builder.

use morph_clifford::{InputEnsemble, InputState};
use morph_qprog::Circuit;
use morph_qsim::NoiseModel;
use morph_store::{Fingerprint, StoreStats};
use morph_tomography::{CostLedger, ReadoutMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::assertion::AssumeGuarantee;
use crate::cache::{characterize_cached, characterize_with_inputs_cached, CharacterizationCache};
use crate::cancel::CancelToken;
use crate::characterize::{
    characterize, characterize_with_inputs, try_characterize, try_characterize_with_inputs,
    Characterization, CharacterizationConfig,
};
use crate::error::MorphError;
use crate::incremental::{try_characterize_incremental, SegmentedCache, SegmentedConfig};
use crate::validate::{
    try_validate_assertion, ValidationConfig, ValidationError, ValidationOutcome, Verdict,
};

/// A complete verification run over one program.
///
/// # Examples
///
/// Verify that a NOT program maps every pure input to its bit-flip:
///
/// ```
/// use morph_qprog::TracepointId;
/// use morphqpv::{RelationPredicate, StatePredicate, Verifier};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut program = morph_qprog::Circuit::new(1);
/// program.tracepoint(1, &[0]);
/// program.x(0);
/// program.tracepoint(2, &[0]);
///
/// let x = morph_qsim::matrices::x();
/// let report = Verifier::new(program)
///     .input_qubits(&[0])
///     .samples(4)
///     .assert_that(
///         morphqpv::AssumeGuarantee::new().guarantee_relation(
///             TracepointId(1),
///             TracepointId(2),
///             RelationPredicate::custom(move |a, b| {
///                 (&x.matmul(a).matmul(&x) - b).frobenius_norm()
///             }),
///         ),
///     )
///     .run(&mut StdRng::seed_from_u64(7));
/// assert!(report.all_passed());
/// ```
#[derive(Debug)]
pub struct Verifier {
    circuit: Circuit,
    assertions: Vec<AssumeGuarantee>,
    characterization_config: CharacterizationConfig,
    validation_config: ValidationConfig,
    explicit_inputs: Option<Vec<InputState>>,
    segmented: Option<SegmentedConfig>,
}

impl Verifier {
    /// Starts a verification of `circuit`. Defaults: all qubits are input
    /// qubits, `2^(N_in+1)` capped at 32 samples, Clifford ensemble, exact
    /// readout, noiseless, QP solver.
    pub fn new(circuit: Circuit) -> Self {
        let n = circuit.n_qubits();
        let input_qubits: Vec<usize> = (0..n).collect();
        let n_samples = CharacterizationConfig::paper_full_budget(n).min(32);
        Verifier {
            circuit,
            assertions: Vec::new(),
            characterization_config: CharacterizationConfig {
                n_samples,
                ensemble: InputEnsemble::Clifford,
                readout: ReadoutMode::Exact,
                input_qubits,
                noise: NoiseModel::noiseless(),
                parallelism: 0,
                sweep: crate::SweepMode::default(),
                backend: morph_qprog::BackendMode::Auto,
            },
            validation_config: ValidationConfig::default(),
            explicit_inputs: None,
            segmented: None,
        }
    }

    /// Restricts the program input to the given qubits (the rest start in
    /// `|0⟩`). Resets the sample budget to `2^(N_in+1)` capped at 64.
    pub fn input_qubits(mut self, qubits: &[usize]) -> Self {
        self.characterization_config.input_qubits = qubits.to_vec();
        self.characterization_config.n_samples =
            CharacterizationConfig::paper_full_budget(qubits.len()).min(64);
        self
    }

    /// Sets the number of sampled inputs (`N_sample`).
    pub fn samples(mut self, n: usize) -> Self {
        self.characterization_config.n_samples = n;
        self
    }

    /// Selects the input ensemble (Fig 15(a) ablation).
    pub fn ensemble(mut self, ensemble: InputEnsemble) -> Self {
        self.characterization_config.ensemble = ensemble;
        self
    }

    /// Selects the tracepoint readout mode (exact / shots / probabilities —
    /// the latter is Strategy-prop).
    pub fn readout(mut self, readout: ReadoutMode) -> Self {
        self.characterization_config.readout = readout;
        self
    }

    /// Applies a hardware noise model to the sampling runs.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.characterization_config.noise = noise;
        self
    }

    /// Selects the simulation backend for the sampling sweep (default:
    /// [`morph_qprog::BackendMode::Auto`]; the `MORPH_BACKEND` environment
    /// variable replaces `Auto` at plan time).
    pub fn backend(mut self, backend: morph_qprog::BackendMode) -> Self {
        self.characterization_config.backend = backend;
        self
    }

    /// Overrides the validation configuration (solver, thresholds).
    pub fn validation(mut self, config: ValidationConfig) -> Self {
        self.validation_config = config;
        self
    }

    /// Supplies explicit input states (Strategy-adapt / Strategy-const)
    /// instead of ensemble sampling.
    pub fn with_inputs(mut self, inputs: Vec<InputState>) -> Self {
        self.explicit_inputs = Some(inputs);
        self
    }

    /// Configures segment-granular incremental characterization for
    /// [`Self::run_incremental`]/[`Self::try_run_incremental`] (the
    /// revision loop: re-verifying an edited program recomputes only the
    /// segments the edit touched).
    pub fn incremental(mut self, config: SegmentedConfig) -> Self {
        self.segmented = Some(config);
        self
    }

    /// Adds an assertion to verify.
    pub fn assert_that(mut self, assertion: AssumeGuarantee) -> Self {
        self.assertions.push(assertion);
        self
    }

    /// The program under verification.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The effective characterization configuration.
    pub fn characterization_config(&self) -> &CharacterizationConfig {
        &self.characterization_config
    }

    /// The segmentation configuration incremental runs will use
    /// ([`SegmentedConfig::default`] unless [`Self::incremental`] was
    /// called).
    pub fn segmented_config(&self) -> SegmentedConfig {
        self.segmented.unwrap_or_default()
    }

    /// The content address of this verifier's characterization for a given
    /// `char_seed` — the key services use to coalesce concurrent identical
    /// jobs (see `morph-serve`). Identical to the fingerprint
    /// [`Self::try_run_with_cache`] computes after drawing `char_seed` from
    /// the caller's RNG.
    pub fn characterization_fingerprint(&self, char_seed: u64) -> Fingerprint {
        match &self.explicit_inputs {
            Some(inputs) => {
                let preps: Vec<&Circuit> = inputs.iter().map(|i| &i.prep).collect();
                crate::cache::characterization_fingerprint_with_inputs(
                    &self.circuit,
                    &self.characterization_config,
                    &preps,
                    char_seed,
                )
            }
            None => crate::cache::characterization_fingerprint(
                &self.circuit,
                &self.characterization_config,
                char_seed,
            ),
        }
    }

    /// Runs the characterization stage alone, seeded with `char_seed` (the
    /// value addressed by [`Self::characterization_fingerprint`]), honoring
    /// cooperative cancellation.
    ///
    /// Services split the pipeline here: one leader characterizes per
    /// fingerprint, then every coalesced job validates the shared artifact
    /// with [`Self::try_validate_with`].
    ///
    /// # Errors
    ///
    /// [`MorphError::Cancelled`] when `cancel` fires mid-sweep.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::characterize`].
    pub fn try_characterize_for_seed(
        &self,
        char_seed: u64,
        cancel: &CancelToken,
    ) -> Result<Characterization, MorphError> {
        let mut run_rng = StdRng::seed_from_u64(char_seed);
        let ch = match &self.explicit_inputs {
            Some(inputs) => try_characterize_with_inputs(
                &self.circuit,
                &self.characterization_config,
                inputs.clone(),
                &mut run_rng,
                cancel,
            )?,
            None => try_characterize(
                &self.circuit,
                &self.characterization_config,
                &mut run_rng,
                cancel,
            )?,
        };
        Ok(ch)
    }

    /// Validates every assertion against an already-computed
    /// `characterization` (own run, cache hit, or a leader's shared
    /// artifact), checking `cancel` between assertions.
    ///
    /// # Errors
    ///
    /// [`MorphError::Validation`] on solver failure,
    /// [`MorphError::Cancelled`] when `cancel` fires between assertions.
    ///
    /// # Panics
    ///
    /// Panics if no assertions were added or an assertion references a
    /// tracepoint absent from `characterization`.
    pub fn try_validate_with(
        &self,
        characterization: Characterization,
        rng: &mut StdRng,
        cache: Option<CacheSummary>,
        cancel: &CancelToken,
    ) -> Result<VerificationReport, MorphError> {
        assert!(!self.assertions.is_empty(), "no assertions to verify");
        let mut outcomes = Vec::with_capacity(self.assertions.len());
        for a in &self.assertions {
            cancel.check()?;
            outcomes.push(try_validate_assertion(
                a,
                &characterization,
                &self.validation_config,
                rng,
            )?);
        }
        let run = RunReport::new(&characterization, &outcomes, cache);
        Ok(VerificationReport {
            characterization,
            outcomes,
            run,
        })
    }

    /// Runs characterization once, then validates every assertion.
    ///
    /// Thin panicking wrapper over [`Self::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if no assertions were added, the program has no tracepoints,
    /// or the validation solver fails structurally
    /// ([`crate::ValidationError`]).
    pub fn run(&self, rng: &mut StdRng) -> VerificationReport {
        self.try_run(rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs characterization once, then validates every assertion,
    /// reporting solver failures as errors.
    ///
    /// # Errors
    ///
    /// [`crate::ValidationError`] when the validation solver cannot produce
    /// an optimum (zero restarts configured, all-NaN objective).
    ///
    /// # Panics
    ///
    /// Panics if no assertions were added or the program has no
    /// tracepoints.
    pub fn try_run(&self, rng: &mut StdRng) -> Result<VerificationReport, ValidationError> {
        assert!(!self.assertions.is_empty(), "no assertions to verify");
        let _trace = morph_trace::span("verify/run");
        let characterization = match &self.explicit_inputs {
            Some(inputs) => characterize_with_inputs(
                &self.circuit,
                &self.characterization_config,
                inputs.clone(),
                rng,
            ),
            None => characterize(&self.circuit, &self.characterization_config, rng),
        };
        self.validate_all(characterization, rng, None)
    }

    /// [`Self::run`] with a characterization artifact cache: the
    /// characterization stage is looked up in (and populated into) `cache`.
    /// On a hit the validation runs against the restored artifact and the
    /// report's ledger is the cost of the *original* characterization — no
    /// new simulator cost is charged.
    ///
    /// Note: `run` and `run_with_cache` consume the caller's RNG stream
    /// differently (`run_with_cache` draws one seed; `run` hands the stream
    /// to characterization), so reports are comparable across repeated
    /// `run_with_cache` calls, not between the two entry points.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_with_cache(
        &self,
        rng: &mut StdRng,
        cache: &mut CharacterizationCache,
    ) -> VerificationReport {
        self.try_run_with_cache(rng, cache)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::try_run`] with a characterization artifact cache; the
    /// report's [`RunReport::cache`] summarizes the hits, misses, and cost
    /// saved by *this* run (a delta, not the cache's lifetime stats).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::try_run`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::try_run`].
    pub fn try_run_with_cache(
        &self,
        rng: &mut StdRng,
        cache: &mut CharacterizationCache,
    ) -> Result<VerificationReport, ValidationError> {
        assert!(!self.assertions.is_empty(), "no assertions to verify");
        let _trace = morph_trace::span("verify/run");
        let stats_before = *cache.stats();
        let characterization = match &self.explicit_inputs {
            Some(inputs) => characterize_with_inputs_cached(
                &self.circuit,
                &self.characterization_config,
                inputs.clone(),
                rng,
                cache,
            ),
            None => characterize_cached(&self.circuit, &self.characterization_config, rng, cache),
        };
        let cache_summary = CacheSummary::delta(&stats_before, cache.stats());
        self.validate_all(characterization, rng, Some(cache_summary))
    }

    /// [`Self::run_with_cache`]'s incremental counterpart: characterizes
    /// per segment against `cache`, reusing every cached segment artifact
    /// (see [`crate::try_characterize_incremental`]), then validates every
    /// assertion. The report's [`CacheSummary`] carries the per-segment
    /// hit/miss counts.
    ///
    /// # Panics
    ///
    /// On any [`MorphError`], and under [`Self::try_run_incremental`]'s
    /// precondition panics.
    pub fn run_incremental(
        &self,
        rng: &mut StdRng,
        cache: &mut SegmentedCache,
    ) -> VerificationReport {
        self.try_run_incremental(rng, cache)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::run_incremental`], reporting failures as errors.
    ///
    /// # Errors
    ///
    /// [`MorphError::Segment`] when the program cannot be segmented (see
    /// [`crate::SegmentError`]), [`MorphError::Validation`] on solver
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics if no assertions were added or explicit inputs were supplied
    /// ([`Self::with_inputs`] and incremental characterization are
    /// mutually exclusive — the ensemble is part of each segment's content
    /// address).
    pub fn try_run_incremental(
        &self,
        rng: &mut StdRng,
        cache: &mut SegmentedCache,
    ) -> Result<VerificationReport, MorphError> {
        assert!(!self.assertions.is_empty(), "no assertions to verify");
        assert!(
            self.explicit_inputs.is_none(),
            "incremental verification samples its own ensemble inputs"
        );
        let _trace = morph_trace::span("verify/run");
        let stats_before = *cache.stats();
        let seg = self.segmented_config();
        let inc = try_characterize_incremental(
            &self.circuit,
            &self.characterization_config,
            &seg,
            rng,
            cache,
        )?;
        let mut summary = CacheSummary::delta(&stats_before, cache.stats());
        summary.segment_hits = inc.segments.hits;
        summary.segment_misses = inc.segments.misses;
        Ok(self.validate_all(inc.characterization, rng, Some(summary))?)
    }

    fn validate_all(
        &self,
        characterization: Characterization,
        rng: &mut StdRng,
        cache: Option<CacheSummary>,
    ) -> Result<VerificationReport, ValidationError> {
        let outcomes: Vec<ValidationOutcome> = self
            .assertions
            .iter()
            .map(|a| try_validate_assertion(a, &characterization, &self.validation_config, rng))
            .collect::<Result<_, _>>()?;
        let run = RunReport::new(&characterization, &outcomes, cache);
        Ok(VerificationReport {
            characterization,
            outcomes,
            run,
        })
    }
}

/// One-call verification of a program written in the surface syntax:
/// parses the circuit (`qreg`/gates/`T <id> q[..]`), extracts the
/// `// assert <spec>` comments, and runs the default pipeline with inputs
/// on the given qubits.
///
/// # Errors
///
/// [`MorphError::Parse`] / [`MorphError::Spec`] when the program or an
/// assertion does not parse.
///
/// # Panics
///
/// Panics if the source contains no assertions or no tracepoints (a
/// verification with nothing to check is a caller bug).
///
/// # Examples
///
/// ```
/// use morphqpv::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let report = verify_source(
///     "qreg q[1];\n\
///      T 1 q[0];\n\
///      h q[0];\n\
///      h q[0];\n\
///      T 2 q[0];\n\
///      // assert assume is_pure(T1) guarantee equal(T1, T2)",
///     &[0],
///     &mut StdRng::seed_from_u64(0),
/// )?;
/// assert!(report.all_passed());
/// # Ok::<(), MorphError>(())
/// ```
pub fn verify_source(
    source: &str,
    input_qubits: &[usize],
    rng: &mut StdRng,
) -> Result<VerificationReport, MorphError> {
    let circuit = morph_qprog::parse_program(source)?;
    let assertions = crate::spec::assertions_from_source(source)?;
    assert!(
        !assertions.is_empty(),
        "source contains no `// assert` specifications"
    );
    let mut verifier = Verifier::new(circuit).input_qubits(input_qubits);
    for a in assertions {
        verifier = verifier.assert_that(a);
    }
    Ok(verifier.run(rng))
}

/// What one verification run cost and how it behaved: the shot budget
/// actually spent, the solver effort across all assertions, and (for
/// cached runs) how the artifact store answered.
///
/// Attached to every [`VerificationReport`] so callers can inspect run
/// behaviour without enabling the [`morph_trace`] recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Circuit executions charged to the simulator.
    pub executions: u64,
    /// Measurement shots charged (0 under exact readout).
    pub shots: u64,
    /// Elementary quantum operations applied.
    pub quantum_ops: u64,
    /// Objective evaluations spent by the validation solver, summed over
    /// assertions.
    pub solver_evaluations: u64,
    /// Solver iterations, summed over assertions.
    pub solver_iterations: u64,
    /// Cache behaviour of this run — `None` for uncached entry points.
    pub cache: Option<CacheSummary>,
    /// The simulation backend the characterization sweep executed on.
    pub backend: morph_backend::BackendChoice,
    /// Sparse fast-path events over the characterization sweep (all
    /// zeros when no sparse register ran).
    pub fast_path: morph_backend::FastPathStats,
}

impl RunReport {
    fn new(
        characterization: &Characterization,
        outcomes: &[ValidationOutcome],
        cache: Option<CacheSummary>,
    ) -> Self {
        RunReport {
            executions: characterization.ledger.executions,
            shots: characterization.ledger.shots,
            quantum_ops: characterization.ledger.quantum_ops,
            solver_evaluations: outcomes.iter().map(|o| o.optimum.evaluations).sum(),
            solver_iterations: outcomes.iter().map(|o| o.optimum.iterations as u64).sum(),
            cache,
            backend: characterization.backend,
            fast_path: characterization.fast_path,
        }
    }
}

/// How the characterization cache answered during one run (the delta of
/// [`StoreStats`] across the run, not the store's lifetime totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSummary {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Disk entries rejected as damaged or version-mismatched.
    pub corrupt_entries: u64,
    /// Artifacts written back.
    pub writes: u64,
    /// Recompute cost (quantum ops) avoided by hits.
    pub cost_saved: u64,
    /// Segment positions served from cache or in-run dedup (incremental
    /// runs only; 0 for whole-run caching).
    pub segment_hits: u64,
    /// Unique segments characterized from scratch (incremental runs
    /// only; 0 for whole-run caching).
    pub segment_misses: u64,
}

impl CacheSummary {
    fn delta(before: &StoreStats, after: &StoreStats) -> Self {
        CacheSummary {
            hits: after.hits() - before.hits(),
            misses: after.misses - before.misses,
            corrupt_entries: after.corrupt_entries - before.corrupt_entries,
            writes: after.writes - before.writes,
            cost_saved: after.cost_saved - before.cost_saved,
            segment_hits: 0,
            segment_misses: 0,
        }
    }
}

/// The result of a full verification run.
#[derive(Debug)]
pub struct VerificationReport {
    /// The shared characterization (sampling results + costs).
    pub characterization: Characterization,
    /// One validation outcome per assertion, in insertion order.
    pub outcomes: Vec<ValidationOutcome>,
    /// Cost and behaviour summary of this run.
    pub run: RunReport,
}

impl VerificationReport {
    /// `true` if every assertion passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.verdict.passed())
    }

    /// The first failing outcome, if any.
    pub fn first_failure(&self) -> Option<&ValidationOutcome> {
        self.outcomes.iter().find(|o| !o.verdict.passed())
    }

    /// Minimum confidence across passed assertions (1.0 when none passed).
    pub fn min_confidence(&self) -> f64 {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.verdict {
                Verdict::Passed { confidence, .. } => Some(*confidence),
                Verdict::Failed { .. } => None,
            })
            .fold(1.0, f64::min)
    }

    /// Total execution costs of the run.
    pub fn ledger(&self) -> &CostLedger {
        &self.characterization.ledger
    }

    /// The process exit code for a *completed* run under the 0/2/1
    /// convention shared by the `verify` CLI and `morph-serve`: `0` when
    /// every assertion passed, `2` when at least one was refuted. Failures
    /// to complete map through [`MorphError::exit_code`] (always `1`).
    pub fn exit_code(&self) -> i32 {
        if self.all_passed() {
            0
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{RelationPredicate, StatePredicate};
    use morph_qprog::TracepointId;
    use rand::SeedableRng;

    fn ghz_with_traces() -> Circuit {
        let mut c = Circuit::new(3);
        c.tracepoint(1, &[0]);
        c.h(0).cx(0, 1).cx(1, 2);
        c.tracepoint(2, &[2]);
        c
    }

    #[test]
    fn verifier_reports_costs_and_confidence() {
        // For input α|0⟩+β|1⟩ on q0, the GHZ chain ends with
        // ⟨Z⟩ on q2 equal to ⟨X⟩ of the input — assert exactly that
        // relation (it holds for every input).
        let x = morph_qsim::matrices::x();
        let z = morph_qsim::matrices::z();
        let report = Verifier::new(ghz_with_traces())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .assert_that(AssumeGuarantee::new().guarantee_relation(
                TracepointId(1),
                TracepointId(2),
                RelationPredicate::custom(move |t1, t2| {
                    (morph_linalg::expectation(&x, t1) - morph_linalg::expectation(&z, t2)).abs()
                        - 1e-6
                }),
            ))
            .run(&mut StdRng::seed_from_u64(0));
        assert!(
            report.all_passed(),
            "{:?}",
            report.first_failure().map(|o| &o.verdict)
        );
        assert!(report.ledger().executions > 0);
        assert!(report.min_confidence() > 0.9);
    }

    #[test]
    fn multiple_assertions_evaluated_in_order() {
        let report = Verifier::new(ghz_with_traces())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .assert_that(
                AssumeGuarantee::new()
                    .assume(crate::StateRef::Input, StatePredicate::IsPure)
                    .guarantee_state(TracepointId(1), StatePredicate::IsPure),
            )
            .assert_that(
                // Deliberately wrong: T2 should equal |1><1| always.
                AssumeGuarantee::new().guarantee_state(
                    TracepointId(2),
                    StatePredicate::equals(CMatrixFixtures::one()),
                ),
            )
            .run(&mut StdRng::seed_from_u64(1));
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.outcomes[0].verdict.passed());
        assert!(!report.outcomes[1].verdict.passed());
        assert!(!report.all_passed());
        assert!(report.first_failure().is_some());
    }

    #[test]
    #[should_panic(expected = "no assertions")]
    fn empty_verifier_rejected() {
        let _ = Verifier::new(ghz_with_traces()).run(&mut StdRng::seed_from_u64(0));
    }

    fn pure_assertion() -> AssumeGuarantee {
        AssumeGuarantee::new()
            .assume(crate::StateRef::Input, StatePredicate::IsPure)
            .guarantee_state(TracepointId(1), StatePredicate::IsPure)
    }

    #[test]
    fn run_report_summarizes_cost_and_solver_effort() {
        let report = Verifier::new(ghz_with_traces())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .assert_that(pure_assertion())
            .run(&mut StdRng::seed_from_u64(0));
        assert_eq!(report.run.executions, report.ledger().executions);
        assert_eq!(report.run.quantum_ops, report.ledger().quantum_ops);
        assert!(report.run.solver_evaluations > 0);
        assert!(report.run.solver_iterations > 0);
        assert!(report.run.cache.is_none(), "uncached run reports no cache");
    }

    #[test]
    fn cached_run_report_tracks_store_deltas() {
        let dir = std::env::temp_dir().join(format!(
            "morphqpv-verifier-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = CharacterizationCache::open(&dir).unwrap();
        let verifier = Verifier::new(ghz_with_traces())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .assert_that(pure_assertion());

        let first = verifier.run_with_cache(&mut StdRng::seed_from_u64(3), &mut cache);
        let cold = first.run.cache.expect("cached run carries a summary");
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, 1);
        assert_eq!(cold.writes, 1);

        let second = verifier.run_with_cache(&mut StdRng::seed_from_u64(3), &mut cache);
        let warm = second.run.cache.expect("cached run carries a summary");
        assert_eq!(warm.hits, 1, "identical run should hit: {warm:?}");
        assert_eq!(warm.misses, 0);
        assert!(warm.cost_saved > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_run_reports_segment_reuse() {
        let mut cache = SegmentedCache::in_memory();
        let verifier = Verifier::new(ghz_with_traces())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .incremental(SegmentedConfig::new().segment_gates(1))
            .assert_that(pure_assertion());

        let cold = verifier.run_incremental(&mut StdRng::seed_from_u64(3), &mut cache);
        assert!(cold.all_passed());
        let cold_cache = cold.run.cache.expect("incremental run carries a summary");
        assert_eq!(cold_cache.segment_hits, 0);
        assert!(cold_cache.segment_misses >= 3, "{cold_cache:?}");

        // Re-verify an edited program: one extra trailing gate. Every
        // original segment must be reused.
        let mut edited = ghz_with_traces();
        edited.z(2);
        let verifier = Verifier::new(edited)
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morph_clifford::InputEnsemble::PauliProduct)
            .incremental(SegmentedConfig::new().segment_gates(1))
            .assert_that(pure_assertion());
        let warm = verifier.run_incremental(&mut StdRng::seed_from_u64(3), &mut cache);
        let warm_cache = warm.run.cache.expect("incremental run carries a summary");
        assert!(warm_cache.segment_hits >= 3, "{warm_cache:?}");
        assert!(warm_cache.segment_misses <= 1, "{warm_cache:?}");
    }

    struct CMatrixFixtures;
    impl CMatrixFixtures {
        fn one() -> morph_linalg::CMatrix {
            morph_linalg::CMatrix::outer(
                &[morph_linalg::C64::ZERO, morph_linalg::C64::ONE],
                &[morph_linalg::C64::ZERO, morph_linalg::C64::ONE],
            )
        }
    }
}
