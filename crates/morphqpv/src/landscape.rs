//! Input-space landscapes.
//!
//! The related-work discussion positions MorphQPV as constructing loss
//! landscapes *in the input space* (where OSCAR does so in parameter
//! space). Because the characterized approximation functions evaluate the
//! guarantee objective for any input without re-execution, sweeping a
//! parametrized family of inputs is essentially free — this module sweeps
//! the single-qubit Bloch sphere `|ψ(θ, φ)⟩ = cos(θ/2)|0⟩ +
//! e^{iφ} sin(θ/2)|1⟩` and reports the objective surface, which is how
//! counter-example basins become visible to a human.

use morph_linalg::{CMatrix, C64};

use crate::assertion::{AssumeGuarantee, Guarantee, StateRef};
use crate::characterize::Characterization;

/// One sample of the objective surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandscapePoint {
    /// Polar angle θ ∈ [0, π].
    pub theta: f64,
    /// Azimuthal angle φ ∈ [0, 2π).
    pub phi: f64,
    /// Guarantee objective at this input (> 0 means violated).
    pub objective: f64,
    /// Whether every assumption holds at this input (within `tol`).
    pub feasible: bool,
}

/// Sweeps the guarantee objective over the Bloch sphere of a single-qubit
/// input space, at `resolution × resolution` grid points.
///
/// # Panics
///
/// Panics if the characterization's input space is not a single qubit,
/// the assertion is incomplete, or `resolution < 2`.
pub fn input_landscape(
    assertion: &AssumeGuarantee,
    characterization: &Characterization,
    resolution: usize,
    feasibility_tol: f64,
) -> Vec<LandscapePoint> {
    assert!(assertion.is_complete(), "assertion has no guarantee clause");
    assert!(resolution >= 2, "need at least a 2x2 grid");
    let approximations = characterization.all_approximations();
    let input_dim = characterization.inputs[0].rho.rows();
    assert_eq!(
        input_dim, 2,
        "landscape sweeps require a single-qubit input space"
    );

    let resolve = |state: StateRef, rho_in: &CMatrix| -> CMatrix {
        match state {
            StateRef::Input => rho_in.clone(),
            StateRef::Tracepoint(id) => approximations[&id]
                .predict(rho_in)
                .expect("input dimension checked above"),
        }
    };

    let mut out = Vec::with_capacity(resolution * resolution);
    for ti in 0..resolution {
        let theta = std::f64::consts::PI * ti as f64 / (resolution - 1) as f64;
        for pi in 0..resolution {
            let phi = 2.0 * std::f64::consts::PI * pi as f64 / resolution as f64;
            let ket = [
                C64::real((theta / 2.0).cos()),
                C64::cis(phi).scale((theta / 2.0).sin()),
            ];
            let rho_in = CMatrix::outer(&ket, &ket);

            let feasible = assertion
                .assumptions()
                .iter()
                .all(|(s, p)| p.objective(&resolve(*s, &rho_in)) <= feasibility_tol);
            let objective = match assertion.guarantee_clause() {
                Guarantee::Single(s, p) => p.objective(&resolve(*s, &rho_in)),
                Guarantee::Relation(a, b, p) => {
                    p.objective(&resolve(*a, &rho_in), &resolve(*b, &rho_in))
                }
            };
            // A non-finite objective (a pathological custom predicate) is
            // flagged infeasible so it can never be reported as a peak.
            let feasible = feasible && objective.is_finite();
            out.push(LandscapePoint {
                theta,
                phi,
                objective,
                feasible,
            });
        }
    }
    out
}

/// The feasible grid point with the largest objective — the landscape's
/// candidate counter-example (or `None` when nothing is feasible).
///
/// Non-finite objectives are filtered out and the remaining points are
/// ranked by `f64::total_cmp`; the old `partial_cmp(..).unwrap_or(Equal)`
/// made the winner depend on iteration order whenever a NaN was present.
pub fn landscape_peak(points: &[LandscapePoint]) -> Option<LandscapePoint> {
    points
        .iter()
        .filter(|p| p.feasible && p.objective.is_finite())
        .copied()
        .max_by(|a, b| a.objective.total_cmp(&b.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizationConfig};
    use crate::predicate::{RelationPredicate, StatePredicate};
    use morph_clifford::InputEnsemble;
    use morph_qprog::{Circuit, TracepointId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flip_characterization() -> Characterization {
        let mut c = Circuit::new(1);
        c.tracepoint(1, &[0]);
        c.x(0);
        c.tracepoint(2, &[0]);
        let mut rng = StdRng::seed_from_u64(0);
        let config = CharacterizationConfig {
            ensemble: InputEnsemble::PauliProduct,
            ..CharacterizationConfig::exact(vec![0], 4)
        };
        characterize(&c, &config, &mut rng)
    }

    fn equality_assertion() -> AssumeGuarantee {
        AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::Equal,
        )
    }

    #[test]
    fn flip_landscape_peaks_at_poles_and_vanishes_on_x_axis() {
        let ch = flip_characterization();
        let points = input_landscape(&equality_assertion(), &ch, 9, 1e-6);
        assert_eq!(points.len(), 81);
        // Pole: |0> vs |1> — maximal distance √2.
        let pole = points
            .iter()
            .find(|p| p.theta == 0.0 && p.phi == 0.0)
            .unwrap();
        assert!((pole.objective - 2f64.sqrt()).abs() < 1e-9);
        // X axis (θ = π/2, φ = 0): |+> is X-invariant — objective ≈ 0.
        let x_axis = points
            .iter()
            .filter(|p| (p.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-9)
            .find(|p| p.phi == 0.0)
            .unwrap();
        assert!(x_axis.objective.abs() < 1e-9, "got {}", x_axis.objective);
    }

    #[test]
    fn peak_returns_the_counterexample_basin() {
        let ch = flip_characterization();
        let points = input_landscape(&equality_assertion(), &ch, 17, 1e-6);
        let peak = landscape_peak(&points).expect("grid has feasible points");
        assert!((peak.objective - 2f64.sqrt()).abs() < 0.05);
        // Poles (θ≈0 or π) carry the peak.
        assert!(peak.theta < 0.3 || peak.theta > std::f64::consts::PI - 0.3);
    }

    #[test]
    fn assumptions_mark_infeasible_regions() {
        // Only near-|0> inputs are assumed.
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let assertion = AssumeGuarantee::new()
            .assume(
                StateRef::Input,
                StatePredicate::custom(move |rho| (rho - &zero).frobenius_norm() - 0.5),
            )
            .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal);
        let ch = flip_characterization();
        let points = input_landscape(&assertion, &ch, 9, 1e-6);
        let feasible = points.iter().filter(|p| p.feasible).count();
        assert!(feasible > 0 && feasible < points.len());
        // Feasible points cluster near θ = 0.
        assert!(points
            .iter()
            .filter(|p| p.feasible)
            .all(|p| p.theta < std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn non_finite_objectives_never_win_the_peak() {
        let p = |objective: f64| LandscapePoint {
            theta: 0.0,
            phi: 0.0,
            objective,
            feasible: true,
        };
        let peak = landscape_peak(&[p(f64::NAN), p(0.4), p(f64::INFINITY)]).unwrap();
        assert_eq!(peak.objective, 0.4);
        assert!(landscape_peak(&[p(f64::NAN), p(f64::INFINITY)]).is_none());
    }

    #[test]
    fn nan_guarantee_marks_grid_points_infeasible() {
        let ch = flip_characterization();
        let assertion = AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::custom(|_, _| f64::NAN),
        );
        let points = input_landscape(&assertion, &ch, 5, 1e-6);
        assert!(points.iter().all(|p| !p.feasible));
        assert!(landscape_peak(&points).is_none());
    }

    #[test]
    #[should_panic(expected = "single-qubit")]
    fn multi_qubit_input_space_rejected() {
        let mut c = Circuit::new(2);
        c.tracepoint(1, &[0, 1]);
        c.h(0);
        c.tracepoint(2, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let ch = characterize(&c, &CharacterizationConfig::exact(vec![0, 1], 4), &mut rng);
        let _ = input_landscape(&equality_assertion(), &ch, 4, 1e-6);
    }
}
