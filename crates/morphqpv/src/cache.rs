//! Cache-aware characterization (the "morph-store" reuse layer).
//!
//! Characterization is the paper's dominant cost — `N_sample` program
//! executions plus tomography readout per tracepoint — and its output is a
//! pure function of `(circuit, configuration, RNG seed)`. This module
//! content-addresses that function: [`characterization_fingerprint`] hashes
//! the canonical bytes of everything the output depends on, and
//! [`characterize_cached`] consults a [`CharacterizationCache`] before
//! paying for simulation. On a hit the full [`Characterization`] (inputs,
//! per-tracepoint traces, *and* the cost ledger of the original run) is
//! restored from the artifact, so a warm verification run charges zero new
//! simulator cost while reporting results bit-identical to a cold run.
//!
//! Invalidation is purely structural: any change to the circuit (including
//! tracepoint placement), ensemble, readout mode, noise model, sample
//! budget, input-qubit set, or seed changes the fingerprint and therefore
//! misses. `CharacterizationConfig::parallelism` is deliberately *excluded*
//! — characterization is bit-identical at every worker count (see DESIGN.md
//! "Deterministic parallelism"), so worker count must not fragment the
//! cache.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use morph_linalg::CMatrix;
use morph_qprog::{Circuit, TracepointId};
use morph_store::{Fingerprint, FingerprintBuilder, MorphStore, StoreStats};
use morph_tomography::CostLedger;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

use crate::characterize::{characterize_with_inputs, Characterization, CharacterizationConfig};

/// Domain tag prefixed to every characterization fingerprint. Bump the
/// version suffix whenever the characterization algorithm itself changes
/// meaning for the same inputs.
///
/// v2: the simulator switched to qubit-local density kernels, closed-form
/// channels, and statevector gate fusion — numerically equivalent only up
/// to rounding, so artifacts from v1 must not be reused.
///
/// v3: the sweep fuses the shared main circuit once and applies input
/// preparation per lane, unfused, instead of fusing `prep + main` per
/// input — the fusion boundary moved, so results differ from v2 by
/// rounding. `CharacterizationConfig::sweep` and `MORPH_CHAR_BATCH` are
/// excluded like `parallelism`: batched and per-state sweeps are
/// bit-identical at every batch size and worker count.
///
/// v4: S/S† execute as exact component swaps (`diag(1, ±i)` without a
/// complex multiply), changing rounding on any circuit containing them,
/// and the sweep may now run on stabilizer/sparse fast paths.
/// `CharacterizationConfig::backend` and `MORPH_BACKEND` are excluded
/// like `parallelism`: the sparse path is bit-identical to dense and the
/// stabilizer path reads out algebraically exact states, so the backend
/// must not fragment the cache.
pub const FINGERPRINT_DOMAIN: &str = "morphqpv/characterization/v4";

/// Version of the artifact payload layout inside the store envelope
/// (the envelope's own schema version is `morph_store::SCHEMA_VERSION`).
///
/// v2 added the `backend` field recording which simulation backend
/// produced the artifact. v3 added `fast_path` (sparse spill/switch/
/// splice counts and the nonzero high-water mark), so warm runs report
/// the same fast-path stats the cold run observed; v2 entries fail
/// decoding and degrade to a miss.
///
/// v4 adds a `kind` discriminator now that whole-run artifacts share the
/// payload envelope with per-segment artifacts
/// (`"characterization"` here, `"segment-pure"` / `"segment-density"` in
/// [`crate::incremental::SegmentedCache`]). v3 entries fail decoding and
/// degrade to a miss.
pub const ARTIFACT_VERSION: u32 = 4;

/// Computes the content address of a characterization run.
///
/// `char_seed` is the single `u64` drawn from the caller's RNG that seeds
/// the run's internal RNG (see [`characterize_cached`]).
pub fn characterization_fingerprint(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    char_seed: u64,
) -> Fingerprint {
    let mut circuit_bytes = Vec::new();
    circuit.canonical_bytes(&mut circuit_bytes);
    let mut noise_bytes = Vec::new();
    config.noise.canonical_bytes(&mut noise_bytes);
    let (readout_tag, readout_param) = config.readout.tag();
    let input_qubits: Vec<u64> = config.input_qubits.iter().map(|&q| q as u64).collect();
    FingerprintBuilder::new(FINGERPRINT_DOMAIN)
        .field_bytes("circuit", &circuit_bytes)
        .field_str("ensemble", config.ensemble.tag())
        .field_str("readout", readout_tag)
        .field_u64("readout-param", readout_param)
        .field_bytes("noise", &noise_bytes)
        .field_u64("n-samples", config.n_samples as u64)
        .field_u64_list("input-qubits", &input_qubits)
        .field_u64("seed", char_seed)
        .finish()
}

/// [`characterization_fingerprint`] for a run with an explicit input set
/// (Strategy-adapt): the inputs' preparation circuits replace the ensemble
/// tag and sample count in the address.
pub fn characterization_fingerprint_with_inputs(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    input_preps: &[&Circuit],
    char_seed: u64,
) -> Fingerprint {
    let mut circuit_bytes = Vec::new();
    circuit.canonical_bytes(&mut circuit_bytes);
    let mut noise_bytes = Vec::new();
    config.noise.canonical_bytes(&mut noise_bytes);
    let mut prep_bytes = Vec::new();
    prep_bytes.extend_from_slice(&(input_preps.len() as u64).to_le_bytes());
    for prep in input_preps {
        prep.canonical_bytes(&mut prep_bytes);
    }
    let (readout_tag, readout_param) = config.readout.tag();
    let input_qubits: Vec<u64> = config.input_qubits.iter().map(|&q| q as u64).collect();
    FingerprintBuilder::new(FINGERPRINT_DOMAIN)
        .field_bytes("circuit", &circuit_bytes)
        .field_bytes("explicit-inputs", &prep_bytes)
        .field_str("readout", readout_tag)
        .field_u64("readout-param", readout_param)
        .field_bytes("noise", &noise_bytes)
        .field_u64_list("input-qubits", &input_qubits)
        .field_u64("seed", char_seed)
        .finish()
}

/// Shared frame of every v4 artifact payload: the version stamp plus the
/// `kind` discriminator. Segment artifacts reuse this envelope.
pub(crate) fn artifact_envelope(kind: &str) -> BTreeMap<String, Value> {
    let mut m = BTreeMap::new();
    m.insert(
        "artifact_version".to_string(),
        Value::UInt(u64::from(ARTIFACT_VERSION)),
    );
    m.insert("kind".to_string(), Value::Str(kind.to_string()));
    m
}

/// Validates the version stamp and `kind` discriminator of a v4 payload.
/// Any mismatch is a decode failure, which the caches treat as a miss.
pub(crate) fn check_artifact_envelope(value: &Value, kind: &str) -> Result<(), FromValueError> {
    let version = value
        .require("artifact_version")?
        .as_u64()
        .ok_or_else(|| FromValueError::new("artifact_version must be an integer"))?;
    if version != u64::from(ARTIFACT_VERSION) {
        return Err(FromValueError::new(format!(
            "artifact version {version} != supported {ARTIFACT_VERSION}"
        )));
    }
    let found = value
        .require("kind")?
        .as_str()
        .ok_or_else(|| FromValueError::new("artifact kind must be a string"))?;
    if found != kind {
        return Err(FromValueError::new(format!(
            "artifact kind {found:?} != expected {kind:?}"
        )));
    }
    Ok(())
}

/// Encodes [`morph_backend::FastPathStats`] as the store payload fragment
/// shared by whole-run and per-segment artifacts.
pub(crate) fn encode_fast_path(stats: &morph_backend::FastPathStats) -> Value {
    let mut fp = BTreeMap::new();
    fp.insert("spills".to_string(), Value::UInt(stats.spills));
    fp.insert("switches".to_string(), Value::UInt(stats.switches));
    fp.insert("splices".to_string(), Value::UInt(stats.splices));
    fp.insert(
        "peak_nonzeros".to_string(),
        Value::UInt(stats.peak_nonzeros),
    );
    Value::Object(fp)
}

/// Decodes the [`encode_fast_path`] fragment.
pub(crate) fn decode_fast_path(fp: &Value) -> Result<morph_backend::FastPathStats, FromValueError> {
    let fp_u64 = |field: &str| -> Result<u64, FromValueError> {
        fp.require(field)?
            .as_u64()
            .ok_or_else(|| FromValueError::new(format!("fast_path.{field} must be an integer")))
    };
    Ok(morph_backend::FastPathStats {
        spills: fp_u64("spills")?,
        switches: fp_u64("switches")?,
        splices: fp_u64("splices")?,
        peak_nonzeros: fp_u64("peak_nonzeros")?,
    })
}

/// Decodes the backend tag shared by whole-run and per-segment artifacts.
pub(crate) fn decode_backend(
    value: &Value,
) -> Result<morph_backend::BackendChoice, FromValueError> {
    value
        .require("backend")?
        .as_str()
        .and_then(morph_backend::BackendChoice::from_tag)
        .ok_or_else(|| FromValueError::new("backend must be a known backend tag"))
}

/// Encodes a [`Characterization`] as the store payload.
fn encode_artifact(ch: &Characterization) -> Value {
    let traces: Vec<(u64, &Vec<CMatrix>)> = ch
        .traces
        .iter()
        .map(|(id, states)| (u64::from(id.0), states))
        .collect();
    let traces_value = Value::Array(
        traces
            .iter()
            .map(|(id, states)| Value::Array(vec![Value::UInt(*id), states.to_value()]))
            .collect(),
    );
    let mut m = artifact_envelope("characterization");
    m.insert("inputs".to_string(), ch.inputs.to_value());
    m.insert("traces".to_string(), traces_value);
    m.insert("ledger".to_string(), ch.ledger.to_value());
    m.insert("backend".to_string(), Value::Str(ch.backend.tag()));
    m.insert("fast_path".to_string(), encode_fast_path(&ch.fast_path));
    Value::Object(m)
}

/// Decodes a store payload back into a [`Characterization`].
fn decode_artifact(value: &Value) -> Result<Characterization, FromValueError> {
    check_artifact_envelope(value, "characterization")?;
    let inputs = Vec::from_value(value.require("inputs")?)?;
    let mut traces: BTreeMap<TracepointId, Vec<CMatrix>> = BTreeMap::new();
    for pair in value
        .require("traces")?
        .as_array()
        .ok_or_else(|| FromValueError::new("traces must be an array of pairs"))?
    {
        match pair.as_array() {
            Some([id, states]) => {
                let id = TracepointId::from_value(id)?;
                traces.insert(id, Vec::from_value(states)?);
            }
            _ => return Err(FromValueError::new("trace entry must be [id, states]")),
        }
    }
    let ledger = CostLedger::from_value(value.require("ledger")?)?;
    let backend = decode_backend(value)?;
    let fast_path = decode_fast_path(value.require("fast_path")?)?;
    Ok(Characterization {
        inputs,
        traces,
        ledger,
        backend,
        fast_path,
    })
}

/// Emits one counter per [`StoreStats`] field that moved across a store
/// operation, keyed by `domain` (a fingerprint domain such as
/// [`FINGERPRINT_DOMAIN`]). Only called with the recorder enabled.
pub(crate) fn record_store_delta(domain: &str, before: &StoreStats, after: &StoreStats) {
    let deltas = [
        ("hit", after.hits() - before.hits()),
        ("miss", after.misses - before.misses),
        ("corrupt", after.corrupt_entries - before.corrupt_entries),
        ("cost_saved", after.cost_saved - before.cost_saved),
    ];
    for (name, delta) in deltas {
        if delta > 0 {
            morph_trace::counter(&format!("store/{domain}/{name}"), delta);
        }
    }
}

/// A characterization artifact cache on top of [`MorphStore`].
///
/// Construct one per process (or per `--cache-dir`) and pass it to
/// [`characterize_cached`]. Artifact cost in the store's cost-aware LRU is
/// the run's `quantum_ops` ledger counter, so the most expensive
/// characterizations are the last to be evicted.
#[derive(Debug)]
pub struct CharacterizationCache {
    store: MorphStore,
}

impl CharacterizationCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory() -> Self {
        CharacterizationCache {
            store: MorphStore::in_memory(),
        }
    }

    /// A persistent cache rooted at `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CharacterizationCache {
            store: MorphStore::open(dir.as_ref().to_path_buf())?,
        })
    }

    /// Hit/miss/corruption counters.
    pub fn stats(&self) -> &StoreStats {
        self.store.stats()
    }

    /// Looks up an artifact, decoding it into a [`Characterization`].
    /// A decode failure (artifact-version mismatch or damaged payload)
    /// behaves as a miss, matching the store's corruption tolerance.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<Characterization> {
        let before = *self.store.stats();
        let result = self.store.get(fp).and_then(|v| decode_artifact(&v).ok());
        // Counter names are keyed by the fingerprint domain so two caches
        // with different domains stay distinguishable in one trace. The
        // format! allocations only happen with the recorder enabled.
        if morph_trace::enabled() {
            let after = *self.store.stats();
            record_store_delta(FINGERPRINT_DOMAIN, &before, &after);
            if after.hits() > before.hits() && result.is_none() {
                // The envelope was intact but the payload didn't decode —
                // the characterization layer's own corruption repair.
                morph_trace::counter(&format!("store/{FINGERPRINT_DOMAIN}/decode_miss"), 1);
            }
        }
        result
    }

    /// Stores a characterization under its fingerprint. I/O failures are
    /// reported but leave the in-memory tier populated.
    pub fn put(&mut self, fp: Fingerprint, ch: &Characterization) -> io::Result<()> {
        let cost = ch.ledger.quantum_ops.max(1);
        let result = self.store.put(fp, encode_artifact(ch), cost);
        if morph_trace::enabled() {
            morph_trace::counter(&format!("store/{FINGERPRINT_DOMAIN}/write"), 1);
        }
        result
    }

    /// Direct access to the underlying store (stats, eviction counters).
    pub fn store(&self) -> &MorphStore {
        &self.store
    }

    /// Mutable access to the underlying store, e.g. to drop the in-memory
    /// tier ([`MorphStore::drop_memory`]) and force disk reloads.
    pub fn store_mut(&mut self) -> &mut MorphStore {
        &mut self.store
    }
}

/// Cache-aware [`crate::characterize`]: on a hit the stored artifact is
/// returned (zero new simulator cost — the returned ledger is the *restored*
/// ledger of the original run); on a miss the characterization runs and the
/// artifact is stored.
///
/// RNG discipline: exactly one `u64` is drawn from `rng` — it both seeds the
/// run's internal RNG and enters the fingerprint. Hit and miss paths
/// therefore advance the caller's RNG identically, so a warm run is
/// bit-identical to a cold run for everything downstream.
///
/// # Panics
///
/// Same conditions as [`crate::characterize`].
pub fn characterize_cached(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    rng: &mut StdRng,
    cache: &mut CharacterizationCache,
) -> Characterization {
    let char_seed: u64 = rng.gen();
    let fp = characterization_fingerprint(circuit, config, char_seed);
    if let Some(hit) = cache.get(&fp) {
        return hit;
    }
    let mut run_rng = StdRng::seed_from_u64(char_seed);
    let ch = crate::characterize(circuit, config, &mut run_rng);
    // Persistence is best-effort: a read-only cache dir degrades to
    // memory-only caching rather than failing verification.
    let _ = cache.put(fp, &ch);
    ch
}

/// Cache-aware [`characterize_with_inputs`]; the explicit inputs'
/// preparation circuits are part of the content address.
///
/// # Panics
///
/// Same conditions as [`characterize_with_inputs`].
pub fn characterize_with_inputs_cached(
    circuit: &Circuit,
    config: &CharacterizationConfig,
    inputs: Vec<morph_clifford::InputState>,
    rng: &mut StdRng,
    cache: &mut CharacterizationCache,
) -> Characterization {
    let char_seed: u64 = rng.gen();
    let preps: Vec<&Circuit> = inputs.iter().map(|i| &i.prep).collect();
    let fp = characterization_fingerprint_with_inputs(circuit, config, &preps, char_seed);
    if let Some(hit) = cache.get(&fp) {
        return hit;
    }
    let mut run_rng = StdRng::seed_from_u64(char_seed);
    let ch = characterize_with_inputs(circuit, config, inputs, &mut run_rng);
    let _ = cache.put(fp, &ch);
    ch
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_clifford::InputEnsemble;
    use morph_qsim::NoiseModel;
    use morph_tomography::ReadoutMode;

    fn sample_program() -> Circuit {
        let mut c = Circuit::new(2);
        c.tracepoint(1, &[0]);
        c.h(1).cx(0, 1);
        c.tracepoint(2, &[0, 1]);
        c
    }

    fn assert_same(a: &Characterization, b: &Characterization) {
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.inputs.len(), b.inputs.len());
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.prep, y.prep);
            assert_eq!(x.state, y.state);
            assert_eq!(x.rho, y.rho);
        }
        assert_eq!(
            a.traces.keys().collect::<Vec<_>>(),
            b.traces.keys().collect::<Vec<_>>()
        );
        for (id, states) in &a.traces {
            for (x, y) in states.iter().zip(&b.traces[id]) {
                assert_eq!(x, y, "trace {id} differs");
            }
        }
    }

    #[test]
    fn warm_run_is_bit_identical_and_free() {
        let circuit = sample_program();
        let config = CharacterizationConfig {
            readout: ReadoutMode::Shots(40),
            ..CharacterizationConfig::exact(vec![0], 4)
        };
        let mut cache = CharacterizationCache::in_memory();

        let mut rng_cold = StdRng::seed_from_u64(7);
        let cold = characterize_cached(&circuit, &config, &mut rng_cold, &mut cache);
        assert_eq!(cache.stats().misses, 1);

        let mut rng_warm = StdRng::seed_from_u64(7);
        let warm = characterize_cached(&circuit, &config, &mut rng_warm, &mut cache);
        assert_eq!(cache.stats().memory_hits, 1);
        assert_same(&cold, &warm);

        // Both paths drew exactly one u64 from the caller's stream.
        assert_eq!(rng_cold.gen::<u64>(), rng_warm.gen::<u64>());
    }

    #[test]
    fn cached_matches_uncached_results() {
        // characterize_cached must produce the same characterization as a
        // direct characterize() call seeded with the drawn char_seed.
        let circuit = sample_program();
        let config = CharacterizationConfig::exact(vec![0], 3);
        let mut cache = CharacterizationCache::in_memory();
        let mut rng = StdRng::seed_from_u64(11);
        let cached = characterize_cached(&circuit, &config, &mut rng, &mut cache);

        let mut seed_rng = StdRng::seed_from_u64(11);
        let char_seed: u64 = seed_rng.gen();
        let mut direct_rng = StdRng::seed_from_u64(char_seed);
        let direct = crate::characterize(&circuit, &config, &mut direct_rng);
        assert_same(&cached, &direct);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let circuit = sample_program();
        let config = CharacterizationConfig::exact(vec![0], 4);
        let base = characterization_fingerprint(&circuit, &config, 1);

        // Seed.
        assert_ne!(base, characterization_fingerprint(&circuit, &config, 2));
        // Sample budget.
        let more = CharacterizationConfig {
            n_samples: 5,
            ..config.clone()
        };
        assert_ne!(base, characterization_fingerprint(&circuit, &more, 1));
        // Noise model.
        let noisy = CharacterizationConfig {
            noise: NoiseModel::ibm_cairo(),
            ..config.clone()
        };
        assert_ne!(base, characterization_fingerprint(&circuit, &noisy, 1));
        // Readout mode (including parameter-only changes).
        let shots = CharacterizationConfig {
            readout: ReadoutMode::Shots(100),
            ..config.clone()
        };
        let shots2 = CharacterizationConfig {
            readout: ReadoutMode::Shots(200),
            ..config.clone()
        };
        assert_ne!(base, characterization_fingerprint(&circuit, &shots, 1));
        assert_ne!(
            characterization_fingerprint(&circuit, &shots, 1),
            characterization_fingerprint(&circuit, &shots2, 1)
        );
        // Ensemble.
        let basis = CharacterizationConfig {
            ensemble: InputEnsemble::Basis,
            ..config.clone()
        };
        assert_ne!(base, characterization_fingerprint(&circuit, &basis, 1));
        // Circuit structure (extra gate).
        let mut tweaked = sample_program();
        tweaked.z(1);
        assert_ne!(base, characterization_fingerprint(&tweaked, &config, 1));
        // Parallelism does NOT change the fingerprint.
        let wide = CharacterizationConfig {
            parallelism: 8,
            ..config.clone()
        };
        assert_eq!(base, characterization_fingerprint(&circuit, &wide, 1));
        // Neither does the backend mode: fast paths are value-equivalent
        // to dense, so the backend must not fragment the cache.
        for backend in morph_qprog::BackendMode::ALL {
            let forced = CharacterizationConfig {
                backend,
                ..config.clone()
            };
            assert_eq!(base, characterization_fingerprint(&circuit, &forced, 1));
        }
    }

    #[test]
    fn artifact_round_trips_through_encoding() {
        let circuit = sample_program();
        let config = CharacterizationConfig::exact(vec![0], 3);
        let mut rng = StdRng::seed_from_u64(3);
        let ch = crate::characterize(&circuit, &config, &mut rng);
        let decoded = decode_artifact(&encode_artifact(&ch)).expect("decode");
        assert_same(&ch, &decoded);
    }

    #[test]
    fn artifact_version_mismatch_is_a_miss() {
        let circuit = sample_program();
        let config = CharacterizationConfig::exact(vec![0], 2);
        let mut rng = StdRng::seed_from_u64(4);
        let ch = crate::characterize(&circuit, &config, &mut rng);
        let mut value = encode_artifact(&ch);
        if let Value::Object(m) = &mut value {
            m.insert("artifact_version".to_string(), Value::UInt(999));
        }
        assert!(decode_artifact(&value).is_err());
    }

    #[test]
    fn explicit_input_cache_hits_on_same_inputs() {
        let circuit = sample_program();
        let config = CharacterizationConfig::exact(vec![0], 4);
        let mut cache = CharacterizationCache::in_memory();
        let mut ensemble_rng = StdRng::seed_from_u64(21);
        let inputs = InputEnsemble::PauliProduct.generate(1, 4, &mut ensemble_rng);

        let mut rng = StdRng::seed_from_u64(5);
        let cold = characterize_with_inputs_cached(
            &circuit,
            &config,
            inputs.clone(),
            &mut rng,
            &mut cache,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let warm = characterize_with_inputs_cached(&circuit, &config, inputs, &mut rng, &mut cache);
        assert_eq!(cache.stats().memory_hits, 1);
        assert_same(&cold, &warm);
    }
}
