//! Counter-example refinement: turn a violating density matrix into an
//! artifact a programmer can act on — the nearest pure state and a circuit
//! that prepares it, ready to re-run on hardware to reproduce the bug.
//!
//! This realizes the "Full interpretability" column of Table 2: MorphQPV
//! does not just say *failed*, it hands back the failing input.

use morph_linalg::{eigh, CMatrix, C64};
use morph_qprog::Circuit;
use morph_qsim::{Gate, StateVector};

/// A refined counter-example.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The nearest pure state to the violating density matrix.
    pub state: StateVector,
    /// Its density matrix.
    pub rho: CMatrix,
    /// Weight of the dominant eigenvector — how pure the raw
    /// counter-example already was (1.0 = exactly pure).
    pub dominance: f64,
    /// A circuit preparing `state` from `|0…0⟩` (one dense unitary; a
    /// hardware run would synthesize it into native gates).
    pub prep: Circuit,
}

impl CounterExample {
    /// Refines a violating density matrix (from
    /// [`crate::Verdict::Failed`]) into a preparable pure state.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not square with power-of-two dimension, or has
    /// no positive spectral weight.
    pub fn refine(rho: &CMatrix) -> Self {
        assert!(rho.is_square(), "counter-example must be square");
        let d = rho.rows();
        assert!(d.is_power_of_two(), "dimension must be a power of two");
        let eig = eigh(rho);
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        assert!(total > 1e-12, "no positive spectral weight");
        let dominant = eig.vector(0);
        let dominance = eig.values[0].max(0.0) / total;
        let state = StateVector::from_amplitudes(dominant.clone());
        let n_qubits = d.trailing_zeros() as usize;
        let mut prep = Circuit::new(n_qubits);
        prep.gate(Gate::Unitary(
            (0..n_qubits).collect(),
            unitary_with_first_column(state.amplitudes()),
        ));
        CounterExample {
            rho: state.density_matrix(),
            state,
            dominance,
            prep,
        }
    }

    /// Convenience: the most likely computational-basis outcome of the
    /// counter-example — often directly the "bad key" in search-style bugs.
    pub fn dominant_basis_state(&self) -> usize {
        let probs = self.state.probabilities();
        let mut best = 0;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[best] {
                best = i;
            }
        }
        best
    }
}

/// Completes `target` into a unitary whose first column it is
/// (Gram–Schmidt against basis vectors), so `U|0…0⟩ = |target⟩`.
fn unitary_with_first_column(target: &[C64]) -> CMatrix {
    let d = target.len();
    let mut cols: Vec<Vec<C64>> = vec![target.to_vec()];
    for j in 0..d {
        if cols.len() == d {
            break;
        }
        let mut v = vec![C64::ZERO; d];
        v[j] = C64::ONE;
        for col in &cols {
            let overlap: C64 = col.iter().zip(&v).map(|(a, b)| a.conj() * *b).sum();
            for (vi, ci) in v.iter_mut().zip(col) {
                *vi -= overlap * *ci;
            }
        }
        let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-9 {
            for vi in &mut v {
                *vi = *vi / norm;
            }
            cols.push(v);
        }
    }
    CMatrix::from_fn(d, d, |r, c| cols[c][r])
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;

    #[test]
    fn pure_counterexample_refines_to_itself() {
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let ce = CounterExample::refine(&plus);
        assert!((ce.dominance - 1.0).abs() < 1e-9);
        assert!(ce.rho.approx_eq(&plus, 1e-9));
    }

    #[test]
    fn mixed_counterexample_takes_dominant_branch() {
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
        let mixed = &zero.scale_re(0.8) + &one.scale_re(0.2);
        let ce = CounterExample::refine(&mixed);
        assert!((ce.dominance - 0.8).abs() < 1e-9);
        assert_eq!(ce.dominant_basis_state(), 0);
    }

    #[test]
    fn prep_circuit_actually_prepares_the_state() {
        // A nontrivial 2-qubit pure counter-example.
        let amps = vec![
            C64::real(0.5),
            C64::new(0.0, 0.5),
            C64::real(-0.5),
            C64::new(0.5, 0.0),
        ];
        let psi = StateVector::from_amplitudes(amps);
        let ce = CounterExample::refine(&psi.density_matrix());
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let prepared = Executor::default()
            .run_trajectory(&ce.prep, &StateVector::zero_state(2), &mut rng)
            .final_state;
        assert!(prepared.approx_eq_up_to_phase(&ce.state, 1e-9));
        assert!(prepared.approx_eq_up_to_phase(&psi, 1e-9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_dimension_rejected() {
        let _ = CounterExample::refine(&CMatrix::identity(3));
    }
}
