//! The workspace-level error type.
//!
//! Four PRs of organic growth left each layer with its own error —
//! [`morph_qprog::ParseProgramError`], [`crate::ParseSpecError`],
//! [`crate::ValidationError`] (wrapping `morph_optimize::SolveError`),
//! plain [`std::io::Error`] from the artifact store — forcing every caller
//! into `Box<dyn Error>` or ad-hoc matches. [`MorphError`] unifies them:
//! one enum with `From` impls from each layer, a stable [`Display`]
//! rendering, and the CLI exit-code convention in one place
//! ([`MorphError::exit_code`] together with
//! [`crate::VerificationReport::exit_code`]).
//!
//! The convention, shared by the `verify` CLI and the `morph-serve`
//! protocol: **0** — ran to completion and every assertion passed; **2** —
//! ran to completion and at least one assertion was refuted; **1** — the
//! pipeline could not complete (parse error, solver failure, I/O,
//! cancellation). `morph-serve`'s `JobError` wraps `MorphError` on the
//! service side (`From<MorphError> for JobError`), keeping the dependency
//! arrow pointing downstream.

use std::fmt;
use std::io;

use morph_optimize::SolveError;
use morph_qprog::ParseProgramError;

use crate::cancel::Cancelled;
use crate::incremental::SegmentError;
use crate::spec::ParseSpecError;
use crate::validate::ValidationError;

/// Any way the verification pipeline can fail to produce a verdict.
#[derive(Debug)]
pub enum MorphError {
    /// The program source did not parse.
    Parse(ParseProgramError),
    /// An `// assert` specification did not parse.
    Spec(ParseSpecError),
    /// The validation stage failed structurally (solver could not produce
    /// an optimum).
    Validation(ValidationError),
    /// The artifact store could not be opened or written.
    Store(io::Error),
    /// The segmented/incremental characterization surface rejected the
    /// program or configuration.
    Segment(SegmentError),
    /// A cooperative cancellation point fired (deadline or explicit).
    Cancelled(Cancelled),
}

impl MorphError {
    /// The process exit code for this error under the 0/2/1 convention
    /// described in the module docs: every `MorphError` is a failure to
    /// complete, hence `1`. Successful runs map through
    /// [`crate::VerificationReport::exit_code`] instead.
    pub fn exit_code(&self) -> i32 {
        1
    }
}

impl fmt::Display for MorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorphError::Parse(e) => write!(f, "program parse error: {e}"),
            MorphError::Spec(e) => write!(f, "assertion parse error: {e}"),
            MorphError::Validation(e) => write!(f, "{e}"),
            MorphError::Store(e) => write!(f, "artifact store error: {e}"),
            MorphError::Segment(e) => write!(f, "{e}"),
            MorphError::Cancelled(e) => write!(f, "cancelled: {e}"),
        }
    }
}

impl std::error::Error for MorphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorphError::Parse(e) => Some(e),
            MorphError::Spec(e) => Some(e),
            MorphError::Validation(e) => Some(e),
            MorphError::Store(e) => Some(e),
            MorphError::Segment(e) => Some(e),
            MorphError::Cancelled(e) => Some(e),
        }
    }
}

impl From<ParseProgramError> for MorphError {
    fn from(e: ParseProgramError) -> Self {
        MorphError::Parse(e)
    }
}

impl From<ParseSpecError> for MorphError {
    fn from(e: ParseSpecError) -> Self {
        MorphError::Spec(e)
    }
}

impl From<ValidationError> for MorphError {
    fn from(e: ValidationError) -> Self {
        MorphError::Validation(e)
    }
}

impl From<SolveError> for MorphError {
    fn from(e: SolveError) -> Self {
        MorphError::Validation(ValidationError::Solver(e))
    }
}

impl From<io::Error> for MorphError {
    fn from(e: io::Error) -> Self {
        MorphError::Store(e)
    }
}

impl From<Cancelled> for MorphError {
    fn from(e: Cancelled) -> Self {
        MorphError::Cancelled(e)
    }
}

impl From<SegmentError> for MorphError {
    fn from(e: SegmentError) -> Self {
        MorphError::Segment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_every_layer_with_source_chain() {
        let solver: MorphError = SolveError::NoRestarts { solver: "QP" }.into();
        assert!(matches!(solver, MorphError::Validation(_)));
        assert!(solver.source().is_some(), "chain reaches the inner error");
        assert!(solver.to_string().contains("solver"));

        let store: MorphError = io::Error::new(io::ErrorKind::PermissionDenied, "ro").into();
        assert!(matches!(store, MorphError::Store(_)));

        let cancel: MorphError = Cancelled::DeadlineExceeded.into();
        assert!(cancel.to_string().contains("deadline"));
    }

    #[test]
    fn every_error_exits_one() {
        let e: MorphError = Cancelled::Requested.into();
        assert_eq!(e.exit_code(), 1);
        let e: MorphError = SolveError::NoRestarts { solver: "QP" }.into();
        assert_eq!(e.exit_code(), 1);
    }
}
