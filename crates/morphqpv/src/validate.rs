//! Assertion validation via constrained optimization (Section 6.1).
//!
//! The guarantee objective `P₃` is maximized over the approximation
//! coefficients `α` subject to the assumption predicates and to the
//! physicality of the reconstructed input. Coefficients are gauge-fixed by
//! their sum (sampled inputs are unit-trace, so `tr ρ_in = Σ αᵢ`); the
//! optimizer therefore searches normalized combinations and cannot inflate
//! the objective by scaling. If the maximum stays ≤ 0 the assertion holds
//! for every representable input and Theorem 3 turns the
//! approximation-accuracy distribution into a confidence; otherwise the
//! maximizing `α` reconstructs a counter-example input.

use std::fmt;

use morph_linalg::{project_to_density, CMatrix};
use morph_optimize::{
    Bounds, FnObjective, GeneticAlgorithm, GradientAscent, NelderMead, OptResult, Optimizer,
    QuadraticProgram, SimulatedAnnealing, SolveError,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::assertion::{AssumeGuarantee, Guarantee, StateRef};
use crate::characterize::Characterization;
use crate::confidence::ConfidenceModel;

/// Which backend maximizes the validation objective (Fig 15(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Adam-style projected gradient ascent.
    GradientAscent,
    /// Genetic algorithm.
    Genetic,
    /// Simulated annealing.
    Annealing,
    /// Quadratic programming (the paper's Gurobi role).
    Quadratic,
    /// Nelder–Mead simplex (derivative-free; robust on kinked norms).
    NelderMead,
}

impl SolverKind {
    /// Instantiates the solver with its default hyper-parameters.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            SolverKind::GradientAscent => Box::new(GradientAscent::default()),
            SolverKind::Genetic => Box::new(GeneticAlgorithm::default()),
            SolverKind::Annealing => Box::new(SimulatedAnnealing::default()),
            SolverKind::Quadratic => Box::new(QuadraticProgram::default()),
            SolverKind::NelderMead => Box::new(NelderMead::default()),
        }
    }

    /// [`Self::build`] with an optional restart-count override. The
    /// override applies to the restart-based solvers (gradient ascent, QP
    /// starts, Nelder–Mead); the population/step-based solvers (genetic,
    /// annealing) have no restart notion and ignore it. A zero override on
    /// a restart-based solver makes `maximize` return
    /// [`SolveError::NoRestarts`] instead of evaluating anything.
    pub fn build_with_restarts(self, restarts: Option<usize>) -> Box<dyn Optimizer> {
        let Some(r) = restarts else {
            return self.build();
        };
        match self {
            SolverKind::GradientAscent => Box::new(GradientAscent {
                restarts: r,
                ..Default::default()
            }),
            SolverKind::Quadratic => Box::new(QuadraticProgram {
                starts: r,
                ..Default::default()
            }),
            SolverKind::NelderMead => Box::new(NelderMead {
                restarts: r,
                ..Default::default()
            }),
            SolverKind::Genetic | SolverKind::Annealing => self.build(),
        }
    }

    /// Solver display name.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::GradientAscent => "SGD/Adam",
            SolverKind::Genetic => "genetic",
            SolverKind::Annealing => "annealing",
            SolverKind::Quadratic => "QP",
            SolverKind::NelderMead => "Nelder-Mead",
        }
    }
}

/// Why a validation run could not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The optimizer backend failed structurally (no restarts configured,
    /// or every objective evaluation was NaN).
    Solver(SolveError),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Solver(e) => write!(f, "validation solver failed: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidationError::Solver(e) => Some(e),
        }
    }
}

impl From<SolveError> for ValidationError {
    fn from(e: SolveError) -> Self {
        ValidationError::Solver(e)
    }
}

/// Validation configuration.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Optimizer backend.
    pub solver: SolverKind,
    /// Pass/fail threshold on the maximized guarantee objective: the
    /// assertion passes when `max P₃ ≤ max(decision_threshold,
    /// 1.5 × feasibility_tol)`. Nonzero values absorb tomography noise and
    /// constraint-boundary slack.
    pub decision_threshold: f64,
    /// Accuracy threshold ε of Theorem 3 used for the confidence estimate.
    pub accuracy_threshold: f64,
    /// Box bound `|αᵢ| ≤ alpha_bound` for the search.
    pub alpha_bound: f64,
    /// Penalty weight for assumption/physicality violations.
    pub penalty_weight: f64,
    /// Violation level accepted as "feasible" when interpreting results.
    pub feasibility_tol: f64,
    /// Number of random probe inputs used to fit the accuracy Beta model.
    pub confidence_probes: usize,
    /// Overrides the solver's restart/start count (`None` keeps the
    /// solver's default). See [`SolverKind::build_with_restarts`]; a `0`
    /// override surfaces as [`ValidationError::Solver`].
    pub solver_restarts: Option<usize>,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            solver: SolverKind::Quadratic,
            decision_threshold: 1e-4,
            accuracy_threshold: 0.9,
            alpha_bound: 2.0,
            penalty_weight: 50.0,
            feasibility_tol: 2e-2,
            confidence_probes: 40,
            solver_restarts: None,
        }
    }
}

/// The validation verdict.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No feasible input violates the guarantee; `confidence` follows
    /// Theorem 3.
    Passed {
        /// Maximum guarantee objective found (≤ the decision threshold).
        max_objective: f64,
        /// Confidence that the verdict holds for all inputs.
        confidence: f64,
    },
    /// A feasible violating input exists.
    Failed {
        /// Maximum guarantee objective found.
        max_objective: f64,
        /// The violating input, projected to a valid density matrix.
        counterexample: CMatrix,
        /// Normalized coefficients of the violating point.
        alphas: Vec<f64>,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Passed`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Passed { .. })
    }
}

/// Full validation output: verdict plus solver and confidence diagnostics.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Raw optimizer result over the penalized objective.
    pub optimum: OptResult,
    /// Fitted accuracy distribution used for Theorem 3.
    pub confidence_model: ConfidenceModel,
    /// `true` when the optimizer's point was *degenerate* — a non-finite
    /// coordinate or an un-normalizable gauge sum — and the verdict came
    /// entirely from the sampled-input candidate pool. Distinguishes "the
    /// landscape maximum is feasible and negative" from "the solver never
    /// produced a usable point".
    pub degenerate_optimum: bool,
}

/// Shared evaluation context: resolves states and scores points.
struct Context<'a> {
    assertion: &'a AssumeGuarantee,
    input_basis: Vec<CMatrix>,
    traces: std::collections::BTreeMap<morph_qprog::TracepointId, Vec<CMatrix>>,
}

impl<'a> Context<'a> {
    fn new(assertion: &'a AssumeGuarantee, characterization: &'a Characterization) -> Self {
        Context {
            assertion,
            input_basis: characterization
                .inputs
                .iter()
                .map(|i| i.rho.clone())
                .collect(),
            traces: characterization.traces.clone(),
        }
    }

    /// Gauge-fixed coefficients: scaled so `Σ α = 1` (unit input trace).
    /// For sums in `(0.05, 0.5)` the divisor is clamped at 0.5, leaving a
    /// sub-unit trace that the violation term penalizes smoothly — this
    /// keeps the landscape free of the deep cliffs a raw `α/Σα` creates
    /// near `Σα = 0`. Returns `None` when the sum is too small entirely.
    fn normalize(&self, alphas: &[f64]) -> Option<Vec<f64>> {
        let s: f64 = alphas.iter().sum();
        // A non-finite sum (any NaN/∞ coordinate) has no gauge; without
        // this check a NaN sum slips past the magnitude test (every
        // comparison with NaN is false) and poisons everything downstream.
        if !s.is_finite() || s.abs() < 0.05 {
            return None;
        }
        let divisor = s.signum() * s.abs().max(0.5);
        Some(alphas.iter().map(|a| a / divisor).collect())
    }

    fn resolve(&self, state: StateRef, alphas: &[f64]) -> CMatrix {
        match state {
            StateRef::Input => morph_linalg::recombine(&self.input_basis, alphas),
            StateRef::Tracepoint(id) => morph_linalg::recombine(&self.traces[&id], alphas),
        }
    }

    fn guarantee_value(&self, alphas: &[f64]) -> f64 {
        match self.assertion.guarantee_clause() {
            Guarantee::Single(s, p) => p.objective(&self.resolve(*s, alphas)),
            Guarantee::Relation(a, b, p) => {
                p.objective(&self.resolve(*a, alphas), &self.resolve(*b, alphas))
            }
        }
    }

    /// Maximum assumption/physicality violation at gauge-fixed `alphas`.
    fn violation(&self, alphas: &[f64]) -> f64 {
        let mut v: f64 = 0.0;
        for (s, p) in self.assertion.assumptions() {
            v = v.max(p.objective(&self.resolve(*s, alphas)).max(0.0));
        }
        let rho_in = morph_linalg::recombine(&self.input_basis, alphas);
        v = v.max((rho_in.trace().re - 1.0).abs());
        v = v.max((rho_in.frobenius_norm() - 1.0).max(0.0));
        v
    }

    /// Penalized objective over raw (un-normalized) coefficients.
    fn penalized(&self, raw: &[f64], weight: f64) -> f64 {
        match self.normalize(raw) {
            // Degenerate gauge region: the worst value in the landscape,
            // with a slope toward a usable trace so local methods escape.
            None => {
                let s: f64 = raw.iter().sum();
                -weight * (4.0 + (0.05 - s.abs()))
            }
            // Violation penalty capped so infeasible regions slope back
            // toward feasibility instead of forming cliffs deeper than the
            // degenerate plateau.
            Some(alphas) => {
                let g = self.guarantee_value(&alphas);
                let v = self.violation(&alphas);
                g - weight * (v * v).min(4.0) - v.min(2.0)
            }
        }
    }
}

/// Validates an assertion against a characterization.
///
/// Thin panicking wrapper over [`try_validate_assertion`] for callers that
/// treat a structurally failing solver configuration as a bug.
///
/// # Panics
///
/// Panics if the assertion has no guarantee, references a tracepoint that
/// was not characterized, relates states of mismatched dimension, or the
/// solver fails structurally ([`ValidationError`]).
pub fn validate_assertion(
    assertion: &AssumeGuarantee,
    characterization: &Characterization,
    config: &ValidationConfig,
    rng: &mut StdRng,
) -> ValidationOutcome {
    try_validate_assertion(assertion, characterization, config, rng)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Validates an assertion against a characterization, reporting solver
/// failures as errors.
///
/// # Errors
///
/// [`ValidationError::Solver`] when the optimizer backend cannot produce a
/// usable optimum (zero restarts configured, or every objective evaluation
/// returned NaN).
///
/// # Panics
///
/// Panics if the assertion has no guarantee, references a tracepoint that
/// was not characterized, or relates states of mismatched dimension.
pub fn try_validate_assertion(
    assertion: &AssumeGuarantee,
    characterization: &Characterization,
    config: &ValidationConfig,
    rng: &mut StdRng,
) -> Result<ValidationOutcome, ValidationError> {
    assert!(assertion.is_complete(), "assertion has no guarantee clause");
    for state in assertion.state_refs() {
        if let StateRef::Tracepoint(id) = state {
            assert!(
                characterization.traces.contains_key(&id),
                "assertion references uncharacterized tracepoint {id}"
            );
        }
    }
    let _trace = morph_trace::span("validate/assertion");
    let ctx = Context::new(assertion, characterization);
    let n_alphas = ctx.input_basis.len();

    // The optimizer sees the penalized, gauge-fixed objective.
    let weight = config.penalty_weight;
    let ctx_for_obj = Context::new(assertion, characterization);
    let objective = FnObjective::new(n_alphas, move |raw: &[f64]| {
        ctx_for_obj.penalized(raw, weight)
    });

    let bounds = Bounds::uniform(n_alphas, -config.alpha_bound, config.alpha_bound);
    let solver = config.solver.build_with_restarts(config.solver_restarts);
    let optimum = solver.maximize(&objective, &bounds, rng)?;
    morph_trace::counter("solver_evaluations", optimum.evaluations);
    morph_trace::counter("solver_iterations", optimum.iterations as u64);

    // Interpret the optimum under the gauge, repairing marginal
    // infeasibility by retracting toward a feasible sampled input.
    let point = interpret_optimum(&ctx, &optimum.x, config.feasibility_tol);
    let degenerate_optimum = matches!(point, InterpretedPoint::Degenerate);
    let (mut max_objective, mut feasible, mut alphas) = match point {
        InterpretedPoint::Feasible { objective, alphas } => (objective, true, alphas),
        InterpretedPoint::Infeasible { objective, alphas } => (objective, false, alphas),
        InterpretedPoint::Degenerate => {
            morph_trace::counter("degenerate_points", 1);
            (f64::NEG_INFINITY, false, vec![0.0; n_alphas])
        }
    };

    // Candidate pool: every sampled input is itself a feasible-by-
    // construction probe (α = eᵢ reconstructs σ_in,i exactly); a violation
    // visible at a sampled input must never be lost to optimizer
    // fragility on the kinked penalty landscape.
    morph_trace::counter("anchor_candidates", n_alphas as u64);
    for i in 0..n_alphas {
        let mut e = vec![0.0; n_alphas];
        e[i] = 1.0;
        if ctx.violation(&e) <= config.feasibility_tol {
            let g = ctx.guarantee_value(&e);
            if g.is_finite() && (!feasible || g > max_objective) {
                max_objective = g;
                feasible = true;
                alphas = e;
            }
        }
    }

    // Accuracy distribution for Theorem 3 (depends only on the input span).
    let confidence_model = fit_confidence_model(characterization, config.confidence_probes, rng);

    // Assumptions only hold up to `feasibility_tol`, so the guarantee gets
    // the same slack: a coupled assume/guarantee pair (e.g. pure ⇒ pure)
    // evaluates to ≈ the boundary violation at the repaired point and must
    // not be misread as a bug.
    let effective_threshold = config.decision_threshold.max(1.5 * config.feasibility_tol);
    morph_trace::gauge("max_objective", max_objective);
    let verdict = if feasible && max_objective > effective_threshold {
        let raw = morph_linalg::recombine(&ctx.input_basis, &alphas);
        Verdict::Failed {
            max_objective,
            counterexample: project_to_density(&raw),
            alphas,
        }
    } else {
        Verdict::Passed {
            max_objective: if max_objective.is_finite() {
                max_objective
            } else {
                0.0
            },
            confidence: confidence_model.confidence(config.accuracy_threshold),
        }
    };

    Ok(ValidationOutcome {
        verdict,
        optimum,
        confidence_model,
        degenerate_optimum,
    })
}

/// An optimizer point after gauge interpretation.
#[derive(Debug, Clone, PartialEq)]
enum InterpretedPoint {
    /// The point (possibly retracted) satisfies every constraint.
    Feasible { objective: f64, alphas: Vec<f64> },
    /// The point violates the constraints and no feasible anchor exists to
    /// retract toward.
    Infeasible { objective: f64, alphas: Vec<f64> },
    /// The point carries no information: a non-finite coordinate, or a
    /// gauge sum too small (or non-finite) to normalize. Previously this
    /// was conflated with `Infeasible` at `NEG_INFINITY` — and a NaN point
    /// could even escape *as feasible*, because the retraction blend
    /// `b + t·(NaN − b)` is NaN at every `t` while the bisection silently
    /// converged to `t = 0`.
    Degenerate,
}

/// Interprets a raw optimizer point: gauge-fix, and if the point violates
/// the constraints, retract it along the segment toward the most-feasible
/// unit coefficient vector (each `eᵢ` reconstructs the sampled input
/// `σ_in,i`, a physical state) until it re-enters the feasible set.
fn interpret_optimum(ctx: &Context<'_>, raw: &[f64], tol: f64) -> InterpretedPoint {
    if raw.iter().any(|v| !v.is_finite()) {
        return InterpretedPoint::Degenerate;
    }
    let Some(alphas) = ctx.normalize(raw) else {
        return InterpretedPoint::Degenerate;
    };
    let n_alphas = alphas.len();
    let v = ctx.violation(&alphas);
    if v <= tol {
        let objective = ctx.guarantee_value(&alphas);
        return InterpretedPoint::Feasible { objective, alphas };
    }
    // Base point: the sampled-input coefficient vector with least violation.
    let mut base = vec![0.0; n_alphas];
    let mut best = (f64::INFINITY, 0usize);
    for i in 0..n_alphas {
        let mut e = vec![0.0; n_alphas];
        e[i] = 1.0;
        let vi = ctx.violation(&e);
        if vi < best.0 {
            best = (vi, i);
        }
    }
    if best.0 > tol {
        // No feasible anchor — report the raw point as infeasible.
        morph_trace::counter("no_feasible_anchor", 1);
        return InterpretedPoint::Infeasible {
            objective: ctx.guarantee_value(&alphas),
            alphas,
        };
    }
    base[best.1] = 1.0;
    morph_trace::counter("infeasible_retractions", 1);
    // Largest t ∈ [0, 1] with violation(base + t(α − base)) ≤ tol.
    let blend = |t: f64| -> Vec<f64> {
        base.iter()
            .zip(&alphas)
            .map(|(&b, &a)| b + t * (a - b))
            .collect()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ctx.violation(&blend(mid)) <= tol {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let repaired = blend(lo);
    let objective = ctx.guarantee_value(&repaired);
    InterpretedPoint::Feasible {
        objective,
        alphas: repaired,
    }
}

/// Fits the Beta accuracy model by probing random inputs against the
/// characterized span (the distribution of Fig 6).
pub fn fit_confidence_model(
    characterization: &Characterization,
    probes: usize,
    rng: &mut StdRng,
) -> ConfidenceModel {
    use morph_clifford::InputEnsemble;
    let _trace = morph_trace::span("validate/confidence");
    let n_in = characterization.inputs[0].state.n_qubits();
    let any_trace = characterization
        .traces
        .keys()
        .next()
        .copied()
        .expect("characterization has tracepoints");
    let f = characterization.approximation(any_trace);
    let probe_inputs = InputEnsemble::Clifford.generate(n_in, probes.max(2), rng);
    let samples: Vec<f64> = probe_inputs
        .iter()
        .map(|p| f.representation_overlap(&p.rho).unwrap_or(0.0))
        .collect();
    let model = ConfidenceModel::fit(&samples);
    morph_trace::counter("confidence_probes", samples.len() as u64);
    morph_trace::gauge("beta1", model.beta1);
    morph_trace::gauge("beta2", model.beta2);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::AssumeGuarantee;
    use crate::characterize::{characterize, CharacterizationConfig};
    use crate::predicate::{RelationPredicate, StatePredicate};
    use morph_clifford::InputEnsemble;
    use morph_qprog::Circuit;
    use rand::SeedableRng;

    /// Identity program: input on qubit 0 traced before and after.
    fn identity_program() -> Circuit {
        let mut c = Circuit::new(1);
        c.tracepoint(1, &[0]);
        c.h(0).h(0); // identity
        c.tracepoint(2, &[0]);
        c
    }

    /// Bit-flip program.
    fn flip_program() -> Circuit {
        let mut c = Circuit::new(1);
        c.tracepoint(1, &[0]);
        c.x(0);
        c.tracepoint(2, &[0]);
        c
    }

    fn full_characterization(circuit: &Circuit, seed: u64) -> Characterization {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = CharacterizationConfig {
            ensemble: InputEnsemble::PauliProduct,
            ..CharacterizationConfig::exact(vec![0], 4)
        };
        characterize(circuit, &config, &mut rng)
    }

    #[test]
    fn identity_program_passes_equality_assertion() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new()
            .assume(morph_qprog::TracepointId(1), StatePredicate::IsPure)
            .guarantee_relation(
                morph_qprog::TracepointId(1),
                morph_qprog::TracepointId(2),
                RelationPredicate::Equal,
            );
        let mut rng = StdRng::seed_from_u64(1);
        let out = validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng);
        assert!(
            out.verdict.passed(),
            "identity must satisfy T1 == T2: {:?}",
            out.verdict
        );
        if let Verdict::Passed { confidence, .. } = out.verdict {
            assert!(
                confidence > 0.5,
                "full span ⇒ high confidence, got {confidence}"
            );
        }
    }

    #[test]
    fn flip_program_fails_equality_assertion_with_counterexample() {
        let ch = full_characterization(&flip_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let out = validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng);
        match out.verdict {
            Verdict::Failed {
                counterexample,
                max_objective,
                ..
            } => {
                assert!(
                    max_objective > 0.5,
                    "X flips states far apart: {max_objective}"
                );
                assert!(morph_linalg::is_density_matrix(&counterexample, 1e-6));
                // The counter-example must genuinely be moved by X.
                let x = morph_qsim::matrices::x();
                let flipped = x.matmul(&counterexample).matmul(&x);
                assert!((&flipped - &counterexample).frobenius_norm() > 0.3);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn flip_program_passes_flip_assertion() {
        // Guarantee: T2 equals X·T1·X — the correct spec for a NOT program.
        let ch = full_characterization(&flip_program(), 0);
        let x = morph_qsim::matrices::x();
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::custom(move |t1, t2| {
                (&x.matmul(t1).matmul(&x) - t2).frobenius_norm()
            }),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let out = validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng);
        assert!(out.verdict.passed(), "{:?}", out.verdict);
    }

    #[test]
    fn assumptions_prune_the_search_space() {
        // Flip program with guarantee "T2 == |1><1|" fails in general but
        // passes under the assumption that the input is |0><0|.
        let ch = full_characterization(&flip_program(), 0);
        let one = CMatrix::outer(
            &[morph_linalg::C64::ZERO, morph_linalg::C64::ONE],
            &[morph_linalg::C64::ZERO, morph_linalg::C64::ONE],
        );
        let zero = CMatrix::outer(
            &[morph_linalg::C64::ONE, morph_linalg::C64::ZERO],
            &[morph_linalg::C64::ONE, morph_linalg::C64::ZERO],
        );
        let unconstrained = AssumeGuarantee::new().guarantee_state(
            morph_qprog::TracepointId(2),
            StatePredicate::equals(one.clone()),
        );
        let constrained = AssumeGuarantee::new()
            .assume(StateRef::Input, StatePredicate::equals(zero))
            .guarantee_state(morph_qprog::TracepointId(2), StatePredicate::equals(one));
        let mut rng = StdRng::seed_from_u64(4);
        let config = ValidationConfig {
            decision_threshold: 0.05,
            ..Default::default()
        };
        let out_u = validate_assertion(&unconstrained, &ch, &config, &mut rng);
        let out_c = validate_assertion(&constrained, &ch, &config, &mut rng);
        assert!(
            !out_u.verdict.passed(),
            "without assumption some input violates"
        );
        assert!(
            out_c.verdict.passed(),
            "with input pinned to |0> the guarantee holds: {:?}",
            out_c.verdict
        );
    }

    #[test]
    fn solver_kinds_all_decide_the_easy_case() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        for solver in [
            SolverKind::GradientAscent,
            SolverKind::Genetic,
            SolverKind::Annealing,
            SolverKind::Quadratic,
            SolverKind::NelderMead,
        ] {
            let mut rng = StdRng::seed_from_u64(5);
            let config = ValidationConfig {
                solver,
                ..Default::default()
            };
            let out = validate_assertion(&assertion, &ch, &config, &mut rng);
            assert!(
                out.verdict.passed(),
                "{} failed the identity case",
                solver.name()
            );
        }
    }

    #[test]
    fn solver_kinds_all_find_the_flip_bug() {
        let ch = full_characterization(&flip_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        for solver in [
            SolverKind::GradientAscent,
            SolverKind::Genetic,
            SolverKind::Annealing,
            SolverKind::Quadratic,
            SolverKind::NelderMead,
        ] {
            let mut rng = StdRng::seed_from_u64(6);
            let config = ValidationConfig {
                solver,
                ..Default::default()
            };
            let out = validate_assertion(&assertion, &ch, &config, &mut rng);
            assert!(
                !out.verdict.passed(),
                "{} missed the flip bug: {:?} optimum {:?}",
                solver.name(),
                out.verdict,
                out.optimum
            );
        }
    }

    #[test]
    #[should_panic(expected = "uncharacterized tracepoint")]
    fn unknown_tracepoint_rejected() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new()
            .guarantee_state(morph_qprog::TracepointId(9), StatePredicate::IsPure);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng);
    }

    #[test]
    fn zero_restart_override_is_a_structured_error() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let config = ValidationConfig {
            solver_restarts: Some(0),
            ..Default::default()
        };
        match try_validate_assertion(&assertion, &ch, &config, &mut rng) {
            Err(ValidationError::Solver(morph_optimize::SolveError::NoRestarts { .. })) => {}
            other => panic!("expected NoRestarts error, got {other:?}"),
        }
    }

    #[test]
    fn restart_override_still_validates() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let config = ValidationConfig {
            solver_restarts: Some(2),
            ..Default::default()
        };
        let out = try_validate_assertion(&assertion, &ch, &config, &mut rng).unwrap();
        assert!(out.verdict.passed(), "{:?}", out.verdict);
    }

    /// Regression: a NaN raw point used to slip through `interpret_optimum`
    /// as *feasible* — the retraction blend `b + t·(NaN − b)` is NaN at
    /// every `t` while the bisection converged to `t = 0` — and before
    /// that, as `(NEG_INFINITY, false, [0.0; n])`, indistinguishable from a
    /// genuinely infeasible point.
    #[test]
    fn nan_raw_point_is_degenerate() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::Equal,
        );
        let ctx = Context::new(&assertion, &ch);
        let n = ctx.input_basis.len();
        let mut raw = vec![0.3; n];
        raw[0] = f64::NAN;
        assert_eq!(
            interpret_optimum(&ctx, &raw, 2e-2),
            InterpretedPoint::Degenerate
        );
        // An un-normalizable gauge sum is degenerate too.
        assert_eq!(
            interpret_optimum(&ctx, &vec![0.0; n], 2e-2),
            InterpretedPoint::Degenerate
        );
    }

    /// Regression: when no sampled-input anchor is feasible, the point must
    /// come back as `Infeasible` with its real objective — not retracted,
    /// not degenerate, and never panicking.
    #[test]
    fn all_anchors_infeasible_reports_infeasible_point() {
        let ch = full_characterization(&identity_program(), 0);
        // An assumption nothing satisfies: constant violation 1.
        let assertion = AssumeGuarantee::new()
            .assume(StateRef::Input, StatePredicate::custom(|_| 1.0))
            .guarantee_relation(
                morph_qprog::TracepointId(1),
                morph_qprog::TracepointId(2),
                RelationPredicate::Equal,
            );
        let ctx = Context::new(&assertion, &ch);
        let n = ctx.input_basis.len();
        let raw = vec![1.0 / n as f64; n];
        match interpret_optimum(&ctx, &raw, 2e-2) {
            InterpretedPoint::Infeasible { objective, alphas } => {
                assert!(objective.is_finite());
                assert_eq!(alphas.len(), n);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
        // End to end the assertion passes (no feasible violating input) and
        // the outcome is marked non-degenerate.
        let mut rng = StdRng::seed_from_u64(3);
        let out = try_validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng)
            .unwrap();
        assert!(out.verdict.passed(), "{:?}", out.verdict);
    }

    /// A guarantee that evaluates to NaN everywhere must not crash the
    /// pipeline: the solver's surviving point is the (finite) degenerate
    /// plateau, interpretation flags it, and the candidate pool's NaN
    /// guarantee values are ignored.
    #[test]
    fn nan_guarantee_flags_degenerate_and_passes() {
        let ch = full_characterization(&identity_program(), 0);
        let assertion = AssumeGuarantee::new().guarantee_relation(
            morph_qprog::TracepointId(1),
            morph_qprog::TracepointId(2),
            RelationPredicate::custom(|_, _| f64::NAN),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let out = try_validate_assertion(&assertion, &ch, &ValidationConfig::default(), &mut rng)
            .unwrap();
        assert!(out.verdict.passed(), "{:?}", out.verdict);
        if let Verdict::Passed { max_objective, .. } = out.verdict {
            assert!(max_objective.is_finite());
        }
    }
}
