//! Isomorphism-based approximation functions (Section 5.2, Theorem 1).
//!
//! Quantum evolution is linear in the density matrix, so the tracepoint
//! state under *any* input is the same linear combination of sampled
//! tracepoint states as the input is of sampled inputs:
//!
//! ```text
//! ρ_in = Σ αᵢ σ_in,i   ⇒   ρ_T = Σ αᵢ σ_T,i
//! ```
//!
//! [`ApproximationFunction`] stores the sampled `⟨σ_in,i, σ_T,i⟩` pairs and
//! evaluates the mapping with one least-squares solve plus a weighted sum —
//! the linear-cost replacement for re-executing the program that drives
//! Fig 11(a).

use morph_linalg::{hs_accuracy, recombine, solve_sym_regularized, CMatrix, SolveError};
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

/// The characterized relation `ρ_T = f(ρ_in)` for one tracepoint.
///
/// # Examples
///
/// ```
/// use morph_linalg::{C64, CMatrix};
/// use morphqpv::ApproximationFunction;
///
/// // Program is a NOT gate: |0>↦|1>, |1>↦|0>.
/// let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
/// let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
/// let f = ApproximationFunction::new(
///     vec![zero.clone(), one.clone()],
///     vec![one.clone(), zero.clone()],
/// )?;
/// // A mixed input maps to the flipped mixture.
/// let mixed = &zero.scale_re(0.8) + &one.scale_re(0.2);
/// let out = f.predict(&mixed)?;
/// assert!((out[(0, 0)].re - 0.2).abs() < 1e-9);
/// # Ok::<(), morph_linalg::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApproximationFunction {
    inputs: Vec<CMatrix>,
    traces: Vec<CMatrix>,
    /// Cached Gram matrix of the sampled inputs (Hilbert–Schmidt inner
    /// products), built once so each decomposition costs one projection
    /// plus a small solve.
    gram: Vec<Vec<f64>>,
}

impl ApproximationFunction {
    /// Builds the function from sampled `(input, tracepoint)` density-matrix
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if the lists are empty,
    /// differ in length, or are internally inconsistent in shape.
    pub fn new(inputs: Vec<CMatrix>, traces: Vec<CMatrix>) -> Result<Self, SolveError> {
        if inputs.is_empty() || inputs.len() != traces.len() {
            return Err(SolveError::DimensionMismatch);
        }
        let din = inputs[0].rows();
        let dt = traces[0].rows();
        for m in &inputs {
            if m.rows() != din || !m.is_square() {
                return Err(SolveError::DimensionMismatch);
            }
        }
        for m in &traces {
            if m.rows() != dt || !m.is_square() {
                return Err(SolveError::DimensionMismatch);
            }
        }
        let k = inputs.len();
        let mut gram = vec![vec![0.0f64; k]; k];
        for i in 0..k {
            for j in i..k {
                let v = inputs[i].hs_inner_re(&inputs[j]);
                gram[i][j] = v;
                gram[j][i] = v;
            }
        }
        Ok(ApproximationFunction {
            inputs,
            traces,
            gram,
        })
    }

    /// Number of sampled pairs (`N_sample`).
    pub fn n_samples(&self) -> usize {
        self.inputs.len()
    }

    /// Dimension of the input space.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].rows()
    }

    /// Dimension of the tracepoint space.
    pub fn trace_dim(&self) -> usize {
        self.traces[0].rows()
    }

    /// The sampled input density matrices.
    pub fn sampled_inputs(&self) -> &[CMatrix] {
        &self.inputs
    }

    /// The sampled tracepoint density matrices.
    pub fn sampled_traces(&self) -> &[CMatrix] {
        &self.traces
    }

    /// Step 1 of Theorem 1: least-squares coefficients `α` with
    /// `ρ_in ≈ Σ αᵢ σ_in,i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn decompose(&self, rho_in: &CMatrix) -> Result<Vec<f64>, SolveError> {
        if rho_in.rows() != self.input_dim() || !rho_in.is_square() {
            return Err(SolveError::DimensionMismatch);
        }
        let b: Vec<f64> = self.inputs.iter().map(|m| m.hs_inner_re(rho_in)).collect();
        solve_sym_regularized(&self.gram, &b)
    }

    /// Step 2 of Theorem 1: reconstruct the tracepoint state from
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `alphas.len() != self.n_samples()`.
    pub fn apply(&self, alphas: &[f64]) -> CMatrix {
        recombine(&self.traces, alphas)
    }

    /// Reconstructs the *input* state a coefficient vector represents.
    ///
    /// # Panics
    ///
    /// Panics if `alphas.len() != self.n_samples()`.
    pub fn reconstruct_input(&self, alphas: &[f64]) -> CMatrix {
        recombine(&self.inputs, alphas)
    }

    /// Full Theorem 1 evaluation: `f(ρ_in)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn predict(&self, rho_in: &CMatrix) -> Result<CMatrix, SolveError> {
        Ok(self.apply(&self.decompose(rho_in)?))
    }

    /// Approximation accuracy for an input (Theorem 2's metric): the
    /// Hilbert–Schmidt overlap between the input and its projection onto
    /// the sampled span. Unitarity preserves this overlap downstream, so it
    /// equals the tracepoint-state accuracy for unitary programs.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn representation_accuracy(&self, rho_in: &CMatrix) -> Result<f64, SolveError> {
        let alphas = self.decompose(rho_in)?;
        let projected = self.reconstruct_input(&alphas);
        Ok(hs_accuracy(&projected, rho_in))
    }

    /// The Hilbert–Schmidt overlap `tr(ρ_proj ρ_in)` between an input and
    /// its projection onto the sampled span — the paper's stated accuracy
    /// metric, exact for pure inputs (where it equals ⟨ψ|P|ψ⟩) and O(d²)
    /// instead of the spectral computation in
    /// [`Self::representation_accuracy`].
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn representation_overlap(&self, rho_in: &CMatrix) -> Result<f64, SolveError> {
        let alphas = self.decompose(rho_in)?;
        let projected = self.reconstruct_input(&alphas);
        Ok(projected.hs_inner_re(rho_in).clamp(0.0, 1.0))
    }

    /// Composes two characterized relations (the Fig 14 optimization):
    /// `self` maps `ρ_in → ρ_mid`, `next` maps `ρ_mid → ρ_out`; the result
    /// evaluates `next(self(ρ_in))`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if the spaces do not chain.
    pub fn chain(&self, next: &ApproximationFunction) -> Result<ChainedApproximation, SolveError> {
        if self.trace_dim() != next.input_dim() {
            return Err(SolveError::DimensionMismatch);
        }
        Ok(ChainedApproximation {
            stages: vec![self.clone(), next.clone()],
        })
    }
}

impl Serialize for ApproximationFunction {
    /// Persists only the sampled pairs; the Gram matrix is a pure function
    /// of the inputs and is rebuilt on load by [`ApproximationFunction::new`]
    /// (deterministically, so a reloaded function is bit-identical).
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("inputs".to_string(), self.inputs.to_value());
        m.insert("traces".to_string(), self.traces.to_value());
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for ApproximationFunction {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let inputs: Vec<CMatrix> = Vec::from_value(value.require("inputs")?)?;
        let traces: Vec<CMatrix> = Vec::from_value(value.require("traces")?)?;
        ApproximationFunction::new(inputs, traces)
            .map_err(|e| FromValueError::new(format!("inconsistent approximation data: {e:?}")))
    }
}

/// A pipeline of approximation functions through intermediate tracepoints,
/// used to cut noise accumulation between distant tracepoints (Fig 14).
#[derive(Debug, Clone)]
pub struct ChainedApproximation {
    stages: Vec<ApproximationFunction>,
}

impl ChainedApproximation {
    /// Builds a chain from consecutive stages.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if the list is empty or
    /// adjacent stages do not compose.
    pub fn new(stages: Vec<ApproximationFunction>) -> Result<Self, SolveError> {
        if stages.is_empty() {
            return Err(SolveError::DimensionMismatch);
        }
        for pair in stages.windows(2) {
            if pair[0].trace_dim() != pair[1].input_dim() {
                return Err(SolveError::DimensionMismatch);
            }
        }
        Ok(ChainedApproximation { stages })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if there are no stages (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Evaluates the whole chain on an input.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn predict(&self, rho_in: &CMatrix) -> Result<CMatrix, SolveError> {
        self.predict_with_mitigation(rho_in, Mitigation::None)
    }

    /// Evaluates the chain, applying the chosen error mitigation to each
    /// intermediate state. This is what makes intermediate tracepoints pay
    /// off under hardware noise (Fig 14): each stage's characterization
    /// carries only its own segment's decoherence, and restoring the state
    /// between stages stops the damping from compounding.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho_in` has the wrong dimension.
    pub fn predict_with_mitigation(
        &self,
        rho_in: &CMatrix,
        mitigation: Mitigation,
    ) -> Result<CMatrix, SolveError> {
        let mut rho = rho_in.clone();
        let last = self.stages.len() - 1;
        for (i, stage) in self.stages.iter().enumerate() {
            rho = stage.predict(&rho)?;
            if i < last {
                rho = mitigation.apply(&rho);
            }
        }
        Ok(rho)
    }
}

/// Between-stage state restoration used by
/// [`ChainedApproximation::predict_with_mitigation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Pass intermediate states through unchanged.
    None,
    /// Project onto the density-matrix set (PSD + unit trace) — undoes the
    /// trace/negativity drift of noisy, shot-limited characterization.
    Project,
    /// Replace by the dominant-eigenvector projector — valid when the
    /// ideal intermediate states are known pure (unitary segments), where
    /// it cancels depolarizing contraction entirely.
    Purify,
}

impl Mitigation {
    fn apply(self, rho: &CMatrix) -> CMatrix {
        match self {
            Mitigation::None => rho.clone(),
            Mitigation::Project => morph_linalg::project_to_density(rho),
            Mitigation::Purify => {
                let eig = morph_linalg::eigh(rho);
                let v = eig.vector(0);
                CMatrix::outer(&v, &v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_linalg::C64;
    use morph_qsim::matrices;

    fn ket(v: &[C64]) -> CMatrix {
        CMatrix::outer(v, v)
    }

    fn single_qubit_pairs(u: &CMatrix) -> (Vec<CMatrix>, Vec<CMatrix>) {
        // The paper's Fig 4 ensemble: |+>, |+i>, |1> (plus |0> for span).
        let h = 1.0 / 2f64.sqrt();
        let states = vec![
            ket(&[C64::real(h), C64::real(h)]),
            ket(&[C64::real(h), C64::new(0.0, h)]),
            ket(&[C64::ZERO, C64::ONE]),
            ket(&[C64::ONE, C64::ZERO]),
        ];
        let traces = states
            .iter()
            .map(|rho| u.matmul(rho).matmul(&u.dagger()))
            .collect();
        (states, traces)
    }

    #[test]
    fn exact_for_in_span_inputs() {
        let u = matrices::h();
        let (inputs, traces) = single_qubit_pairs(&u);
        let f = ApproximationFunction::new(inputs, traces).unwrap();
        // Any single-qubit density matrix is in the span of those four.
        let test = ket(&[C64::real(0.6), C64::new(0.64, 0.48)]);
        let predicted = f.predict(&test).unwrap();
        let truth = u.matmul(&test).matmul(&u.dagger());
        assert!(predicted.approx_eq(&truth, 1e-9));
        assert!((f.representation_accuracy(&test).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alphas_match_paper_fig4_expectations() {
        // For the Fig 4 example the coefficients are the expectations on
        // the sampled states (up to the completion term).
        let u = CMatrix::identity(2);
        let (inputs, traces) = single_qubit_pairs(&u);
        let f = ApproximationFunction::new(inputs, traces).unwrap();
        let rho = ket(&[C64::ONE, C64::ZERO]); // |0><0|
        let alphas = f.decompose(&rho).unwrap();
        let rebuilt = f.reconstruct_input(&alphas);
        assert!(rebuilt.approx_eq(&rho, 1e-9));
    }

    #[test]
    fn under_approximation_outside_span() {
        // Only diagonal samples: coherences cannot be represented.
        let zero = ket(&[C64::ONE, C64::ZERO]);
        let one = ket(&[C64::ZERO, C64::ONE]);
        let f = ApproximationFunction::new(
            vec![zero.clone(), one.clone()],
            vec![zero.clone(), one.clone()],
        )
        .unwrap();
        let h = 1.0 / 2f64.sqrt();
        let plus = ket(&[C64::real(h), C64::real(h)]);
        let acc = f.representation_accuracy(&plus).unwrap();
        assert!(acc < 0.9, "plus state is not representable, acc={acc}");
        // And accuracy grows to 1 when the span is completed.
        let complete = ApproximationFunction::new(
            vec![
                zero.clone(),
                one.clone(),
                plus.clone(),
                ket(&[C64::real(h), C64::new(0.0, h)]),
            ],
            vec![
                zero,
                one,
                plus.clone(),
                ket(&[C64::real(h), C64::new(0.0, h)]),
            ],
        )
        .unwrap();
        assert!((complete.representation_accuracy(&plus).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_samples_never_hurt_accuracy() {
        use morph_clifford::InputEnsemble;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let u = matrices::ry(0.7).kron(&matrices::h());
        let all = InputEnsemble::PauliProduct.generate(2, 16, &mut rng);
        let test_inputs = InputEnsemble::Clifford.generate(2, 6, &mut rng);
        let mut last_mean = 0.0;
        for k in [2usize, 6, 10, 16] {
            let inputs: Vec<CMatrix> = all[..k].iter().map(|i| i.rho.clone()).collect();
            let traces: Vec<CMatrix> = inputs
                .iter()
                .map(|r| u.matmul(r).matmul(&u.dagger()))
                .collect();
            let f = ApproximationFunction::new(inputs, traces).unwrap();
            let mean: f64 = test_inputs
                .iter()
                .map(|t| f.representation_accuracy(&t.rho).unwrap())
                .sum::<f64>()
                / test_inputs.len() as f64;
            assert!(
                mean >= last_mean - 0.05,
                "accuracy regressed at k={k}: {mean} < {last_mean}"
            );
            last_mean = mean;
        }
        assert!(
            (last_mean - 1.0).abs() < 1e-6,
            "full span must be exact, got {last_mean}"
        );
    }

    #[test]
    fn chain_composes_two_unitaries() {
        let u1 = matrices::h();
        let u2 = matrices::ry(0.9);
        let (in1, tr1) = single_qubit_pairs(&u1);
        let f1 = ApproximationFunction::new(in1, tr1).unwrap();
        let (in2, tr2) = single_qubit_pairs(&u2);
        let f2 = ApproximationFunction::new(in2, tr2).unwrap();
        let chain = f1.chain(&f2).unwrap();
        let test = ket(&[C64::real(0.8), C64::real(0.6)]);
        let u = u2.matmul(&u1);
        let truth = u.matmul(&test).matmul(&u.dagger());
        assert!(chain.predict(&test).unwrap().approx_eq(&truth, 1e-9));
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn dimension_errors_are_reported() {
        let zero = ket(&[C64::ONE, C64::ZERO]);
        assert!(ApproximationFunction::new(vec![], vec![]).is_err());
        assert!(ApproximationFunction::new(vec![zero.clone()], vec![]).is_err());
        let f = ApproximationFunction::new(vec![zero.clone()], vec![zero]).unwrap();
        let big = CMatrix::identity(4);
        assert!(f.predict(&big).is_err());
    }

    #[test]
    fn purify_mitigation_undoes_depolarizing_contraction() {
        // Stage = identity with depolarizing noise (Bloch contraction 0.6).
        let contract = |rho: &CMatrix| -> CMatrix {
            let mixed = CMatrix::identity(2).scale_re(0.5);
            &rho.scale_re(0.6) + &mixed.scale_re(0.4)
        };
        let h = 1.0 / 2f64.sqrt();
        let basis = vec![
            ket(&[C64::ONE, C64::ZERO]),
            ket(&[C64::ZERO, C64::ONE]),
            ket(&[C64::real(h), C64::real(h)]),
            ket(&[C64::real(h), C64::new(0.0, h)]),
        ];
        let traces: Vec<CMatrix> = basis.iter().map(contract).collect();
        let stage = ApproximationFunction::new(basis.clone(), traces).unwrap();
        let chain = ChainedApproximation::new(vec![stage.clone(), stage]).unwrap();
        let test = ket(&[C64::real(0.8), C64::real(0.6)]);
        let raw = chain.predict(&test).unwrap();
        let mitigated = chain
            .predict_with_mitigation(&test, Mitigation::Purify)
            .unwrap();
        // Raw chaining contracts twice (0.36); purification between stages
        // removes one contraction.
        let raw_acc = morph_linalg::hs_accuracy(&raw, &test);
        let mit_acc = morph_linalg::hs_accuracy(&mitigated, &test);
        assert!(
            mit_acc > raw_acc + 0.1,
            "mitigated {mit_acc} vs raw {raw_acc}"
        );
    }

    #[test]
    fn mixed_measurement_program_stays_linear() {
        // Theorem 1's measurement extension: channel ρ ↦ Σ P ρ P (dephase).
        let zero = ket(&[C64::ONE, C64::ZERO]);
        let one = ket(&[C64::ZERO, C64::ONE]);
        let h = 1.0 / 2f64.sqrt();
        let plus = ket(&[C64::real(h), C64::real(h)]);
        let minus = ket(&[C64::real(h), C64::real(-h)]);
        let dephase = |rho: &CMatrix| CMatrix::from_diag(&[rho[(0, 0)], rho[(1, 1)]]);
        let inputs = vec![zero.clone(), one.clone(), plus.clone(), minus.clone()];
        let traces: Vec<CMatrix> = inputs.iter().map(&dephase).collect();
        let f = ApproximationFunction::new(inputs, traces).unwrap();
        let test = ket(&[C64::real(0.6), C64::new(0.48, 0.64)]);
        let predicted = f.predict(&test).unwrap();
        assert!(predicted.approx_eq(&dephase(&test), 1e-9));
    }
}
