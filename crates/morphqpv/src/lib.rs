//! # MorphQPV: isomorphism-based confident verification of quantum programs
//!
//! A from-scratch Rust implementation of *MorphQPV: Exploiting Isomorphism
//! in Quantum Programs to Facilitate Confident Verification* (ASPLOS 2024).
//!
//! The methodology has three steps, each a module here:
//!
//! 1. **Assertion statement** — label runtime states with tracepoint
//!    pragmas (`T <id> q[..]` in [`morph_qprog`]) and relate them with an
//!    [`AssumeGuarantee`] assertion built from [`StatePredicate`]s and
//!    [`RelationPredicate`]s (Definition 1).
//! 2. **Isomorphism-based characterization** — [`characterize`] runs the
//!    program under a small sampled input ensemble and fits one
//!    [`ApproximationFunction`] per tracepoint: because quantum evolution
//!    is linear in the density matrix, the tracepoint state under *any*
//!    input is the same linear combination of sampled tracepoint states as
//!    the input is of sampled inputs (Theorem 1). Accuracy follows
//!    Theorem 2; sampling cost can be pruned with the Section 5.4
//!    strategies ([`adaptive_inputs`], [`constant_pinned_inputs`],
//!    probabilities-only readout).
//! 3. **Validation** — [`validate_assertion`] maximizes the guarantee
//!    objective over the combination coefficients under the assumption
//!    constraints (Section 6.1). A positive maximum yields a concrete
//!    counter-example input; otherwise [`ConfidenceModel`] (Theorem 3)
//!    bounds the probability that a counter-example escaped.
//!
//! The [`Verifier`] builder packages the whole flow.
//!
//! ## Parallelism
//!
//! Characterization fans the per-input sampling runs out over worker
//! threads: set [`CharacterizationConfig::parallelism`] to `0` for all
//! available cores (the default), `1` for a serial run, or `k` for exactly
//! `k` workers. Each sampled input owns an RNG stream derived from one
//! master seed and its input index, and per-worker cost ledgers merge
//! exactly, so the traces and the [`Characterization::ledger`] are
//! **bit-identical at every setting** — worker count changes wall-clock
//! time only (see DESIGN.md "Deterministic parallelism").
//!
//! ## Quickstart
//!
//! ```
//! use morphqpv::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A (buggy?) identity program.
//! let mut program = morph_qprog::Circuit::new(1);
//! program.tracepoint(1, &[0]);
//! program.h(0);
//! program.h(0);
//! program.tracepoint(2, &[0]);
//!
//! let report = Verifier::new(program)
//!     .input_qubits(&[0])
//!     .samples(4)
//!     .assert_that(
//!         AssumeGuarantee::new()
//!             .assume(TracepointId(1), StatePredicate::IsPure)
//!             .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal),
//!     )
//!     .run(&mut StdRng::seed_from_u64(0));
//! assert!(report.all_passed());
//! ```

mod approx;
mod assertion;
mod cache;
mod cancel;
mod characterize;
mod confidence;
mod counterexample;
mod error;
mod incremental;
mod landscape;
mod predicate;
pub mod prelude;
mod prune;
mod ptm;
mod segmented;
mod spec;
mod validate;
mod verifier;

pub use approx::{ApproximationFunction, ChainedApproximation, Mitigation};
pub use assertion::{AssumeGuarantee, Guarantee, StateRef};
pub use cache::{
    characterization_fingerprint, characterization_fingerprint_with_inputs, characterize_cached,
    characterize_with_inputs_cached, CharacterizationCache, ARTIFACT_VERSION, FINGERPRINT_DOMAIN,
};
pub use cancel::{CancelToken, Cancelled};
pub use characterize::{
    char_batch_size, characterize, characterize_with_inputs, try_characterize,
    try_characterize_with_inputs, Characterization, CharacterizationConfig,
    CharacterizationConfigBuilder, SweepMode,
};
pub use confidence::{regularized_incomplete_beta, ConfidenceModel};
// Backend selection surfaces in configs and reports; re-export the types
// so downstream crates don't need direct morph-backend/morph-qprog deps.
pub use counterexample::CounterExample;
pub use error::MorphError;
pub use incremental::{
    characterize_incremental, characterize_segment, incremental_for_seed, segment_fingerprint,
    segment_plan, segment_seed, stage_function, try_characterize_incremental,
    IncrementalCharacterization, SegmentArtifact, SegmentError, SegmentPlan, SegmentReport,
    SegmentStage, SegmentedCache, SegmentedConfig, DEFAULT_SEGMENT_GATES, SEGMENT_CUT_DOMAIN,
    SEGMENT_DOMAIN,
};
pub use landscape::{input_landscape, landscape_peak, LandscapePoint};
pub use morph_backend::{BackendChoice, BackendKind};
// The ensemble and explicit-input types appear in the `Verifier` builder
// surface; re-export them so callers configure a run without a direct
// morph-clifford dep.
pub use morph_clifford::{InputEnsemble, InputState};
pub use morph_qprog::BackendMode;
pub use predicate::{RelationPredicate, StatePredicate};
pub use prune::{adaptive_inputs, adaptive_operator_inputs, constant_pinned_inputs};
pub use ptm::PauliTransferMatrix;
#[allow(deprecated)]
pub use segmented::characterize_segmented;
pub use segmented::{try_characterize_segmented, SegmentedCharacterization};
pub use spec::{assertions_from_source, parse_assertion, ParseSpecError};
pub use validate::{
    fit_confidence_model, try_validate_assertion, validate_assertion, SolverKind, ValidationConfig,
    ValidationError, ValidationOutcome, Verdict,
};
pub use verifier::{verify_source, CacheSummary, RunReport, VerificationReport, Verifier};
