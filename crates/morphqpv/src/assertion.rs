//! Assume–guarantee assertions over tracepoint states (Definition 1).

use morph_qprog::TracepointId;

use crate::predicate::{RelationPredicate, StatePredicate};

/// A reference to a verified state: either a tracepoint capture or the
/// program input itself (which the approximation represents exactly as
/// `Σ αᵢ σ_in,i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StateRef {
    /// The reconstructed program input on the input qubits.
    Input,
    /// The state captured at a tracepoint.
    Tracepoint(TracepointId),
}

impl From<TracepointId> for StateRef {
    fn from(id: TracepointId) -> Self {
        StateRef::Tracepoint(id)
    }
}

impl std::fmt::Display for StateRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateRef::Input => write!(f, "ρ_in"),
            StateRef::Tracepoint(id) => write!(f, "ρ_{id}"),
        }
    }
}

/// The guarantee clause: a single-state predicate or a two-state relation.
#[derive(Debug, Clone)]
pub enum Guarantee {
    /// `P(ρ)` on one state.
    Single(StateRef, StatePredicate),
    /// `P(ρ₁, ρ₂)` relating two states — possibly at different program
    /// times, the capability prior assertion schemes lack.
    Relation(StateRef, StateRef, RelationPredicate),
}

impl Guarantee {
    /// The states this guarantee reads.
    pub fn state_refs(&self) -> Vec<StateRef> {
        match self {
            Guarantee::Single(s, _) => vec![*s],
            Guarantee::Relation(a, b, _) => vec![*a, *b],
        }
    }
}

/// An assume–guarantee assertion (Definition 1):
/// when every assumption `Pₖ(ρ) ≤ 0` holds, the guarantee must hold too.
/// The assertion **fails** iff some input satisfies all assumptions while
/// violating the guarantee.
///
/// # Examples
///
/// The teleportation assertion of Equation 7 — pure input and output must
/// be equal:
///
/// ```
/// use morph_qprog::TracepointId;
/// use morphqpv::{AssumeGuarantee, Guarantee, RelationPredicate, StatePredicate, StateRef};
///
/// let assertion = AssumeGuarantee::new()
///     .assume(StateRef::Tracepoint(TracepointId(1)), StatePredicate::IsPure)
///     .assume(StateRef::Tracepoint(TracepointId(2)), StatePredicate::IsPure)
///     .guarantee(Guarantee::Relation(
///         StateRef::Tracepoint(TracepointId(1)),
///         StateRef::Tracepoint(TracepointId(2)),
///         RelationPredicate::Equal,
///     ));
/// assert_eq!(assertion.assumptions().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AssumeGuarantee {
    assumptions: Vec<(StateRef, StatePredicate)>,
    guarantee: Option<Guarantee>,
}

impl AssumeGuarantee {
    /// An empty assertion; add assumptions and a guarantee with the builder
    /// methods.
    pub fn new() -> Self {
        AssumeGuarantee {
            assumptions: Vec::new(),
            guarantee: None,
        }
    }

    /// Adds an assumption `P(ρ_state) ≤ 0`.
    pub fn assume(mut self, state: impl Into<StateRef>, predicate: StatePredicate) -> Self {
        self.assumptions.push((state.into(), predicate));
        self
    }

    /// Sets the guarantee clause.
    pub fn guarantee(mut self, guarantee: Guarantee) -> Self {
        self.guarantee = Some(guarantee);
        self
    }

    /// Shorthand: guarantee a single-state predicate.
    pub fn guarantee_state(self, state: impl Into<StateRef>, predicate: StatePredicate) -> Self {
        self.guarantee(Guarantee::Single(state.into(), predicate))
    }

    /// Shorthand: guarantee a relation between two states.
    pub fn guarantee_relation(
        self,
        a: impl Into<StateRef>,
        b: impl Into<StateRef>,
        predicate: RelationPredicate,
    ) -> Self {
        self.guarantee(Guarantee::Relation(a.into(), b.into(), predicate))
    }

    /// The assumption clauses.
    pub fn assumptions(&self) -> &[(StateRef, StatePredicate)] {
        &self.assumptions
    }

    /// The guarantee clause.
    ///
    /// # Panics
    ///
    /// Panics if no guarantee was set — an assertion without a guarantee is
    /// a construction error.
    pub fn guarantee_clause(&self) -> &Guarantee {
        self.guarantee
            .as_ref()
            .expect("assertion has no guarantee clause")
    }

    /// `true` once a guarantee has been set.
    pub fn is_complete(&self) -> bool {
        self.guarantee.is_some()
    }

    /// Every state the assertion references (assumptions + guarantee).
    pub fn state_refs(&self) -> Vec<StateRef> {
        let mut refs: Vec<StateRef> = self.assumptions.iter().map(|(s, _)| *s).collect();
        if let Some(g) = &self.guarantee {
            refs.extend(g.state_refs());
        }
        refs.sort();
        refs.dedup();
        refs
    }
}

impl Default for AssumeGuarantee {
    fn default() -> Self {
        AssumeGuarantee::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::TracepointId;

    #[test]
    fn builder_collects_clauses() {
        let a = AssumeGuarantee::new()
            .assume(TracepointId(1), StatePredicate::IsPure)
            .assume(StateRef::Input, StatePredicate::IsPure)
            .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal);
        assert_eq!(a.assumptions().len(), 2);
        assert!(a.is_complete());
        let refs = a.state_refs();
        assert!(refs.contains(&StateRef::Input));
        assert!(refs.contains(&StateRef::Tracepoint(TracepointId(2))));
        assert_eq!(refs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "no guarantee")]
    fn missing_guarantee_panics_on_access() {
        let a = AssumeGuarantee::new().assume(TracepointId(1), StatePredicate::IsPure);
        let _ = a.guarantee_clause();
    }

    #[test]
    fn display_of_state_refs() {
        assert_eq!(StateRef::Input.to_string(), "ρ_in");
        assert_eq!(StateRef::Tracepoint(TracepointId(3)).to_string(), "ρ_T3");
    }
}
