//! Confidence estimation (Section 6.2, Theorem 3).
//!
//! Approximation accuracies across random inputs empirically follow a Beta
//! distribution `B(β₁, β₂)`. The probability that a counter-example hides
//! below the accuracy threshold `ε` is `I_ε(β₁, β₂)` (the regularized
//! incomplete beta function), so the verification confidence is
//! `1 − I_ε(β₁, β₂)` — a lower bound when there are multiple
//! counter-examples.

use serde::{Deserialize, Serialize};

/// A fitted Beta distribution of approximation accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceModel {
    /// Beta shape parameter β₁.
    pub beta1: f64,
    /// Beta shape parameter β₂.
    pub beta2: f64,
}

impl ConfidenceModel {
    /// Fits `B(β₁, β₂)` to accuracy samples by the method of moments,
    /// using the unbiased (Bessel-corrected) sample variance.
    ///
    /// Samples are clamped into `(0, 1)`; degenerate sample sets (a single
    /// sample, all equal, or outside the open interval) fall back to a
    /// sharp distribution at the sample mean.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot fit a distribution to no samples"
        );
        let clamped: Vec<f64> = samples.iter().map(|&x| x.clamp(1e-6, 1.0 - 1e-6)).collect();
        let n = clamped.len() as f64;
        let mean = clamped.iter().sum::<f64>() / n;
        // Unbiased variance needs n ≥ 2; one sample takes the degenerate
        // (sharp-at-the-mean) path below.
        let var = if clamped.len() < 2 {
            0.0
        } else {
            clamped.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        if var < 1e-12 {
            // Degenerate: concentrate mass at the mean with large shapes.
            let scale = 1e4;
            return ConfidenceModel {
                beta1: mean * scale,
                beta2: (1.0 - mean) * scale,
            };
        }
        // Method of moments: κ = mean(1−mean)/var − 1.
        let kappa = (mean * (1.0 - mean) / var - 1.0).max(1e-3);
        ConfidenceModel {
            beta1: (mean * kappa).max(1e-3),
            beta2: ((1.0 - mean) * kappa).max(1e-3),
        }
    }

    /// Builds the model from the paper's mean-accuracy identity
    /// `β₁/(β₁+β₂) = N_sample / 2^(N_in+1)` with a fixed concentration.
    ///
    /// The budget denominator is computed in floating point (`exp2`), so
    /// wide input registers (`n_in ≥ 63`, where a `u64` shift would
    /// overflow) degrade gracefully: the mean underflows toward its
    /// `1e-6` clamp instead of panicking or wrapping.
    pub fn from_paper_mean(n_samples: usize, n_in: usize, concentration: f64) -> Self {
        let budget = (n_in as f64 + 1.0).exp2();
        let mean = (n_samples as f64 / budget).clamp(1e-6, 1.0 - 1e-6);
        ConfidenceModel {
            beta1: (mean * concentration).max(1e-3),
            beta2: ((1.0 - mean) * concentration).max(1e-3),
        }
    }

    /// Mean accuracy `β₁ / (β₁ + β₂)`.
    pub fn mean(&self) -> f64 {
        self.beta1 / (self.beta1 + self.beta2)
    }

    /// `P(acc < ε)` — the chance an existing counter-example is missed.
    pub fn miss_probability(&self, epsilon: f64) -> f64 {
        regularized_incomplete_beta(epsilon.clamp(0.0, 1.0), self.beta1, self.beta2)
    }

    /// Theorem 3: confidence that a no-counter-example verdict is valid for
    /// all inputs, `1 − P(acc < ε)`.
    pub fn confidence(&self, epsilon: f64) -> f64 {
        1.0 - self.miss_probability(epsilon)
    }

    /// Confidence when the program has `n_counterexamples` independent
    /// counter-examples: `1 − P(acc < ε)^N` (the paper's refinement, which
    /// makes Theorem 3 a lower bound).
    pub fn confidence_with_counterexamples(&self, epsilon: f64, n_counterexamples: u32) -> f64 {
        1.0 - self
            .miss_probability(epsilon)
            .powi(n_counterexamples as i32)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (Lentz's algorithm).
///
/// # Panics
///
/// Panics if `a` or `b` is non-positive, or `x ∉ [0, 1]`.
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

/// Continued-fraction evaluation for the incomplete beta.
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation to `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1,1) = x (uniform CDF).
        for x in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!(
                (regularized_incomplete_beta(x, 1.0, 1.0) - x).abs() < 1e-10,
                "x={x}"
            );
        }
        // I_x(2,1) = x² ; I_x(1,2) = 1 − (1−x)².
        assert!((regularized_incomplete_beta(0.3, 2.0, 1.0) - 0.09).abs() < 1e-10);
        assert!((regularized_incomplete_beta(0.3, 1.0, 2.0) - 0.51).abs() < 1e-10);
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let lhs = regularized_incomplete_beta(0.37, 3.2, 1.7);
        let rhs = 1.0 - regularized_incomplete_beta(0.63, 1.7, 3.2);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_is_monotone_in_x() {
        let mut last = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = regularized_incomplete_beta(x, 2.5, 4.0);
            assert!(v >= last - 1e-12);
            last = v;
        }
        assert!((last - 1.0).abs() < 1e-10);
    }

    #[test]
    fn moment_fit_recovers_parameters() {
        // Sample from Beta(2, 5) by rejection around its density shape:
        // easier — use order statistics of uniforms: Beta(k, n+1−k).
        let mut rng = StdRng::seed_from_u64(0);
        let mut samples = Vec::new();
        for _ in 0..4000 {
            let mut u: Vec<f64> = (0..6).map(|_| rng.gen()).collect();
            u.sort_by(|a, b| a.partial_cmp(b).unwrap());
            samples.push(u[1]); // 2nd of 6 uniforms ~ Beta(2, 5)
        }
        let model = ConfidenceModel::fit(&samples);
        assert!((model.beta1 - 2.0).abs() < 0.15, "beta1={}", model.beta1);
        assert!((model.beta2 - 5.0).abs() < 0.35, "beta2={}", model.beta2);
        assert!((model.mean() - 2.0 / 7.0).abs() < 0.01);
    }

    #[test]
    fn confidence_decreases_with_epsilon() {
        let model = ConfidenceModel {
            beta1: 2.0,
            beta2: 5.0,
        };
        // Raising ε widens the accuracy band counted as a miss
        // (`acc < ε`), so the miss probability grows and the confidence
        // `1 − I_ε(β₁, β₂)` strictly falls.
        assert!(model.confidence(0.1) > model.confidence(0.5));
        assert!(model.confidence(0.5) > model.confidence(0.9));
    }

    #[test]
    fn degenerate_samples_do_not_panic() {
        let model = ConfidenceModel::fit(&[0.7; 50]);
        assert!((model.mean() - 0.7).abs() < 1e-6);
        assert!(model.confidence(0.5) > 0.99);
    }

    #[test]
    fn multiple_counterexamples_raise_confidence() {
        let model = ConfidenceModel {
            beta1: 1.5,
            beta2: 3.0,
        };
        let single = model.confidence(0.6);
        let many = model.confidence_with_counterexamples(0.6, 5);
        assert!(many > single);
        assert!(many <= 1.0);
    }

    #[test]
    fn paper_mean_identity() {
        let model = ConfidenceModel::from_paper_mean(16, 4, 10.0);
        // 16 / 2^5 = 0.5.
        assert!((model.mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_mean_survives_wide_registers() {
        // n_in = 63 would overflow the old `1u64 << (n_in + 1)`; larger
        // values overflow any integer width. The mean must underflow to
        // its clamp instead of wrapping to a bogus denominator.
        for n_in in [63, 64, 500] {
            let model = ConfidenceModel::from_paper_mean(1_000_000, n_in, 10.0);
            // β₁ sits at its 1e-3 floor and β₂ near the concentration, so
            // the realized mean is ≈ 1e-4 — tiny, not wrapped.
            assert!(
                model.mean() < 1e-3,
                "n_in={n_in}: mean {} should be tiny",
                model.mean()
            );
            assert!(model.beta1 > 0.0 && model.beta2 > 0.0);
        }
    }

    #[test]
    fn single_sample_fit_is_sharp_at_the_sample() {
        // n = 1 has no unbiased variance; the fit must take the degenerate
        // path rather than divide by zero.
        let model = ConfidenceModel::fit(&[0.42]);
        assert!((model.mean() - 0.42).abs() < 1e-6);
        assert!(model.beta1.is_finite() && model.beta2.is_finite());
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_rejected() {
        let _ = ConfidenceModel::fit(&[]);
    }
}
