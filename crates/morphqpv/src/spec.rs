//! Textual assertion specifications.
//!
//! Assertions can be written next to the program text instead of being
//! assembled in Rust — the analogue of the paper's pragma-level assertion
//! statement:
//!
//! ```text
//! assume is_pure(T1), is_pure(T2) guarantee equal(T1, T2)
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! spec       := ["assume" clause ("," clause)*] "guarantee" clause
//! clause     := name "(" arg ("," arg)* ")"
//! arg        := "in" | "T"<digits> | number
//! name       := is_pure | is_mixed | prob_at_least | expectation_z_above
//!             | expectation_z_below | equal | not_equal | within
//!             | phase_diff
//! ```
//!
//! Single-state clauses in the `assume` position become assumptions;
//! relational clauses are only valid in the `guarantee` position (matching
//! Definition 1's shape).

use morph_qprog::TracepointId;

use crate::assertion::{AssumeGuarantee, Guarantee, StateRef};
use crate::predicate::{RelationPredicate, StatePredicate};

/// Error from parsing an assertion specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpecError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assertion spec error: {}", self.message)
    }
}

impl std::error::Error for ParseSpecError {}

fn err(message: impl Into<String>) -> ParseSpecError {
    ParseSpecError {
        message: message.into(),
    }
}

/// Parses an assertion specification string into an [`AssumeGuarantee`].
///
/// # Errors
///
/// Returns [`ParseSpecError`] on malformed syntax, unknown predicates, or
/// shape violations (e.g. a relational clause in the assume position).
///
/// # Examples
///
/// ```
/// use morphqpv::parse_assertion;
///
/// let spec = parse_assertion("assume is_pure(T1) guarantee equal(T1, T2)")?;
/// assert_eq!(spec.assumptions().len(), 1);
/// # Ok::<(), morphqpv::ParseSpecError>(())
/// ```
pub fn parse_assertion(text: &str) -> Result<AssumeGuarantee, ParseSpecError> {
    let lowered = text.trim();
    let (assume_part, guarantee_part) = split_keywords(lowered)?;

    let mut assertion = AssumeGuarantee::new();
    if let Some(assumes) = assume_part {
        for clause_text in split_top_level_commas(assumes) {
            let clause = parse_clause(&clause_text)?;
            match clause {
                Clause::Single(state, pred) => {
                    assertion = assertion.assume(state, pred);
                }
                Clause::Relation(..) => {
                    return Err(err(format!(
                        "relational clause {clause_text:?} not allowed in assume position"
                    )));
                }
            }
        }
    }
    let clauses = split_top_level_commas(guarantee_part);
    if clauses.len() != 1 {
        return Err(err("guarantee must be exactly one clause"));
    }
    let assertion = match parse_clause(&clauses[0])? {
        Clause::Single(state, pred) => assertion.guarantee(Guarantee::Single(state, pred)),
        Clause::Relation(a, b, pred) => assertion.guarantee(Guarantee::Relation(a, b, pred)),
    };
    Ok(assertion)
}

fn split_keywords(text: &str) -> Result<(Option<&str>, &str), ParseSpecError> {
    let lower = text.to_ascii_lowercase();
    let g_pos = lower
        .find("guarantee")
        .ok_or_else(|| err("missing 'guarantee' keyword"))?;
    let head = text[..g_pos].trim();
    let tail = text[g_pos + "guarantee".len()..].trim();
    if tail.is_empty() {
        return Err(err("empty guarantee clause"));
    }
    if head.is_empty() {
        return Ok((None, tail));
    }
    let head_lower = head.to_ascii_lowercase();
    let assumes = head_lower
        .strip_prefix("assume")
        .ok_or_else(|| err("text before 'guarantee' must start with 'assume'"))?;
    let offset = head.len() - assumes.len();
    Ok((Some(head[offset..].trim()), tail))
}

fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(text[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

enum Clause {
    Single(StateRef, StatePredicate),
    Relation(StateRef, StateRef, RelationPredicate),
}

fn parse_clause(text: &str) -> Result<Clause, ParseSpecError> {
    let open = text
        .find('(')
        .ok_or_else(|| err(format!("clause {text:?} missing '('")))?;
    if !text.trim_end().ends_with(')') {
        return Err(err(format!("clause {text:?} missing ')'")));
    }
    let name = text[..open].trim().to_ascii_lowercase();
    let inner = &text[open + 1..text.trim_end().len() - 1];
    let args: Vec<String> = split_top_level_commas(inner);

    let state = |i: usize| -> Result<StateRef, ParseSpecError> {
        parse_state(
            args.get(i)
                .ok_or_else(|| err(format!("{name} missing argument {i}")))?,
        )
    };
    let number = |i: usize| -> Result<f64, ParseSpecError> {
        args.get(i)
            .ok_or_else(|| err(format!("{name} missing numeric argument {i}")))?
            .parse()
            .map_err(|_| err(format!("{name}: argument {i} is not a number")))
    };

    match name.as_str() {
        "is_pure" => Ok(Clause::Single(state(0)?, StatePredicate::IsPure)),
        "prob_at_least" => Ok(Clause::Single(
            state(0)?,
            StatePredicate::ProbabilityAtLeast {
                basis: number(1)? as usize,
                p: number(2)?,
            },
        )),
        "expectation_z_above" | "expectation_z_below" => {
            let z = morph_qsim::matrices::z();
            let threshold = number(1)?;
            let pred = if name == "expectation_z_above" {
                StatePredicate::ExpectationAbove {
                    observable: z,
                    threshold,
                }
            } else {
                StatePredicate::ExpectationBelow {
                    observable: z,
                    threshold,
                }
            };
            Ok(Clause::Single(state(0)?, pred))
        }
        "equal" => Ok(Clause::Relation(
            state(0)?,
            state(1)?,
            RelationPredicate::Equal,
        )),
        "not_equal" => Ok(Clause::Relation(
            state(0)?,
            state(1)?,
            RelationPredicate::NotEqual {
                margin: number(2).unwrap_or(0.1),
            },
        )),
        "within" => Ok(Clause::Relation(
            state(0)?,
            state(1)?,
            RelationPredicate::Within {
                tolerance: number(2)?,
            },
        )),
        "phase_diff" => Ok(Clause::Relation(
            state(0)?,
            state(1)?,
            RelationPredicate::PhaseDifference {
                phase: number(2)?,
                tolerance: number(3).unwrap_or(0.1),
            },
        )),
        other => Err(err(format!("unknown predicate {other:?}"))),
    }
}

fn parse_state(text: &str) -> Result<StateRef, ParseSpecError> {
    let t = text.trim().to_ascii_lowercase();
    if t == "in" || t == "input" {
        return Ok(StateRef::Input);
    }
    if let Some(id) = t.strip_prefix('t') {
        let id: u32 = id
            .parse()
            .map_err(|_| err(format!("invalid tracepoint reference {text:?}")))?;
        return Ok(StateRef::Tracepoint(TracepointId(id)));
    }
    Err(err(format!(
        "invalid state reference {text:?} (use 'in' or 'T<n>')"
    )))
}

/// Extracts assertion specs embedded in program text as
/// `// assert <spec>` comments, in order of appearance.
///
/// # Errors
///
/// Returns the first spec that fails to parse.
pub fn assertions_from_source(source: &str) -> Result<Vec<AssumeGuarantee>, ParseSpecError> {
    let mut out = Vec::new();
    for line in source.lines() {
        if let Some(pos) = line.find("// assert ") {
            out.push(parse_assertion(&line[pos + "// assert ".len()..])?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_teleportation_spec() {
        let a = parse_assertion("assume is_pure(T1), is_pure(T2) guarantee equal(T1, T2)").unwrap();
        assert_eq!(a.assumptions().len(), 2);
        assert!(matches!(
            a.guarantee_clause(),
            Guarantee::Relation(
                StateRef::Tracepoint(TracepointId(1)),
                StateRef::Tracepoint(TracepointId(2)),
                RelationPredicate::Equal
            )
        ));
    }

    #[test]
    fn parses_guarantee_only_spec() {
        let a = parse_assertion("guarantee within(T1, T2, 0.05)").unwrap();
        assert!(a.assumptions().is_empty());
        match a.guarantee_clause() {
            Guarantee::Relation(_, _, RelationPredicate::Within { tolerance }) => {
                assert!((tolerance - 0.05).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_input_reference_and_single_guarantee() {
        let a =
            parse_assertion("assume is_pure(in) guarantee expectation_z_above(T4, 0.0)").unwrap();
        assert_eq!(a.assumptions()[0].0, StateRef::Input);
        assert!(matches!(a.guarantee_clause(), Guarantee::Single(..)));
    }

    #[test]
    fn rejects_relation_in_assume() {
        let e = parse_assertion("assume equal(T1, T2) guarantee is_pure(T1)").unwrap_err();
        assert!(e.message.contains("not allowed in assume"));
    }

    #[test]
    fn rejects_unknown_predicate_and_bad_refs() {
        assert!(parse_assertion("guarantee frobnicate(T1)").is_err());
        assert!(parse_assertion("guarantee equal(T1, Q2)").is_err());
        assert!(parse_assertion("assume is_pure(T1)").is_err()); // no guarantee
        assert!(parse_assertion("guarantee equal(T1)").is_err()); // arity
    }

    #[test]
    fn phase_diff_defaults_tolerance() {
        let a = parse_assertion("guarantee phase_diff(T3, T4, 3.14159)").unwrap();
        match a.guarantee_clause() {
            Guarantee::Relation(_, _, RelationPredicate::PhaseDifference { tolerance, .. }) => {
                assert!((tolerance - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn extracts_specs_from_program_comments() {
        let src = "\
qreg q[3];
T 1 q[0];
h q[0];
// assert assume is_pure(T1) guarantee equal(T1, T2)
cx q[0],q[1];
T 2 q[0];
// assert guarantee is_pure(T2)
";
        let specs = assertions_from_source(src).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].assumptions().len(), 1);
        assert!(specs[1].assumptions().is_empty());
    }

    #[test]
    fn spec_verifies_end_to_end() {
        // Identity program: parse the spec from text and run it.
        use crate::verifier::Verifier;
        use rand::SeedableRng;
        let mut c = morph_qprog::Circuit::new(1);
        c.tracepoint(1, &[0]);
        c.h(0).h(0);
        c.tracepoint(2, &[0]);
        let spec = parse_assertion("assume is_pure(T1) guarantee equal(T1, T2)").unwrap();
        let report = Verifier::new(c)
            .input_qubits(&[0])
            .samples(4)
            .assert_that(spec)
            .run(&mut rand::rngs::StdRng::seed_from_u64(0));
        assert!(report.all_passed());
    }
}
