//! Nelder–Mead simplex maximization — a derivative-free solver that often
//! beats gradient methods on the kinked (norm-of-difference) objectives the
//! assertion validation produces.

use rand::rngs::StdRng;

use crate::objective::{Bounds, Objective, OptResult};
use crate::solvers::Optimizer;

/// The Nelder–Mead downhill-simplex method (run on the negated objective),
/// with random restarts and bound projection.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Iterations (simplex updates) per restart.
    pub iterations: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Initial simplex edge as a fraction of the bound width.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            iterations: 400,
            restarts: 3,
            initial_step: 0.25,
        }
    }
}

impl Optimizer for NelderMead {
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult {
        let n = objective.dim();
        let mut evaluations = 0u64;
        let mut best_x: Option<Vec<f64>> = None;
        let mut best_v = f64::NEG_INFINITY;

        for _ in 0..self.restarts {
            // Initial simplex: a random point plus axis-offset vertices.
            let origin = bounds.sample(rng);
            let mut simplex: Vec<Vec<f64>> = vec![origin.clone()];
            for i in 0..n {
                let mut v = origin.clone();
                let width = bounds.upper()[i] - bounds.lower()[i];
                v[i] += self.initial_step * width;
                bounds.project(&mut v);
                simplex.push(v);
            }
            let mut values: Vec<f64> = simplex
                .iter()
                .map(|x| {
                    evaluations += 1;
                    objective.value(x)
                })
                .collect();

            for _ in 0..self.iterations {
                // Order vertices: best (max) first.
                let mut order: Vec<usize> = (0..simplex.len()).collect();
                order.sort_by(|&a, &b| {
                    values[b]
                        .partial_cmp(&values[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let best = order[0];
                let worst = order[order.len() - 1];
                let second_worst = order[order.len() - 2];

                // Centroid of all but the worst.
                let mut centroid = vec![0.0; n];
                for (idx, vertex) in simplex.iter().enumerate() {
                    if idx == worst {
                        continue;
                    }
                    for (c, &vi) in centroid.iter_mut().zip(vertex) {
                        *c += vi / n as f64;
                    }
                }
                let blend = |alpha: f64| -> Vec<f64> {
                    let mut x: Vec<f64> = centroid
                        .iter()
                        .zip(&simplex[worst])
                        .map(|(&c, &w)| c + alpha * (c - w))
                        .collect();
                    bounds.project(&mut x);
                    x
                };

                // Reflection.
                let reflected = blend(1.0);
                let fr = objective.value(&reflected);
                evaluations += 1;
                if fr > values[best] {
                    // Expansion.
                    let expanded = blend(2.0);
                    let fe = objective.value(&expanded);
                    evaluations += 1;
                    if fe > fr {
                        simplex[worst] = expanded;
                        values[worst] = fe;
                    } else {
                        simplex[worst] = reflected;
                        values[worst] = fr;
                    }
                } else if fr > values[second_worst] {
                    simplex[worst] = reflected;
                    values[worst] = fr;
                } else {
                    // Contraction.
                    let contracted = blend(-0.5);
                    let fc = objective.value(&contracted);
                    evaluations += 1;
                    if fc > values[worst] {
                        simplex[worst] = contracted;
                        values[worst] = fc;
                    } else {
                        // Shrink toward the best vertex.
                        let anchor = simplex[best].clone();
                        for (idx, vertex) in simplex.iter_mut().enumerate() {
                            if idx == best {
                                continue;
                            }
                            for (vi, &ai) in vertex.iter_mut().zip(&anchor) {
                                *vi = ai + 0.5 * (*vi - ai);
                            }
                            bounds.project(vertex);
                            values[idx] = objective.value(vertex);
                            evaluations += 1;
                        }
                    }
                }
            }
            for (x, &v) in simplex.iter().zip(&values) {
                if v > best_v {
                    best_v = v;
                    best_x = Some(x.clone());
                }
            }
        }
        OptResult {
            x: best_x.expect("at least one restart ran"),
            value: best_v,
            iterations: self.iterations * self.restarts,
            evaluations,
        }
    }

    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::SeedableRng;

    #[test]
    fn finds_quadratic_peak() {
        let obj = FnObjective::new(2, |x| -((x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2)));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let res = NelderMead::default().maximize(&obj, &bounds, &mut rng);
        assert!((res.x[0] - 0.3).abs() < 0.02, "x0={}", res.x[0]);
        assert!((res.x[1] + 0.4).abs() < 0.02, "x1={}", res.x[1]);
    }

    #[test]
    fn handles_kinked_objectives() {
        // |x − 0.5| style kink where quadratic fits mislead.
        let obj = FnObjective::new(2, |x| -((x[0] - 0.5).abs() + (x[1] - 0.25).abs()));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let res = NelderMead::default().maximize(&obj, &bounds, &mut rng);
        assert!(res.value > -0.05, "value {}", res.value);
    }

    #[test]
    fn respects_bounds() {
        let obj = FnObjective::new(3, |x| x.iter().sum());
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let res = NelderMead::default().maximize(&obj, &bounds, &mut rng);
        assert!(res.x.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(
            res.value > 2.5,
            "should reach the corner, got {}",
            res.value
        );
    }

    #[test]
    fn reports_effort() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let res = NelderMead::default().maximize(&obj, &bounds, &mut rng);
        assert!(res.evaluations > 100);
        assert!((res.x[0]).abs() < 0.01);
    }
}
