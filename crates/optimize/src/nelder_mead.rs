//! Nelder–Mead simplex maximization — a derivative-free solver that often
//! beats gradient methods on the kinked (norm-of-difference) objectives the
//! assertion validation produces.

use rand::rngs::StdRng;

use crate::error::{nan_improves, nan_last_cmp, SolveError};
use crate::objective::{Bounds, Objective, OptResult};
use crate::solvers::Optimizer;

/// The Nelder–Mead downhill-simplex method (run on the negated objective),
/// with random restarts and bound projection.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Iterations (simplex updates) per restart.
    pub iterations: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Initial simplex edge as a fraction of the bound width.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            iterations: 400,
            restarts: 3,
            initial_step: 0.25,
        }
    }
}

impl Optimizer for NelderMead {
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError> {
        if self.restarts == 0 {
            return Err(SolveError::NoRestarts {
                solver: self.name(),
            });
        }
        let _trace = morph_trace::span("optimize/nelder-mead");
        let n = objective.dim();
        let mut evaluations = 0u64;
        let mut best_x: Option<Vec<f64>> = None;
        let mut best_v = f64::NAN;

        for _ in 0..self.restarts {
            let _restart_span = morph_trace::span("restart");
            // Initial simplex: a random point plus axis-offset vertices.
            let origin = bounds.sample(rng);
            let mut simplex: Vec<Vec<f64>> = vec![origin.clone()];
            for i in 0..n {
                let mut v = origin.clone();
                let width = bounds.upper()[i] - bounds.lower()[i];
                v[i] += self.initial_step * width;
                bounds.project(&mut v);
                simplex.push(v);
            }
            let mut values: Vec<f64> = simplex
                .iter()
                .map(|x| {
                    evaluations += 1;
                    objective.value(x)
                })
                .collect();

            for _ in 0..self.iterations {
                // Order vertices: best (max) first, NaN vertices last so
                // they are the first to be replaced.
                let mut order: Vec<usize> = (0..simplex.len()).collect();
                order.sort_by(|&a, &b| nan_last_cmp(values[b], values[a]));
                let best = order[0];
                let worst = order[order.len() - 1];
                let second_worst = order[order.len() - 2];

                // Centroid of all but the worst.
                let mut centroid = vec![0.0; n];
                for (idx, vertex) in simplex.iter().enumerate() {
                    if idx == worst {
                        continue;
                    }
                    for (c, &vi) in centroid.iter_mut().zip(vertex) {
                        *c += vi / n as f64;
                    }
                }
                let blend = |alpha: f64| -> Vec<f64> {
                    let mut x: Vec<f64> = centroid
                        .iter()
                        .zip(&simplex[worst])
                        .map(|(&c, &w)| c + alpha * (c - w))
                        .collect();
                    bounds.project(&mut x);
                    x
                };

                // Reflection.
                let reflected = blend(1.0);
                let fr = objective.value(&reflected);
                evaluations += 1;
                if nan_improves(fr, values[best]) {
                    // Expansion.
                    let expanded = blend(2.0);
                    let fe = objective.value(&expanded);
                    evaluations += 1;
                    if nan_improves(fe, fr) {
                        simplex[worst] = expanded;
                        values[worst] = fe;
                    } else {
                        simplex[worst] = reflected;
                        values[worst] = fr;
                    }
                } else if nan_improves(fr, values[second_worst]) {
                    simplex[worst] = reflected;
                    values[worst] = fr;
                } else {
                    // Contraction.
                    let contracted = blend(-0.5);
                    let fc = objective.value(&contracted);
                    evaluations += 1;
                    if nan_improves(fc, values[worst]) {
                        simplex[worst] = contracted;
                        values[worst] = fc;
                    } else {
                        // Shrink toward the best vertex.
                        let anchor = simplex[best].clone();
                        for (idx, vertex) in simplex.iter_mut().enumerate() {
                            if idx == best {
                                continue;
                            }
                            for (vi, &ai) in vertex.iter_mut().zip(&anchor) {
                                *vi = ai + 0.5 * (*vi - ai);
                            }
                            bounds.project(vertex);
                            values[idx] = objective.value(vertex);
                            evaluations += 1;
                        }
                    }
                }
            }
            for (x, &v) in simplex.iter().zip(&values) {
                if best_x.is_none() || nan_improves(v, best_v) {
                    best_v = v;
                    best_x = Some(x.clone());
                }
            }
        }
        let best_x = best_x.expect("restarts > 0 fills the incumbent");
        if best_v.is_nan() {
            return Err(SolveError::AllEvaluationsNaN {
                solver: self.name(),
                evaluations,
            });
        }
        morph_trace::counter("restarts", self.restarts as u64);
        morph_trace::counter("iterations", (self.iterations * self.restarts) as u64);
        morph_trace::counter("evaluations", evaluations);
        morph_trace::gauge("best_objective", best_v);
        Ok(OptResult {
            x: best_x,
            value: best_v,
            iterations: self.iterations * self.restarts,
            evaluations,
        })
    }

    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::SeedableRng;

    #[test]
    fn finds_quadratic_peak() {
        let obj = FnObjective::new(2, |x| -((x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2)));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let res = NelderMead::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!((res.x[0] - 0.3).abs() < 0.02, "x0={}", res.x[0]);
        assert!((res.x[1] + 0.4).abs() < 0.02, "x1={}", res.x[1]);
    }

    #[test]
    fn handles_kinked_objectives() {
        // |x − 0.5| style kink where quadratic fits mislead.
        let obj = FnObjective::new(2, |x| -((x[0] - 0.5).abs() + (x[1] - 0.25).abs()));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let res = NelderMead::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!(res.value > -0.05, "value {}", res.value);
    }

    #[test]
    fn respects_bounds() {
        let obj = FnObjective::new(3, |x| x.iter().sum());
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let res = NelderMead::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!(res.x.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(
            res.value > 2.5,
            "should reach the corner, got {}",
            res.value
        );
    }

    #[test]
    fn reports_effort() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let res = NelderMead::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!(res.evaluations > 100);
        assert!((res.x[0]).abs() < 0.01);
    }

    #[test]
    fn zero_restarts_is_an_error() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let solver = NelderMead {
            restarts: 0,
            ..Default::default()
        };
        assert!(matches!(
            solver.maximize(&obj, &bounds, &mut rng),
            Err(SolveError::NoRestarts { .. })
        ));
    }

    #[test]
    fn all_nan_objective_is_an_error() {
        let obj = FnObjective::new(2, |_| f64::NAN);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        match NelderMead::default().maximize(&obj, &bounds, &mut rng) {
            Err(SolveError::AllEvaluationsNaN { evaluations, .. }) => assert!(evaluations > 0),
            other => panic!("expected AllEvaluationsNaN, got {other:?}"),
        }
    }

    #[test]
    fn nan_pockets_do_not_poison_the_simplex() {
        // NaN band through the middle of the box; the peak sits outside it.
        let obj = FnObjective::new(1, |x| {
            if (-0.2..0.2).contains(&x[0]) {
                f64::NAN
            } else {
                -(x[0] - 0.7).powi(2)
            }
        });
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let res = NelderMead::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!(res.value.is_finite());
        assert!((res.x[0] - 0.7).abs() < 0.05, "x0={}", res.x[0]);
    }
}
