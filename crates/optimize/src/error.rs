//! Structured solver failures.
//!
//! Solvers used to panic (`expect("at least one restart ran")`) on
//! zero-restart configurations and silently propagate NaN objective values
//! upward; both now surface as a [`SolveError`] from
//! [`crate::Optimizer::maximize`].

use std::cmp::Ordering;
use std::fmt;

/// Why a solver could not produce a usable optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The configuration requested zero restarts / starts / population, so
    /// no candidate point was ever evaluated.
    NoRestarts {
        /// The solver's display name.
        solver: &'static str,
    },
    /// Every evaluated candidate had a NaN objective value, so no point can
    /// be ranked best.
    AllEvaluationsNaN {
        /// The solver's display name.
        solver: &'static str,
        /// Objective evaluations spent before giving up.
        evaluations: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoRestarts { solver } => {
                write!(f, "{solver}: no restarts configured, nothing was evaluated")
            }
            SolveError::AllEvaluationsNaN {
                solver,
                evaluations,
            } => write!(
                f,
                "{solver}: every objective evaluation returned NaN ({evaluations} evaluations)"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Total order over `f64` with **every NaN ranked below every non-NaN**
/// (and below `-∞`), non-NaN values compared by [`f64::total_cmp`].
///
/// Maximizers select with this so a NaN objective can never win a restart,
/// displace a finite incumbent, or poison a `sort`: `max_by(nan_last_cmp)`
/// returns NaN only when *everything* is NaN — which solvers then report
/// as [`SolveError::AllEvaluationsNaN`].
pub fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// `candidate` strictly improves on `incumbent` under the NaN-last order.
pub fn nan_improves(candidate: f64, incumbent: f64) -> bool {
    nan_last_cmp(candidate, incumbent) == Ordering::Greater
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_ranks_below_everything() {
        assert_eq!(nan_last_cmp(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(nan_last_cmp(f64::NEG_INFINITY, f64::NAN), Ordering::Greater);
        assert_eq!(nan_last_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_last_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(nan_last_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(nan_last_cmp(0.0, 0.0), Ordering::Equal);
    }

    #[test]
    fn improvement_predicate_matches_the_order() {
        assert!(nan_improves(1.0, 0.0));
        assert!(nan_improves(0.0, f64::NAN));
        assert!(!nan_improves(f64::NAN, 0.0));
        assert!(!nan_improves(f64::NAN, f64::NAN));
        assert!(!nan_improves(1.0, 1.0));
    }

    #[test]
    fn errors_render_their_solver() {
        let e = SolveError::NoRestarts { solver: "qp" };
        assert!(e.to_string().contains("qp"));
        let e = SolveError::AllEvaluationsNaN {
            solver: "adam",
            evaluations: 12,
        };
        assert!(e.to_string().contains("12"));
    }
}
