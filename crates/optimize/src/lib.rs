//! Constrained-optimization substrate for MorphQPV's assertion validation.
//!
//! Section 6.1 turns an assume–guarantee assertion into
//! `maximize P₃(α) subject to P₁(α) ≤ 0, P₂(α) ≤ 0` over the real
//! coefficients `α` of the isomorphism-based approximation. This crate
//! supplies:
//!
//! - [`Objective`] / [`FnObjective`]: the function interface (finite-
//!   difference gradients by default).
//! - [`ConstrainedProblem`]: quadratic-penalty handling of the assumptions.
//! - Solvers ([`Optimizer`] implementations): [`GradientAscent`] (Adam),
//!   [`GeneticAlgorithm`], [`SimulatedAnnealing`], and [`QuadraticProgram`]
//!   — the latter standing in for the paper's Gurobi backend and compared
//!   in Fig 15(b).
//! - [`SolveError`] / [`nan_last_cmp`]: structured failure reporting and
//!   the NaN-last total order every solver selects with, so degenerate
//!   objectives surface as errors rather than panics or NaN "optima".
//!
//! Solvers record spans and counters through `morph-trace` when tracing is
//! enabled (restart counts, evaluations, best-objective gauges); with
//! tracing off the instrumentation is a single relaxed atomic load.
//!
//! # Examples
//!
//! ```
//! use morph_optimize::{Bounds, FnObjective, GradientAscent, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let objective = FnObjective::new(1, |x| -(x[0] - 0.25).powi(2));
//! let mut rng = StdRng::seed_from_u64(0);
//! let result = GradientAscent::default()
//!     .maximize(&objective, &Bounds::uniform(1, -1.0, 1.0), &mut rng)
//!     .expect("a restarted solver over a finite objective succeeds");
//! assert!((result.x[0] - 0.25).abs() < 1e-2);
//! ```

mod error;
mod nelder_mead;
mod objective;
mod solvers;

pub use error::{nan_improves, nan_last_cmp, SolveError};
pub use nelder_mead::NelderMead;
pub use objective::{Bounds, ConstrainedProblem, FnObjective, Objective, OptResult};
pub use solvers::{
    GeneticAlgorithm, GradientAscent, Optimizer, QuadraticProgram, SimulatedAnnealing,
};
