//! Constrained-optimization substrate for MorphQPV's assertion validation.
//!
//! Section 6.1 turns an assume–guarantee assertion into
//! `maximize P₃(α) subject to P₁(α) ≤ 0, P₂(α) ≤ 0` over the real
//! coefficients `α` of the isomorphism-based approximation. This crate
//! supplies:
//!
//! - [`Objective`] / [`FnObjective`]: the function interface (finite-
//!   difference gradients by default).
//! - [`ConstrainedProblem`]: quadratic-penalty handling of the assumptions.
//! - Solvers ([`Optimizer`] implementations): [`GradientAscent`] (Adam),
//!   [`GeneticAlgorithm`], [`SimulatedAnnealing`], and [`QuadraticProgram`]
//!   — the latter standing in for the paper's Gurobi backend and compared
//!   in Fig 15(b).
//!
//! # Examples
//!
//! ```
//! use morph_optimize::{Bounds, FnObjective, GradientAscent, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let objective = FnObjective::new(1, |x| -(x[0] - 0.25).powi(2));
//! let mut rng = StdRng::seed_from_u64(0);
//! let result = GradientAscent::default().maximize(
//!     &objective,
//!     &Bounds::uniform(1, -1.0, 1.0),
//!     &mut rng,
//! );
//! assert!((result.x[0] - 0.25).abs() < 1e-2);
//! ```

mod nelder_mead;
mod objective;
mod solvers;

pub use nelder_mead::NelderMead;
pub use objective::{Bounds, ConstrainedProblem, FnObjective, Objective, OptResult};
pub use solvers::{
    GeneticAlgorithm, GradientAscent, Optimizer, QuadraticProgram, SimulatedAnnealing,
};
