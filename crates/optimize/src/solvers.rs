//! Maximization solvers: Adam-style gradient ascent, a genetic algorithm,
//! simulated annealing, and a quadratic-programming solver (projected
//! gradient with exact quadratic line search) standing in for Gurobi.
//!
//! All solvers rank candidates with the NaN-last total order from
//! [`crate::error`]: a NaN objective value can never win a restart, and a
//! configuration that evaluates nothing (or only NaNs) returns a
//! [`SolveError`] instead of panicking.

use rand::rngs::StdRng;
use rand::Rng;

use crate::error::{nan_improves, nan_last_cmp, SolveError};
use crate::objective::{Bounds, Objective, OptResult};

/// A maximizer over a box-bounded search space.
///
/// All solvers are deterministic given the RNG; experiments seed it.
pub trait Optimizer {
    /// Maximizes `objective` inside `bounds`.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoRestarts`] when the configuration evaluates no
    /// candidate at all (zero restarts / starts / population), and
    /// [`SolveError::AllEvaluationsNaN`] when every evaluated candidate had
    /// a NaN objective value.
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError>;

    /// Human-readable solver name (used in Fig 15(b) reports).
    fn name(&self) -> &'static str;
}

/// Projected Adam gradient ascent with random restarts.
///
/// Restarts are independent, so they run across `parallelism` worker
/// threads; each restart seeds its own RNG stream from one master draw, so
/// the result is bit-identical at every worker count.
#[derive(Debug, Clone)]
pub struct GradientAscent {
    /// Adam step size.
    pub learning_rate: f64,
    /// Iterations per restart.
    pub iterations: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Worker threads for the restarts (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for GradientAscent {
    fn default() -> Self {
        GradientAscent {
            learning_rate: 0.05,
            iterations: 300,
            restarts: 4,
            parallelism: 1,
        }
    }
}

impl Optimizer for GradientAscent {
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError> {
        if self.restarts == 0 {
            return Err(SolveError::NoRestarts {
                solver: self.name(),
            });
        }
        let trace = morph_trace::span("optimize/gradient-ascent");
        let trace_parent = trace.id();
        morph_trace::counter("restarts", self.restarts as u64);

        let dim = objective.dim();
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let master = morph_parallel::derive_master(rng);
        let runs =
            morph_parallel::parallel_map_indices(self.parallelism, self.restarts, |restart| {
                let _restart_span = morph_trace::span_under(trace_parent, "restart");
                let mut task_rng = morph_parallel::child_rng(master, restart as u64);
                let mut evaluations = 0u64;
                let mut x = bounds.sample(&mut task_rng);
                let mut m = vec![0.0; dim];
                let mut v = vec![0.0; dim];
                let mut grad = vec![0.0; dim];
                for t in 1..=self.iterations {
                    objective.gradient(&x, &mut grad);
                    evaluations += 2 * dim as u64;
                    for i in 0..dim {
                        m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                        v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                        let mh = m[i] / (1.0 - beta1.powi(t as i32));
                        let vh = v[i] / (1.0 - beta2.powi(t as i32));
                        x[i] += self.learning_rate * mh / (vh.sqrt() + eps);
                    }
                    bounds.project(&mut x);
                }
                let value = objective.value(&x);
                evaluations += 1;
                morph_trace::counter("iterations", self.iterations as u64);
                morph_trace::counter("evaluations", evaluations);
                morph_trace::gauge("restart_value", value);
                (x, value, evaluations)
            });
        let result = best_of_restarts(self.name(), runs, self.iterations * self.restarts)?;
        morph_trace::gauge("best_objective", result.value);
        Ok(result)
    }

    fn name(&self) -> &'static str {
        "gradient-ascent (Adam)"
    }
}

/// Tournament-selection genetic algorithm with blend crossover and Gaussian
/// mutation.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of the bound width.
    pub mutation_scale: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 60,
            generations: 80,
            mutation_rate: 0.15,
            mutation_scale: 0.1,
        }
    }
}

impl Optimizer for GeneticAlgorithm {
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError> {
        if self.population == 0 {
            return Err(SolveError::NoRestarts {
                solver: self.name(),
            });
        }
        let _trace = morph_trace::span("optimize/genetic-algorithm");
        let dim = objective.dim();
        let mut population: Vec<Vec<f64>> =
            (0..self.population).map(|_| bounds.sample(rng)).collect();
        let mut fitness: Vec<f64> = population.iter().map(|x| objective.value(x)).collect();
        let mut evaluations = self.population as u64;

        let mut best_idx = argmax(&fitness);
        let mut best_x = population[best_idx].clone();
        let mut best_v = fitness[best_idx];

        for _ in 0..self.generations {
            let mut next = Vec::with_capacity(self.population);
            // Elitism: carry over the best individual.
            next.push(best_x.clone());
            while next.len() < self.population {
                let a = tournament(&fitness, rng);
                let b = tournament(&fitness, rng);
                let mut child = vec![0.0; dim];
                let blend: f64 = rng.gen();
                for i in 0..dim {
                    child[i] = blend * population[a][i] + (1.0 - blend) * population[b][i];
                    if rng.gen::<f64>() < self.mutation_rate {
                        let width = bounds.upper()[i] - bounds.lower()[i];
                        child[i] += gaussian(rng) * self.mutation_scale * width;
                    }
                }
                bounds.project(&mut child);
                next.push(child);
            }
            population = next;
            fitness = population.iter().map(|x| objective.value(x)).collect();
            evaluations += self.population as u64;
            best_idx = argmax(&fitness);
            if nan_improves(fitness[best_idx], best_v) {
                best_v = fitness[best_idx];
                best_x = population[best_idx].clone();
            }
            morph_trace::gauge("best_objective", best_v);
        }
        if best_v.is_nan() {
            return Err(SolveError::AllEvaluationsNaN {
                solver: self.name(),
                evaluations,
            });
        }
        morph_trace::counter("iterations", self.generations as u64);
        morph_trace::counter("evaluations", evaluations);
        Ok(OptResult {
            x: best_x,
            value: best_v,
            iterations: self.generations,
            evaluations,
        })
    }

    fn name(&self) -> &'static str {
        "genetic algorithm"
    }
}

/// Simulated annealing with geometric cooling.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Total proposal steps.
    pub iterations: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
    /// Proposal step as a fraction of the bound width.
    pub step_scale: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 4000,
            initial_temperature: 1.0,
            cooling: 0.999,
            step_scale: 0.1,
        }
    }
}

impl Optimizer for SimulatedAnnealing {
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError> {
        let _trace = morph_trace::span("optimize/simulated-annealing");
        let dim = objective.dim();
        let mut x = bounds.sample(rng);
        let mut v = objective.value(&x);
        let mut best_x = x.clone();
        let mut best_v = v;
        let mut temperature = self.initial_temperature;
        let mut evaluations = 1u64;
        let mut accepted = 0u64;
        for _ in 0..self.iterations {
            let mut candidate = x.clone();
            let i = rng.gen_range(0..dim);
            let width = bounds.upper()[i] - bounds.lower()[i];
            candidate[i] += gaussian(rng) * self.step_scale * width;
            bounds.project(&mut candidate);
            let cv = objective.value(&candidate);
            evaluations += 1;
            // NaN handling keeps the acceptance draw: with the historical
            // expression a NaN on either side fell through to the Metropolis
            // test (whose comparison against NaN is false), so a draw was
            // consumed either way. A NaN candidate is always rejected; a NaN
            // incumbent is always replaced by a finite candidate — without
            // this an early NaN pinned the walk forever.
            let accept = if cv.is_nan() {
                let _ = rng.gen::<f64>();
                false
            } else if v.is_nan() {
                let _ = rng.gen::<f64>();
                true
            } else {
                cv > v || rng.gen::<f64>() < ((cv - v) / temperature.max(1e-12)).exp()
            };
            if accept {
                accepted += 1;
                x = candidate;
                v = cv;
                if nan_improves(v, best_v) {
                    best_v = v;
                    best_x = x.clone();
                }
            }
            temperature *= self.cooling;
        }
        if best_v.is_nan() {
            return Err(SolveError::AllEvaluationsNaN {
                solver: self.name(),
                evaluations,
            });
        }
        morph_trace::counter("iterations", self.iterations as u64);
        morph_trace::counter("evaluations", evaluations);
        morph_trace::counter("accepted_moves", accepted);
        morph_trace::gauge("best_objective", best_v);
        Ok(OptResult {
            x: best_x,
            value: best_v,
            iterations: self.iterations,
            evaluations,
        })
    }

    fn name(&self) -> &'static str {
        "simulated annealing"
    }
}

/// Quadratic-programming solver: fits the (assumed quadratic) objective
/// once by finite differences, then runs projected gradient ascent with the
/// *exact* quadratic step size from several starts. This is the crate's
/// stand-in for the paper's Gurobi backend; MorphQPV's validation
/// objectives over the `α` coefficients are quadratics, so the fit is exact
/// up to rounding for them.
#[derive(Debug, Clone)]
pub struct QuadraticProgram {
    /// Projected-gradient iterations per start.
    pub iterations: usize,
    /// Number of starts.
    pub starts: usize,
    /// Worker threads for the starts (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for QuadraticProgram {
    fn default() -> Self {
        QuadraticProgram {
            iterations: 200,
            starts: 4,
            parallelism: 1,
        }
    }
}

impl QuadraticProgram {
    /// Fits `f(x) ≈ ½ xᵀQx + cᵀx + b` by finite differences around 0.
    fn fit_quadratic(
        objective: &dyn Objective,
        evaluations: &mut u64,
    ) -> (Vec<Vec<f64>>, Vec<f64>, f64) {
        let n = objective.dim();
        let h = 1e-3;
        let zero = vec![0.0; n];
        let f0 = objective.value(&zero);
        *evaluations += 1;
        let mut c = vec![0.0; n];
        let mut fp = vec![0.0; n];
        let mut fm = vec![0.0; n];
        let mut probe = zero.clone();
        for i in 0..n {
            probe[i] = h;
            fp[i] = objective.value(&probe);
            probe[i] = -h;
            fm[i] = objective.value(&probe);
            probe[i] = 0.0;
            c[i] = (fp[i] - fm[i]) / (2.0 * h);
            *evaluations += 2;
        }
        let mut q = vec![vec![0.0; n]; n];
        for i in 0..n {
            q[i][i] = (fp[i] - 2.0 * f0 + fm[i]) / (h * h);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                probe[i] = h;
                probe[j] = h;
                let fpp = objective.value(&probe);
                probe[j] = -h;
                let fpm = objective.value(&probe);
                probe[i] = -h;
                let fmm = objective.value(&probe);
                probe[j] = h;
                let fmp = objective.value(&probe);
                probe[i] = 0.0;
                probe[j] = 0.0;
                *evaluations += 4;
                let qij = (fpp - fpm - fmp + fmm) / (4.0 * h * h);
                q[i][j] = qij;
                q[j][i] = qij;
            }
        }
        (q, c, f0)
    }
}

impl Optimizer for QuadraticProgram {
    fn maximize(
        &self,
        objective: &dyn Objective,
        bounds: &Bounds,
        rng: &mut StdRng,
    ) -> Result<OptResult, SolveError> {
        if self.starts == 0 {
            return Err(SolveError::NoRestarts {
                solver: self.name(),
            });
        }
        let trace = morph_trace::span("optimize/quadratic-program");
        let trace_parent = trace.id();
        morph_trace::counter("restarts", self.starts as u64);

        let n = objective.dim();
        let mut fit_evaluations = 0u64;
        let (q, c, _) = {
            let _fit_span = morph_trace::span("fit-quadratic");
            let fit = Self::fit_quadratic(objective, &mut fit_evaluations);
            morph_trace::counter("evaluations", fit_evaluations);
            fit
        };

        let grad = |x: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut g = c[i];
                for j in 0..n {
                    g += q[i][j] * x[j];
                }
                out[i] = g;
            }
        };

        let master = morph_parallel::derive_master(rng);
        let runs = morph_parallel::parallel_map_indices(self.parallelism, self.starts, |start| {
            let _restart_span = morph_trace::span_under(trace_parent, "restart");
            let mut task_rng = morph_parallel::child_rng(master, start as u64);
            let mut x = bounds.sample(&mut task_rng);
            let mut g = vec![0.0; n];
            let mut line_search_steps = 0u64;
            for _ in 0..self.iterations {
                grad(&x, &mut g);
                // Exact line search for quadratic: t* = gᵀg / (−gᵀQg) when
                // the curvature along g is negative; otherwise take a bold
                // fixed step toward the boundary.
                let gg: f64 = g.iter().map(|v| v * v).sum();
                if gg < 1e-18 {
                    break;
                }
                line_search_steps += 1;
                let mut gqg = 0.0;
                for i in 0..n {
                    for j in 0..n {
                        gqg += g[i] * q[i][j] * g[j];
                    }
                }
                let t = if gqg < -1e-12 { -gg / gqg } else { 1.0 };
                for i in 0..n {
                    x[i] += t * g[i];
                }
                bounds.project(&mut x);
            }
            let v = objective.value(&x);
            morph_trace::counter("line_search_steps", line_search_steps);
            morph_trace::counter("evaluations", 1);
            morph_trace::gauge("restart_value", v);
            (x, v, 1u64)
        });
        let mut result = best_of_restarts(self.name(), runs, self.iterations * self.starts)?;
        result.evaluations += fit_evaluations;
        morph_trace::gauge("best_objective", result.value);
        Ok(result)
    }

    fn name(&self) -> &'static str {
        "quadratic programming"
    }
}

/// Folds per-restart `(x, value, evaluations)` runs into one [`OptResult`]:
/// the best value under the NaN-last order wins, ties broken by the lowest
/// restart index so the outcome is independent of evaluation order.
fn best_of_restarts(
    solver: &'static str,
    mut runs: Vec<(Vec<f64>, f64, u64)>,
    iterations: usize,
) -> Result<OptResult, SolveError> {
    let evaluations: u64 = runs.iter().map(|(_, _, e)| e).sum();
    let mut best: Option<usize> = None;
    for (i, run) in runs.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) => {
                if nan_improves(run.1, runs[b].1) {
                    best = Some(i);
                }
            }
        }
    }
    let Some(b) = best else {
        return Err(SolveError::NoRestarts { solver });
    };
    if runs[b].1.is_nan() {
        return Err(SolveError::AllEvaluationsNaN {
            solver,
            evaluations,
        });
    }
    let (x, value, _) = runs.swap_remove(b);
    Ok(OptResult {
        x,
        value,
        iterations,
        evaluations,
    })
}

/// Index of the maximum under the NaN-last order; lowest index on ties, so
/// a NaN entry is picked only when every entry is NaN.
fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if nan_last_cmp(v, values[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

fn tournament(fitness: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..fitness.len());
    let b = rng.gen_range(0..fitness.len());
    // `a` wins ties, matching the historical `>=`; NaN loses to anything.
    if nan_last_cmp(fitness[a], fitness[b]) != std::cmp::Ordering::Less {
        a
    } else {
        b
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn solvers() -> Vec<Box<dyn Optimizer>> {
        vec![
            Box::new(GradientAscent::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(SimulatedAnnealing::default()),
            Box::new(QuadraticProgram::default()),
        ]
    }

    #[test]
    fn all_solvers_find_quadratic_peak() {
        // max −(x−0.3)² − (y+0.4)², peak at (0.3, −0.4), value 0.
        let obj = FnObjective::new(2, |x| -((x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2)));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(1);
            let res = solver.maximize(&obj, &bounds, &mut rng).unwrap();
            assert!(
                res.value > -1e-2,
                "{} missed the peak: value {}",
                solver.name(),
                res.value
            );
            assert!(
                (res.x[0] - 0.3).abs() < 0.1,
                "{} x0={}",
                solver.name(),
                res.x[0]
            );
            assert!(
                (res.x[1] + 0.4).abs() < 0.1,
                "{} x1={}",
                solver.name(),
                res.x[1]
            );
        }
    }

    #[test]
    fn solvers_respect_bounds() {
        // Unbounded maximum at +∞; solution must stay at the box edge.
        let obj = FnObjective::new(2, |x| x[0] + x[1]);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(2);
            let res = solver.maximize(&obj, &bounds, &mut rng).unwrap();
            assert!(
                res.x.iter().all(|&v| (-1.0..=1.0).contains(&v)),
                "{}",
                solver.name()
            );
            assert!(
                res.value > 1.5,
                "{} should reach the corner, got {}",
                solver.name(),
                res.value
            );
        }
    }

    #[test]
    fn qp_is_exact_on_pure_quadratics() {
        // max −x'Ax + b'x with known optimum.
        let obj = FnObjective::new(3, |x| {
            -(2.0 * x[0] * x[0] + x[1] * x[1] + 0.5 * x[2] * x[2]) + x[0] + 2.0 * x[1] - x[2]
        });
        // Optimum: x0 = 1/4, x1 = 1, x2 = −1.
        let bounds = Bounds::uniform(3, -2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let res = QuadraticProgram::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!((res.x[0] - 0.25).abs() < 1e-3, "x0={}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x1={}", res.x[1]);
        assert!((res.x[2] + 1.0).abs() < 1e-3, "x2={}", res.x[2]);
    }

    #[test]
    fn annealing_escapes_local_maxima() {
        // Double bump: local max at −0.5 (h=0.5), global at +0.6 (h=1).
        let obj = FnObjective::new(1, |x| {
            let a = 0.5 * (-(x[0] + 0.5).powi(2) / 0.01).exp();
            let b = 1.0 * (-(x[0] - 0.6).powi(2) / 0.01).exp();
            a + b
        });
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut found = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = SimulatedAnnealing::default()
                .maximize(&obj, &bounds, &mut rng)
                .unwrap();
            if (res.x[0] - 0.6).abs() < 0.05 {
                found += 1;
            }
        }
        assert!(
            found >= 3,
            "annealing found the global bump only {found}/5 times"
        );
    }

    #[test]
    fn parallel_restarts_match_serial() {
        use rand::Rng;
        let obj = FnObjective::new(3, |x: &[f64]| {
            -((x[0] - 0.1).powi(2) + (x[1] + 0.2).powi(2) + x[2].powi(2))
        });
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let run = |solver: &dyn Optimizer| {
            let mut rng = StdRng::seed_from_u64(5);
            let res = solver.maximize(&obj, &bounds, &mut rng).unwrap();
            (res, rng.gen::<u64>())
        };
        let (ga_serial, ga_serial_stream) = run(&GradientAscent {
            parallelism: 1,
            ..Default::default()
        });
        let (ga_wide, ga_wide_stream) = run(&GradientAscent {
            parallelism: 4,
            ..Default::default()
        });
        assert_eq!(
            ga_serial, ga_wide,
            "gradient ascent must not depend on worker count"
        );
        assert_eq!(
            ga_serial_stream, ga_wide_stream,
            "caller RNG stream must stay aligned"
        );

        let (qp_serial, _) = run(&QuadraticProgram {
            parallelism: 1,
            ..Default::default()
        });
        let (qp_wide, _) = run(&QuadraticProgram {
            parallelism: 4,
            ..Default::default()
        });
        assert_eq!(
            qp_serial, qp_wide,
            "QP starts must not depend on worker count"
        );
    }

    #[test]
    fn results_report_effort() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let res = GradientAscent::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        assert!(res.iterations > 0);
        assert!(res.evaluations > 0);
    }

    #[test]
    fn zero_restarts_is_an_error_not_a_panic() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let cases: Vec<Box<dyn Optimizer>> = vec![
            Box::new(GradientAscent {
                restarts: 0,
                ..Default::default()
            }),
            Box::new(QuadraticProgram {
                starts: 0,
                ..Default::default()
            }),
            Box::new(GeneticAlgorithm {
                population: 0,
                ..Default::default()
            }),
        ];
        for solver in cases {
            let mut rng = StdRng::seed_from_u64(0);
            match solver.maximize(&obj, &bounds, &mut rng) {
                Err(SolveError::NoRestarts { .. }) => {}
                other => panic!("{}: expected NoRestarts, got {other:?}", solver.name()),
            }
        }
    }

    #[test]
    fn all_nan_objective_is_an_error_not_a_winner() {
        let obj = FnObjective::new(1, |_| f64::NAN);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(7);
            match solver.maximize(&obj, &bounds, &mut rng) {
                Err(SolveError::AllEvaluationsNaN { evaluations, .. }) => {
                    assert!(evaluations > 0, "{}", solver.name());
                }
                other => panic!(
                    "{}: expected AllEvaluationsNaN, got {other:?}",
                    solver.name()
                ),
            }
        }
    }

    #[test]
    fn partial_nan_region_still_returns_a_finite_optimum() {
        // NaN beyond x = 0.5; the finite part still has a well-defined peak
        // at x = −0.5. (The NaN pocket stays clear of the origin so the QP
        // solver's finite-difference fit around 0 remains finite.)
        let obj = FnObjective::new(1, |x| {
            if x[0] > 0.5 {
                f64::NAN
            } else {
                -(x[0] + 0.5).powi(2)
            }
        });
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(11);
            let res = solver
                .maximize(&obj, &bounds, &mut rng)
                .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
            assert!(
                res.value.is_finite(),
                "{} returned non-finite {}",
                solver.name(),
                res.value
            );
        }
    }

    #[test]
    fn best_of_restarts_prefers_lowest_index_on_ties() {
        let runs = vec![
            (vec![1.0], 0.5, 1),
            (vec![2.0], 0.5, 1),
            (vec![3.0], f64::NAN, 1),
        ];
        let res = best_of_restarts("test", runs, 1).unwrap();
        assert_eq!(res.x, vec![1.0]);
        assert_eq!(res.evaluations, 3);
    }

    #[test]
    fn solver_spans_record_restarts_and_evaluations() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        morph_trace::reset();
        morph_trace::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(0);
        GradientAscent::default()
            .maximize(&obj, &bounds, &mut rng)
            .unwrap();
        morph_trace::set_enabled(false);
        let spans = morph_trace::span_summaries();
        assert!(spans
            .iter()
            .any(|s| s.name == "optimize/gradient-ascent" && s.counters["restarts"] == 4));
        // `>=`: the recorder is process-global, so concurrently running
        // tests may contribute restart spans of their own while tracing is
        // enabled here.
        assert!(
            spans.iter().filter(|s| s.name == "restart").count() >= 4,
            "one child span per restart"
        );
        assert!(morph_trace::counter_total("evaluations") > 0);
        morph_trace::reset();
    }
}
