//! Maximization solvers: Adam-style gradient ascent, a genetic algorithm,
//! simulated annealing, and a quadratic-programming solver (projected
//! gradient with exact quadratic line search) standing in for Gurobi.

use rand::rngs::StdRng;
use rand::Rng;

use crate::objective::{Bounds, Objective, OptResult};

/// A maximizer over a box-bounded search space.
///
/// All solvers are deterministic given the RNG; experiments seed it.
pub trait Optimizer {
    /// Maximizes `objective` inside `bounds`.
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult;

    /// Human-readable solver name (used in Fig 15(b) reports).
    fn name(&self) -> &'static str;
}

/// Projected Adam gradient ascent with random restarts.
///
/// Restarts are independent, so they run across `parallelism` worker
/// threads; each restart seeds its own RNG stream from one master draw, so
/// the result is bit-identical at every worker count.
#[derive(Debug, Clone)]
pub struct GradientAscent {
    /// Adam step size.
    pub learning_rate: f64,
    /// Iterations per restart.
    pub iterations: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Worker threads for the restarts (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for GradientAscent {
    fn default() -> Self {
        GradientAscent {
            learning_rate: 0.05,
            iterations: 300,
            restarts: 4,
            parallelism: 1,
        }
    }
}

impl Optimizer for GradientAscent {
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult {
        let dim = objective.dim();
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let master = morph_parallel::derive_master(rng);
        let runs = morph_parallel::parallel_map_indices(
            self.parallelism,
            self.restarts.max(1),
            |restart| {
                let mut task_rng = morph_parallel::child_rng(master, restart as u64);
                let mut evaluations = 0u64;
                let mut x = bounds.sample(&mut task_rng);
                let mut m = vec![0.0; dim];
                let mut v = vec![0.0; dim];
                let mut grad = vec![0.0; dim];
                for t in 1..=self.iterations {
                    objective.gradient(&x, &mut grad);
                    evaluations += 2 * dim as u64;
                    for i in 0..dim {
                        m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                        v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                        let mh = m[i] / (1.0 - beta1.powi(t as i32));
                        let vh = v[i] / (1.0 - beta2.powi(t as i32));
                        x[i] += self.learning_rate * mh / (vh.sqrt() + eps);
                    }
                    bounds.project(&mut x);
                }
                let value = objective.value(&x);
                evaluations += 1;
                (x, value, evaluations)
            },
        );
        best_of_restarts(runs, self.iterations * self.restarts.max(1))
    }

    fn name(&self) -> &'static str {
        "gradient-ascent (Adam)"
    }
}

/// Tournament-selection genetic algorithm with blend crossover and Gaussian
/// mutation.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of the bound width.
    pub mutation_scale: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 60,
            generations: 80,
            mutation_rate: 0.15,
            mutation_scale: 0.1,
        }
    }
}

impl Optimizer for GeneticAlgorithm {
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult {
        let dim = objective.dim();
        let mut population: Vec<Vec<f64>> =
            (0..self.population).map(|_| bounds.sample(rng)).collect();
        let mut fitness: Vec<f64> = population.iter().map(|x| objective.value(x)).collect();
        let mut evaluations = self.population as u64;

        let mut best_idx = argmax(&fitness);
        let mut best_x = population[best_idx].clone();
        let mut best_v = fitness[best_idx];

        for _ in 0..self.generations {
            let mut next = Vec::with_capacity(self.population);
            // Elitism: carry over the best individual.
            next.push(best_x.clone());
            while next.len() < self.population {
                let a = tournament(&fitness, rng);
                let b = tournament(&fitness, rng);
                let mut child = vec![0.0; dim];
                let blend: f64 = rng.gen();
                for i in 0..dim {
                    child[i] = blend * population[a][i] + (1.0 - blend) * population[b][i];
                    if rng.gen::<f64>() < self.mutation_rate {
                        let width = bounds.upper()[i] - bounds.lower()[i];
                        child[i] += gaussian(rng) * self.mutation_scale * width;
                    }
                }
                bounds.project(&mut child);
                next.push(child);
            }
            population = next;
            fitness = population.iter().map(|x| objective.value(x)).collect();
            evaluations += self.population as u64;
            best_idx = argmax(&fitness);
            if fitness[best_idx] > best_v {
                best_v = fitness[best_idx];
                best_x = population[best_idx].clone();
            }
        }
        OptResult {
            x: best_x,
            value: best_v,
            iterations: self.generations,
            evaluations,
        }
    }

    fn name(&self) -> &'static str {
        "genetic algorithm"
    }
}

/// Simulated annealing with geometric cooling.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Total proposal steps.
    pub iterations: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
    /// Proposal step as a fraction of the bound width.
    pub step_scale: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 4000,
            initial_temperature: 1.0,
            cooling: 0.999,
            step_scale: 0.1,
        }
    }
}

impl Optimizer for SimulatedAnnealing {
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult {
        let dim = objective.dim();
        let mut x = bounds.sample(rng);
        let mut v = objective.value(&x);
        let mut best_x = x.clone();
        let mut best_v = v;
        let mut temperature = self.initial_temperature;
        let mut evaluations = 1u64;
        for _ in 0..self.iterations {
            let mut candidate = x.clone();
            let i = rng.gen_range(0..dim);
            let width = bounds.upper()[i] - bounds.lower()[i];
            candidate[i] += gaussian(rng) * self.step_scale * width;
            bounds.project(&mut candidate);
            let cv = objective.value(&candidate);
            evaluations += 1;
            let accept = cv > v || rng.gen::<f64>() < ((cv - v) / temperature.max(1e-12)).exp();
            if accept {
                x = candidate;
                v = cv;
                if v > best_v {
                    best_v = v;
                    best_x = x.clone();
                }
            }
            temperature *= self.cooling;
        }
        OptResult {
            x: best_x,
            value: best_v,
            iterations: self.iterations,
            evaluations,
        }
    }

    fn name(&self) -> &'static str {
        "simulated annealing"
    }
}

/// Quadratic-programming solver: fits the (assumed quadratic) objective
/// once by finite differences, then runs projected gradient ascent with the
/// *exact* quadratic step size from several starts. This is the crate's
/// stand-in for the paper's Gurobi backend; MorphQPV's validation
/// objectives over the `α` coefficients are quadratics, so the fit is exact
/// up to rounding for them.
#[derive(Debug, Clone)]
pub struct QuadraticProgram {
    /// Projected-gradient iterations per start.
    pub iterations: usize,
    /// Number of starts.
    pub starts: usize,
    /// Worker threads for the starts (`0` = all cores, `1` = serial).
    pub parallelism: usize,
}

impl Default for QuadraticProgram {
    fn default() -> Self {
        QuadraticProgram {
            iterations: 200,
            starts: 4,
            parallelism: 1,
        }
    }
}

impl QuadraticProgram {
    /// Fits `f(x) ≈ ½ xᵀQx + cᵀx + b` by finite differences around 0.
    fn fit_quadratic(
        objective: &dyn Objective,
        evaluations: &mut u64,
    ) -> (Vec<Vec<f64>>, Vec<f64>, f64) {
        let n = objective.dim();
        let h = 1e-3;
        let zero = vec![0.0; n];
        let f0 = objective.value(&zero);
        *evaluations += 1;
        let mut c = vec![0.0; n];
        let mut fp = vec![0.0; n];
        let mut fm = vec![0.0; n];
        let mut probe = zero.clone();
        for i in 0..n {
            probe[i] = h;
            fp[i] = objective.value(&probe);
            probe[i] = -h;
            fm[i] = objective.value(&probe);
            probe[i] = 0.0;
            c[i] = (fp[i] - fm[i]) / (2.0 * h);
            *evaluations += 2;
        }
        let mut q = vec![vec![0.0; n]; n];
        for i in 0..n {
            q[i][i] = (fp[i] - 2.0 * f0 + fm[i]) / (h * h);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                probe[i] = h;
                probe[j] = h;
                let fpp = objective.value(&probe);
                probe[j] = -h;
                let fpm = objective.value(&probe);
                probe[i] = -h;
                let fmm = objective.value(&probe);
                probe[j] = h;
                let fmp = objective.value(&probe);
                probe[i] = 0.0;
                probe[j] = 0.0;
                *evaluations += 4;
                let qij = (fpp - fpm - fmp + fmm) / (4.0 * h * h);
                q[i][j] = qij;
                q[j][i] = qij;
            }
        }
        (q, c, f0)
    }
}

impl Optimizer for QuadraticProgram {
    fn maximize(&self, objective: &dyn Objective, bounds: &Bounds, rng: &mut StdRng) -> OptResult {
        let n = objective.dim();
        let mut fit_evaluations = 0u64;
        let (q, c, _) = Self::fit_quadratic(objective, &mut fit_evaluations);

        let grad = |x: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut g = c[i];
                for j in 0..n {
                    g += q[i][j] * x[j];
                }
                out[i] = g;
            }
        };

        let master = morph_parallel::derive_master(rng);
        let runs =
            morph_parallel::parallel_map_indices(self.parallelism, self.starts.max(1), |start| {
                let mut task_rng = morph_parallel::child_rng(master, start as u64);
                let mut x = bounds.sample(&mut task_rng);
                let mut g = vec![0.0; n];
                for _ in 0..self.iterations {
                    grad(&x, &mut g);
                    // Exact line search for quadratic: t* = gᵀg / (−gᵀQg) when
                    // the curvature along g is negative; otherwise take a bold
                    // fixed step toward the boundary.
                    let gg: f64 = g.iter().map(|v| v * v).sum();
                    if gg < 1e-18 {
                        break;
                    }
                    let mut gqg = 0.0;
                    for i in 0..n {
                        for j in 0..n {
                            gqg += g[i] * q[i][j] * g[j];
                        }
                    }
                    let t = if gqg < -1e-12 { -gg / gqg } else { 1.0 };
                    for i in 0..n {
                        x[i] += t * g[i];
                    }
                    bounds.project(&mut x);
                }
                let v = objective.value(&x);
                (x, v, 1u64)
            });
        let mut result = best_of_restarts(runs, self.iterations * self.starts.max(1));
        result.evaluations += fit_evaluations;
        result
    }

    fn name(&self) -> &'static str {
        "quadratic programming"
    }
}

/// Folds per-restart `(x, value, evaluations)` runs into one [`OptResult`]:
/// the best value wins, ties broken by the lowest restart index so the
/// outcome is independent of evaluation order.
fn best_of_restarts(runs: Vec<(Vec<f64>, f64, u64)>, iterations: usize) -> OptResult {
    let evaluations = runs.iter().map(|(_, _, e)| e).sum();
    let (x, value, _) = runs
        .into_iter()
        .reduce(|best, candidate| {
            if candidate.1 > best.1 {
                candidate
            } else {
                best
            }
        })
        .expect("at least one restart ran");
    OptResult {
        x,
        value,
        iterations,
        evaluations,
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

fn tournament(fitness: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..fitness.len());
    let b = rng.gen_range(0..fitness.len());
    if fitness[a] >= fitness[b] {
        a
    } else {
        b
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn solvers() -> Vec<Box<dyn Optimizer>> {
        vec![
            Box::new(GradientAscent::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(SimulatedAnnealing::default()),
            Box::new(QuadraticProgram::default()),
        ]
    }

    #[test]
    fn all_solvers_find_quadratic_peak() {
        // max −(x−0.3)² − (y+0.4)², peak at (0.3, −0.4), value 0.
        let obj = FnObjective::new(2, |x| -((x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2)));
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(1);
            let res = solver.maximize(&obj, &bounds, &mut rng);
            assert!(
                res.value > -1e-2,
                "{} missed the peak: value {}",
                solver.name(),
                res.value
            );
            assert!(
                (res.x[0] - 0.3).abs() < 0.1,
                "{} x0={}",
                solver.name(),
                res.x[0]
            );
            assert!(
                (res.x[1] + 0.4).abs() < 0.1,
                "{} x1={}",
                solver.name(),
                res.x[1]
            );
        }
    }

    #[test]
    fn solvers_respect_bounds() {
        // Unbounded maximum at +∞; solution must stay at the box edge.
        let obj = FnObjective::new(2, |x| x[0] + x[1]);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        for solver in solvers() {
            let mut rng = StdRng::seed_from_u64(2);
            let res = solver.maximize(&obj, &bounds, &mut rng);
            assert!(
                res.x.iter().all(|&v| (-1.0..=1.0).contains(&v)),
                "{}",
                solver.name()
            );
            assert!(
                res.value > 1.5,
                "{} should reach the corner, got {}",
                solver.name(),
                res.value
            );
        }
    }

    #[test]
    fn qp_is_exact_on_pure_quadratics() {
        // max −x'Ax + b'x with known optimum.
        let obj = FnObjective::new(3, |x| {
            -(2.0 * x[0] * x[0] + x[1] * x[1] + 0.5 * x[2] * x[2]) + x[0] + 2.0 * x[1] - x[2]
        });
        // Optimum: x0 = 1/4, x1 = 1, x2 = −1.
        let bounds = Bounds::uniform(3, -2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let res = QuadraticProgram::default().maximize(&obj, &bounds, &mut rng);
        assert!((res.x[0] - 0.25).abs() < 1e-3, "x0={}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x1={}", res.x[1]);
        assert!((res.x[2] + 1.0).abs() < 1e-3, "x2={}", res.x[2]);
    }

    #[test]
    fn annealing_escapes_local_maxima() {
        // Double bump: local max at −0.5 (h=0.5), global at +0.6 (h=1).
        let obj = FnObjective::new(1, |x| {
            let a = 0.5 * (-(x[0] + 0.5).powi(2) / 0.01).exp();
            let b = 1.0 * (-(x[0] - 0.6).powi(2) / 0.01).exp();
            a + b
        });
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut found = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = SimulatedAnnealing::default().maximize(&obj, &bounds, &mut rng);
            if (res.x[0] - 0.6).abs() < 0.05 {
                found += 1;
            }
        }
        assert!(
            found >= 3,
            "annealing found the global bump only {found}/5 times"
        );
    }

    #[test]
    fn parallel_restarts_match_serial() {
        use rand::Rng;
        let obj = FnObjective::new(3, |x: &[f64]| {
            -((x[0] - 0.1).powi(2) + (x[1] + 0.2).powi(2) + x[2].powi(2))
        });
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let run = |solver: &dyn Optimizer| {
            let mut rng = StdRng::seed_from_u64(5);
            let res = solver.maximize(&obj, &bounds, &mut rng);
            (res, rng.gen::<u64>())
        };
        let (ga_serial, ga_serial_stream) = run(&GradientAscent {
            parallelism: 1,
            ..Default::default()
        });
        let (ga_wide, ga_wide_stream) = run(&GradientAscent {
            parallelism: 4,
            ..Default::default()
        });
        assert_eq!(
            ga_serial, ga_wide,
            "gradient ascent must not depend on worker count"
        );
        assert_eq!(
            ga_serial_stream, ga_wide_stream,
            "caller RNG stream must stay aligned"
        );

        let (qp_serial, _) = run(&QuadraticProgram {
            parallelism: 1,
            ..Default::default()
        });
        let (qp_wide, _) = run(&QuadraticProgram {
            parallelism: 4,
            ..Default::default()
        });
        assert_eq!(
            qp_serial, qp_wide,
            "QP starts must not depend on worker count"
        );
    }

    #[test]
    fn results_report_effort() {
        let obj = FnObjective::new(1, |x| -x[0] * x[0]);
        let bounds = Bounds::uniform(1, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let res = GradientAscent::default().maximize(&obj, &bounds, &mut rng);
        assert!(res.iterations > 0);
        assert!(res.evaluations > 0);
    }
}
