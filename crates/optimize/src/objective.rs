//! Objective functions, bounds, and constrained-problem wrappers.

use std::fmt;

/// A real-valued objective over `R^dim`, maximized by the solvers.
///
/// The default gradient is central finite differences, so implementors only
/// need [`Objective::value`].
///
/// `Sync` is a supertrait because solvers evaluate one objective from many
/// restart threads concurrently; objectives are read-only during a solve,
/// so any implementor without interior mutability satisfies it for free.
pub trait Objective: Sync {
    /// Dimension of the search space.
    fn dim(&self) -> usize;

    /// Objective value at `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()`.
    fn value(&self, x: &[f64]) -> f64;

    /// Gradient at `x`, written into `out`. Defaults to central finite
    /// differences with step `1e-6`.
    fn gradient(&self, x: &[f64], out: &mut [f64]) {
        let h = 1e-6;
        let mut probe = x.to_vec();
        for i in 0..self.dim() {
            let orig = probe[i];
            probe[i] = orig + h;
            let up = self.value(&probe);
            probe[i] = orig - h;
            let down = self.value(&probe);
            probe[i] = orig;
            out[i] = (up - down) / (2.0 * h);
        }
    }
}

/// An objective defined by a closure.
///
/// # Examples
///
/// ```
/// use morph_optimize::{FnObjective, Objective};
///
/// let sphere = FnObjective::new(2, |x| -(x[0] * x[0] + x[1] * x[1]));
/// assert_eq!(sphere.value(&[0.0, 0.0]), 0.0);
/// ```
pub struct FnObjective<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Sync> FnObjective<F> {
    /// Wraps `f` as a `dim`-dimensional objective.
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective { dim, f }
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> Objective for FnObjective<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

impl<F> fmt::Debug for FnObjective<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnObjective")
            .field("dim", &self.dim)
            .finish()
    }
}

/// Box bounds for the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Per-coordinate bounds.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any lower bound exceeds its upper bound.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bounds length mismatch");
        for (l, u) in lower.iter().zip(&upper) {
            assert!(l <= u, "lower bound exceeds upper bound");
        }
        Bounds { lower, upper }
    }

    /// The same `[lo, hi]` interval in every coordinate.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        Bounds::new(vec![lo; dim], vec![hi; dim])
    }

    /// Search-space dimension.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Clamps `x` into the box in place.
    pub fn project(&self, x: &mut [f64]) {
        for ((xi, &lo), &hi) in x.iter_mut().zip(&self.lower).zip(&self.upper) {
            *xi = xi.clamp(lo, hi);
        }
    }

    /// A uniform random point inside the box.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&l, &u)| if l == u { l } else { rng.gen_range(l..u) })
            .collect()
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at the best point.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Total objective evaluations (including gradient probes).
    pub evaluations: u64,
}

/// A maximization problem with inequality constraints `g_i(x) ≤ 0`, solved
/// via escalating quadratic penalties — the form assertion validation takes
/// in Section 6.1.
pub struct ConstrainedProblem<'a> {
    objective: &'a dyn Objective,
    constraints: Vec<&'a dyn Objective>,
}

impl<'a> ConstrainedProblem<'a> {
    /// Creates a problem maximizing `objective` subject to every constraint
    /// function being ≤ 0.
    ///
    /// # Panics
    ///
    /// Panics if any constraint has a different dimension.
    pub fn new(objective: &'a dyn Objective, constraints: Vec<&'a dyn Objective>) -> Self {
        for c in &constraints {
            assert_eq!(c.dim(), objective.dim(), "constraint dimension mismatch");
        }
        ConstrainedProblem {
            objective,
            constraints,
        }
    }

    /// Search dimension.
    pub fn dim(&self) -> usize {
        self.objective.dim()
    }

    /// Penalized objective value with the given penalty weight.
    pub fn penalized_value(&self, x: &[f64], weight: f64) -> f64 {
        let mut v = self.objective.value(x);
        for c in &self.constraints {
            let g = c.value(x);
            if g > 0.0 {
                v -= weight * g * g;
            }
        }
        v
    }

    /// True objective (unpenalized).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.value(x)
    }

    /// Maximum constraint violation at `x` (0 when feasible).
    pub fn violation(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.value(x).max(0.0))
            .fold(0.0, f64::max)
    }
}

impl fmt::Debug for ConstrainedProblem<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstrainedProblem")
            .field("dim", &self.dim())
            .field("n_constraints", &self.constraints.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_gradient_matches_analytic() {
        let quad = FnObjective::new(2, |x| -(x[0] * x[0] + 3.0 * x[1] * x[1]));
        let mut g = [0.0; 2];
        quad.gradient(&[1.0, 2.0], &mut g);
        assert!((g[0] + 2.0).abs() < 1e-4);
        assert!((g[1] + 12.0).abs() < 1e-4);
    }

    #[test]
    fn bounds_projection() {
        let b = Bounds::uniform(3, -1.0, 1.0);
        let mut x = vec![-5.0, 0.5, 2.0];
        b.project(&mut x);
        assert_eq!(x, vec![-1.0, 0.5, 1.0]);
    }

    #[test]
    fn bounds_sampling_inside_box() {
        let b = Bounds::new(vec![0.0, -2.0], vec![1.0, -1.0]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let x = b.sample(&mut rng);
            assert!(x[0] >= 0.0 && x[0] <= 1.0);
            assert!(x[1] >= -2.0 && x[1] <= -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn invalid_bounds_rejected() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn penalty_punishes_violation() {
        let obj = FnObjective::new(1, |x| x[0]);
        let con = FnObjective::new(1, |x| x[0] - 0.5); // x ≤ 0.5
        let prob = ConstrainedProblem::new(&obj, vec![&con]);
        assert!(prob.penalized_value(&[0.4], 100.0) > prob.penalized_value(&[1.0], 100.0));
        assert_eq!(prob.violation(&[0.4]), 0.0);
        assert!((prob.violation(&[1.0]) - 0.5).abs() < 1e-12);
    }
}
