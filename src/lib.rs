//! Umbrella crate for the MorphQPV reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency. Downstream users should normally depend on the
//! individual crates (`morphqpv`, `morph-qsim`, …) directly.

pub use morph_backend as backend;
pub use morph_baselines as baselines;
pub use morph_bench as bench;
pub use morph_clifford as clifford;
pub use morph_linalg as linalg;
pub use morph_optimize as optimize;
pub use morph_qalgo as qalgo;
pub use morph_qprog as qprog;
pub use morph_qsim as qsim;
pub use morph_serve as serve;
pub use morph_store as store;
pub use morph_tomography as tomography;
pub use morph_trace as trace;
pub use morphqpv as core;
