//! Integration tests for the `morph-serve` service layer: single-flight
//! coalescing, backpressure, deadlines, panic isolation, and shutdown.
//!
//! The coalescing tests assert the tentpole invariant end to end: N
//! identical concurrent jobs produce **exactly one characterization**
//! (observed via the `serve/characterize_leader` trace counter — the only
//! place scheduling is allowed to show) and **bit-identical responses** at
//! every worker count.

use morphqpv_suite::serve::{JobError, JobRequest, JobResponse, ServeConfig, Service, SubmitError};
use morphqpv_suite::trace;
use proptest::prelude::*;

/// Tests that toggle the process-global trace recorder serialize on one
/// lock (same pattern as `tests/trace_determinism.rs`).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const GHZ_PROGRAM: &str = "\
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
";

fn ghz_request(id: &str, seed: u64) -> JobRequest {
    let mut req = JobRequest::new(id, GHZ_PROGRAM, vec![0]);
    req.seed = seed;
    req.samples = Some(4);
    req
}

fn service_with(workers: usize, queue_capacity: usize) -> Service {
    Service::start(&ServeConfig {
        workers,
        queue_capacity,
        ..ServeConfig::default()
    })
    .expect("in-memory service starts")
}

/// Runs `n` identical jobs on a fresh service and returns their response
/// lines (in submission order) plus the number of characterizations
/// actually computed.
fn run_identical_batch(workers: usize, n: usize) -> (Vec<String>, u64, u64) {
    trace::reset();
    trace::set_enabled(true);
    let service = service_with(workers, n.max(4));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            service
                .submit(ghz_request(&format!("job-{i}"), 7))
                .expect("queue sized for the batch")
        })
        .collect();
    let lines: Vec<String> = handles
        .into_iter()
        .map(|h| {
            let out = h.wait().expect("job completes");
            // The id is deliberately excluded so lines are comparable.
            JobResponse::from_report("x", out.fingerprint, &out.report).to_json_line()
        })
        .collect();
    service.shutdown();
    let leaders = trace::counter_total("serve/characterize_leader");
    let shared =
        trace::counter_total("serve/coalesced_hit") + trace::counter_total("serve/cache_hit");
    trace::set_enabled(false);
    (lines, leaders, shared)
}

#[test]
fn identical_concurrent_jobs_share_one_characterization() {
    let _g = serial();
    let mut baselines: Vec<String> = Vec::new();
    for workers in [2usize, 8] {
        let (lines, leaders, shared) = run_identical_batch(workers, 8);
        assert_eq!(
            leaders, 1,
            "exactly one characterization must run ({workers} workers)"
        );
        assert_eq!(
            shared, 7,
            "the other seven jobs must coalesce or hit the cache ({workers} workers)"
        );
        for line in &lines {
            assert_eq!(
                line, &lines[0],
                "responses must be bit-identical within a batch ({workers} workers)"
            );
        }
        baselines.push(lines[0].clone());
    }
    assert_eq!(
        baselines[0], baselines[1],
        "responses must be bit-identical across worker counts"
    );
}

#[test]
fn coalesced_and_solo_runs_report_identically() {
    let _g = serial();
    // A single job on one worker: no concurrency, no sharing possible.
    let service = service_with(1, 4);
    let solo = service
        .submit(ghz_request("solo", 7))
        .expect("submit")
        .wait()
        .expect("job completes");
    service.shutdown();
    let solo_line = JobResponse::from_report("x", solo.fingerprint, &solo.report).to_json_line();

    let (lines, _, _) = run_identical_batch(8, 8);
    assert_eq!(
        solo_line, lines[0],
        "coalescing must be invisible in the response"
    );
}

#[test]
fn queue_saturation_is_a_structured_rejection_not_a_deadlock() {
    let _g = serial();
    let service = service_with(2, 2);
    // Hold queued work so saturation is deterministic.
    service.pause();
    let h1 = service.submit(ghz_request("q-1", 1)).expect("fits");
    let h2 = service.submit(ghz_request("q-2", 2)).expect("fits");
    let rejection = service.submit(ghz_request("q-3", 3));
    match rejection {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!(
            "expected QueueFull, got {other:?}",
            other = other.map(|_| "accepted")
        ),
    }
    // Releasing the queue serves the accepted jobs — nothing was lost.
    service.resume();
    assert!(h1.wait().expect("q-1 completes").report.all_passed());
    assert!(h2.wait().expect("q-2 completes").report.all_passed());
    // And the service accepts new work after the rejection.
    let h4 = service.submit(ghz_request("q-4", 4)).expect("accepted");
    assert!(h4.wait().expect("q-4 completes").report.all_passed());
    service.shutdown();
}

#[test]
fn zero_deadline_reports_deadline_exceeded_and_service_survives() {
    let _g = serial();
    let service = service_with(2, 8);
    let mut doomed = ghz_request("doomed", 5);
    doomed.deadline_ms = Some(0);
    let err = service
        .submit(doomed)
        .expect("accepted")
        .wait()
        .expect_err("a zero deadline cannot be met");
    assert!(
        matches!(err, JobError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    // The worker that hit the deadline keeps serving.
    let ok = service
        .submit(ghz_request("after", 5))
        .expect("accepted")
        .wait()
        .expect("job completes");
    assert!(ok.report.all_passed());
    service.shutdown();
}

#[test]
fn panicking_job_is_contained_to_its_own_error() {
    let _g = serial();
    // The assertion references tracepoint 9, which the program never
    // declares — validation panics on the missing trace.
    let bad_program = "\
qreg q[2];
T 1 q[0];
h q[0];
T 2 q[0,1];
// assert guarantee is_pure(T9)
";
    let service = service_with(2, 8);
    let err = service
        .submit(JobRequest::new("boom", bad_program, vec![0]))
        .expect("accepted")
        .wait()
        .expect_err("the job must fail");
    assert!(
        matches!(err, JobError::Panicked { .. }),
        "expected Panicked, got {err:?}"
    );
    // The pool survived the panic and still runs jobs.
    let ok = service
        .submit(ghz_request("after-boom", 3))
        .expect("accepted")
        .wait()
        .expect("job completes");
    assert!(ok.report.all_passed());
    service.shutdown();
}

#[test]
fn drain_completes_accepted_work_and_keeps_accepting() {
    let _g = serial();
    let service = service_with(2, 16);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(ghz_request(&format!("d-{i}"), i as u64))
                .expect("accepted")
        })
        .collect();
    service.drain();
    assert_eq!(service.queue_depth(), 0, "drain must empty the queue");
    for h in handles {
        h.wait().expect("accepted work completed during drain");
    }
    let late = service.submit(ghz_request("late", 99)).expect("accepted");
    late.wait().expect("post-drain job completes");
    service.shutdown();
}

#[test]
fn invalid_requests_are_rejected_in_band() {
    let _g = serial();
    let service = service_with(1, 4);
    let mut bad_qubit = ghz_request("bad-qubit", 1);
    bad_qubit.input_qubits = vec![7];
    let err = service
        .submit(bad_qubit)
        .expect("accepted")
        .wait()
        .expect_err("qubit 7 does not exist");
    assert!(matches!(err, JobError::Invalid { .. }), "{err:?}");

    let mut bad_noise = ghz_request("bad-noise", 1);
    bad_noise.noise = Some("sunny".to_string());
    let err = service
        .submit(bad_noise)
        .expect("accepted")
        .wait()
        .expect_err("unknown noise model");
    assert!(matches!(err, JobError::Invalid { .. }), "{err:?}");
    service.shutdown();
}

/// Regression for the poisoned-lock sweep: a job that panics *while
/// leading a characterization flight* (inside locks, not during
/// validation) must not wedge the service — the flight is abandoned, the
/// poisoned mutexes recover, and both retries and unrelated jobs succeed.
#[test]
fn panicking_leader_mid_characterization_leaves_the_service_healthy() {
    let _g = serial();
    // No `T` statements at all: the request parses and validates, wins
    // the flight for its fingerprint, then panics inside
    // characterization (the tracepoint list must be nonempty).
    let no_tracepoints = "\
qreg q[2];
h q[0];
cx q[0],q[1];
// assert assume is_pure(T1) guarantee is_pure(T2)
";
    let service = service_with(2, 8);
    let err = service
        .submit(JobRequest::new("mid-boom", no_tracepoints, vec![0]))
        .expect("accepted")
        .wait()
        .expect_err("characterization must panic");
    assert!(matches!(err, JobError::Panicked { .. }), "{err:?}");
    // The same fingerprint again: the abandoned flight must re-elect a
    // fresh leader (not deadlock on a stale entry or poisoned lock) and
    // fail the same way.
    let err = service
        .submit(JobRequest::new("mid-boom-again", no_tracepoints, vec![0]))
        .expect("accepted")
        .wait()
        .expect_err("the retry elects a fresh leader and panics again");
    assert!(matches!(err, JobError::Panicked { .. }), "{err:?}");
    // And a healthy job on the same (recovered) service still passes.
    let ok = service
        .submit(ghz_request("after-mid-boom", 3))
        .expect("accepted")
        .wait()
        .expect("job completes");
    assert!(ok.report.all_passed());
    service.shutdown();
}

/// A leader whose `CancelToken` fires before publishing abandons its
/// flight; the waiting follower must re-elect itself leader, recompute,
/// and produce a byte-identical response to an undisturbed solo run.
#[test]
fn cancelled_leader_abandons_and_the_reelected_follower_matches_bytes() {
    use morphqpv_suite::core::prelude::{
        assertions_from_source, parse_program, CancelToken, Characterization, Verifier,
    };
    use morphqpv_suite::serve::singleflight::{FlightOutcome, Joined, SingleFlight};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    let _g = serial();

    // Baseline: an undisturbed solo service run of the same request.
    let service = service_with(1, 4);
    let solo = service
        .submit(ghz_request("solo", 7))
        .expect("submit")
        .wait()
        .expect("job completes");
    service.shutdown();
    let solo_line = JobResponse::from_report("x", solo.fingerprint, &solo.report).to_json_line();

    // Rebuild the verifier exactly as the service does for ghz_request.
    let build = || {
        let circuit = parse_program(GHZ_PROGRAM).expect("parse");
        let mut verifier = Verifier::new(circuit).input_qubits(&[0]).samples(4);
        for a in assertions_from_source(GHZ_PROGRAM).expect("assertions") {
            verifier = verifier.assert_that(a);
        }
        verifier
    };
    let mut job_rng = StdRng::seed_from_u64(7);
    let char_seed: u64 = job_rng.gen();
    let fingerprint = build().characterization_fingerprint(char_seed);

    let flight: Arc<SingleFlight<_, Characterization>> = Arc::new(SingleFlight::new());
    let doomed_guard = match flight.join(fingerprint) {
        Joined::Leader(guard) => guard,
        Joined::Follower(_) => unreachable!("first join leads"),
    };
    let (registered_tx, registered_rx) = mpsc::channel();
    let follower = std::thread::spawn({
        let flight = Arc::clone(&flight);
        move || {
            let slot = match flight.join(fingerprint) {
                Joined::Follower(slot) => slot,
                Joined::Leader(_) => panic!("the doomed leader's flight must still be open"),
            };
            registered_tx.send(()).expect("main thread waits");
            let outcome = slot.wait(Duration::from_millis(2), || false);
            assert!(
                matches!(outcome, FlightOutcome::Abandoned),
                "a cancelled leader must abandon, not complete"
            );
            // Re-election: the follower becomes the new leader and runs
            // the computation the original leader never published.
            match flight.join(fingerprint) {
                Joined::Leader(guard) => {
                    let token = CancelToken::new();
                    let ch = build()
                        .try_characterize_for_seed(char_seed, &token)
                        .expect("re-elected leader characterizes");
                    guard.complete(ch.clone());
                    ch
                }
                Joined::Follower(_) => panic!("an abandoned flight must be re-electable"),
            }
        }
    });
    registered_rx.recv().expect("follower registered");
    // The original leader's token fires before publishing: in the
    // service this is a `?` that drops the guard uncompleted.
    drop(doomed_guard);

    let characterization = follower.join().expect("follower thread");
    assert_eq!(flight.in_flight(), 0, "the completed flight retired");

    // Finish the pipeline with the re-elected leader's artifact and
    // compare the full response line byte for byte.
    let mut job_rng = StdRng::seed_from_u64(7);
    let _char_seed: u64 = job_rng.gen();
    let token = CancelToken::new();
    let report = build()
        .try_validate_with(characterization, &mut job_rng, None, &token)
        .expect("validation succeeds");
    let reelected_line = JobResponse::from_report("x", fingerprint, &report).to_json_line();
    assert_eq!(
        reelected_line, solo_line,
        "re-election must be invisible in the response bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant, property-tested: any batch size and worker
    /// count yields exactly one characterization and bit-identical
    /// responses.
    #[test]
    fn coalescing_holds_for_any_batch_and_worker_count(
        workers in 1usize..=8,
        n in 2usize..=10,
    ) {
        let _g = serial();
        let (lines, leaders, shared) = run_identical_batch(workers, n);
        prop_assert_eq!(leaders, 1);
        prop_assert_eq!(shared, (n - 1) as u64);
        for line in &lines {
            prop_assert_eq!(line, &lines[0]);
        }
    }
}
