//! Cross-crate integration tests: the full MorphQPV pipeline against the
//! benchmark programs, exercising assertion statement, characterization,
//! and optimization-based validation together.

use morphqpv_suite::bench::{compare_programs, CompareConfig};
use morphqpv_suite::core::{
    AssumeGuarantee, RelationPredicate, StatePredicate, ValidationConfig, Verdict, Verifier,
};
use morphqpv_suite::qalgo::{QuantumLock, RepetitionCode, Teleportation};
use morphqpv_suite::qprog::{Circuit, TracepointId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn teleportation_round_trip_verifies() {
    let layout = Teleportation::new(1);
    let mut program = Circuit::new(layout.n_qubits());
    program.tracepoint(1, &layout.input_qubits());
    program.extend_from(&layout.circuit_coherent());
    program.tracepoint(2, &layout.output_qubits());

    let report = Verifier::new(program)
        .input_qubits(&layout.input_qubits())
        .samples(4)
        .assert_that(
            AssumeGuarantee::new()
                .assume(TracepointId(1), StatePredicate::IsPure)
                .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal),
        )
        .run(&mut StdRng::seed_from_u64(1));
    assert!(report.all_passed());
    assert!(report.ledger().executions > 0);
}

#[test]
fn broken_teleportation_yields_counterexample() {
    let layout = Teleportation::new(1);
    let mut program = Circuit::new(layout.n_qubits());
    program.tracepoint(1, &layout.input_qubits());
    program.extend_from(&layout.circuit_coherent_with_bug(0));
    program.tracepoint(2, &layout.output_qubits());

    let report = Verifier::new(program)
        .input_qubits(&layout.input_qubits())
        .samples(4)
        .assert_that(AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::Equal,
        ))
        .run(&mut StdRng::seed_from_u64(2));
    let failure = report.first_failure().expect("bug must be detected");
    match &failure.verdict {
        Verdict::Failed {
            counterexample,
            max_objective,
            ..
        } => {
            assert!(*max_objective > 0.3);
            assert!(morphqpv_suite::linalg::is_density_matrix(
                counterexample,
                1e-6
            ));
        }
        other => panic!("unexpected verdict {other:?}"),
    }
}

#[test]
fn measured_teleportation_with_feedback_verifies() {
    // The mid-measurement variant: branch enumeration plus classical
    // feedback, end to end through the verifier.
    let layout = Teleportation::new(1);
    let mut program = Circuit::with_cbits(layout.n_qubits(), 2);
    program.tracepoint(1, &layout.input_qubits());
    program.extend_from(&layout.circuit());
    program.tracepoint(2, &layout.output_qubits());

    let report = Verifier::new(program)
        .input_qubits(&layout.input_qubits())
        .samples(4)
        .assert_that(AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::Equal,
        ))
        .run(&mut StdRng::seed_from_u64(3));
    assert!(
        report.all_passed(),
        "{:?}",
        report.first_failure().map(|o| &o.verdict)
    );
}

#[test]
fn quantum_lock_bug_key_found_by_assertion() {
    // 4-qubit lock: assume the input is not the key, guarantee |0> output.
    // The buggy circuit violates it; the counter-example reconstructs an
    // input overlapping the unexpected key.
    let lock = QuantumLock::new(4, 0b001);
    let mut program = Circuit::new(4);
    program.tracepoint(1, &lock.input_qubits());
    program.extend_from(&lock.circuit_with_bug(0b110));
    program.tracepoint(2, &[lock.output_qubit()]);

    let zero_out = morphqpv_suite::linalg::CMatrix::outer(
        &[
            morphqpv_suite::linalg::C64::ONE,
            morphqpv_suite::linalg::C64::ZERO,
        ],
        &[
            morphqpv_suite::linalg::C64::ONE,
            morphqpv_suite::linalg::C64::ZERO,
        ],
    );
    let key_state = morphqpv_suite::qsim::StateVector::basis_state(3, 0b001).density_matrix();
    let report = Verifier::new(program)
        .input_qubits(&lock.input_qubits())
        // Full tomographic span so the out-of-sample bug key is reachable.
        .samples(64)
        .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
        .assert_that(
            AssumeGuarantee::new()
                // Assume the input has (almost) no overlap with the real
                // key — the paper's "input is not |key⟩" assumption.
                .assume(
                    TracepointId(1),
                    StatePredicate::custom(move |rho| rho.hs_inner_re(&key_state) - 0.05),
                )
                .guarantee_state(TracepointId(2), StatePredicate::equals(zero_out)),
        )
        .run(&mut StdRng::seed_from_u64(4));
    let failure = report
        .first_failure()
        .expect("unexpected key must be found");
    if let Verdict::Failed { counterexample, .. } = &failure.verdict {
        // The violating input must overlap the bug key |110>.
        let bug = morphqpv_suite::qsim::StateVector::basis_state(3, 0b110).density_matrix();
        let overlap = counterexample.hs_inner_re(&bug);
        assert!(
            overlap > 0.05,
            "counter-example should involve the bug key, overlap {overlap}"
        );
    }
}

#[test]
fn qec_round_trip_preserves_logical_qubit() {
    let code = RepetitionCode::new(3);
    let mut program = Circuit::new(3);
    program.tracepoint(1, &[0]);
    program.extend_from(&code.circuit(None));
    program.tracepoint(2, &[0]);
    let report = Verifier::new(program)
        .input_qubits(&[0])
        .samples(4)
        .assert_that(AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::Equal,
        ))
        .run(&mut StdRng::seed_from_u64(5));
    assert!(report.all_passed());
}

#[test]
fn bernstein_vazirani_verifies_against_its_spec() {
    // BV with secret 101: for the |0…0> query register the output register
    // reads the secret deterministically; assert it via the probability
    // predicate on the output tracepoint.
    let n = 3usize;
    let secret = 0b101u64;
    let mut program = Circuit::with_cbits(n + 1, 0);
    program.extend_from(&morphqpv_suite::qalgo::bernstein_vazirani(n, secret));
    program.tracepoint(1, &[0, 1, 2]);
    // Query register starts in |0…0>; input qubit choice is irrelevant for
    // BV's determinism, so characterize over the ancilla to keep the input
    // space trivial.
    let zero = morphqpv_suite::qsim::StateVector::basis_state(1, 0).density_matrix();
    let report = Verifier::new(program)
        .input_qubits(&[3])
        .samples(4)
        .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
        .assert_that(
            AssumeGuarantee::new()
                // BV's contract presumes the ancilla starts in |0⟩.
                .assume(
                    morphqpv_suite::core::StateRef::Input,
                    StatePredicate::equals(zero),
                )
                .guarantee_state(
                    TracepointId(1),
                    StatePredicate::ProbabilityAtLeast {
                        basis: secret as usize,
                        p: 0.99,
                    },
                ),
        )
        .run(&mut StdRng::seed_from_u64(8));
    assert!(
        report.all_passed(),
        "{:?}",
        report.first_failure().map(|o| &o.verdict)
    );
}

#[test]
fn grover_output_verified_and_wrong_mark_detected() {
    let n = 3usize;
    let marked = 0b110u64;
    let build = |m: u64| {
        let mut c = Circuit::new(n);
        c.extend_from(&morphqpv_suite::qalgo::grover(n, m));
        c.tracepoint(1, &(0..n).collect::<Vec<_>>());
        c
    };
    let assertion = || {
        let zero = morphqpv_suite::qsim::StateVector::basis_state(1, 0).density_matrix();
        AssumeGuarantee::new()
            .assume(
                morphqpv_suite::core::StateRef::Input,
                StatePredicate::equals(zero),
            )
            .guarantee_state(
                TracepointId(1),
                StatePredicate::ProbabilityAtLeast {
                    basis: marked as usize,
                    p: 0.7,
                },
            )
    };
    let good = Verifier::new(build(marked))
        .input_qubits(&[0])
        .samples(4)
        .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
        .assert_that(assertion())
        .run(&mut StdRng::seed_from_u64(9));
    assert!(
        good.all_passed(),
        "{:?}",
        good.first_failure().map(|o| &o.verdict)
    );
    // A Grover oracle marking the wrong state violates the same spec.
    let bad = Verifier::new(build(0b001))
        .input_qubits(&[0])
        .samples(4)
        .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
        .assert_that(assertion())
        .run(&mut StdRng::seed_from_u64(9));
    assert!(!bad.all_passed());
}

#[test]
fn compare_programs_catches_every_visible_phase_mutation() {
    let mut rng = StdRng::seed_from_u64(6);
    let reference = morphqpv_suite::qalgo::ghz(3);
    let mut caught = 0;
    let total = 10;
    for _ in 0..total {
        let (mutant, _) = morphqpv_suite::qalgo::inject_phase_bug(&reference, &mut rng);
        let config = CompareConfig::new(vec![0, 1, 2], vec![0, 1, 2]);
        let (bug, _, _) = compare_programs(&reference, &mutant, &config, &mut rng);
        if bug {
            caught += 1;
        }
    }
    // Phase gates inserted where a qubit is in |0> can be globally
    // invisible; everything else must be caught.
    assert!(caught >= 7, "caught only {caught}/{total}");
}

#[test]
fn shot_limited_characterization_still_verifies() {
    // With finite-shot tomography the decision threshold absorbs the noise.
    let mut program = Circuit::new(2);
    program.tracepoint(1, &[0, 1]);
    program.extend_from(&morphqpv_suite::qalgo::ghz(2));
    program.tracepoint(2, &[0, 1]);
    let x0x1 = morphqpv_suite::qsim::matrices::pauli_string("XX");
    let z = morphqpv_suite::qsim::matrices::pauli_string("ZI"); // T1 spans both qubits
    let report = Verifier::new(program)
        .input_qubits(&[0])
        .samples(4)
        .readout(morphqpv_suite::tomography::ReadoutMode::Shots(3000))
        .validation(ValidationConfig {
            decision_threshold: 0.25,
            ..Default::default()
        })
        .assert_that(
            // Exact invariant of the GHZ chain: ⟨XX⟩ of the output equals
            // ⟨Z⟩ of the input, for every input — robust to shot noise up
            // to the widened decision threshold.
            AssumeGuarantee::new().guarantee_relation(
                TracepointId(1),
                TracepointId(2),
                morphqpv_suite::core::RelationPredicate::custom(move |t1, t2| {
                    (morphqpv_suite::linalg::expectation(&z, t1)
                        - morphqpv_suite::linalg::expectation(&x0x1, t2))
                    .abs()
                        - 0.2
                }),
            ),
        )
        .run(&mut StdRng::seed_from_u64(7));
    assert!(
        report.all_passed(),
        "{:?}",
        report.first_failure().map(|o| &o.verdict)
    );
    assert!(
        report.ledger().shots > 10_000,
        "tomography must consume shots"
    );
}
