//! Cross-process store safety: two *processes* hammering the same
//! `MORPH_CACHE_DIR` fingerprint must produce exactly one on-disk
//! artifact, readable as valid JSON, with no lock debris left behind.
//!
//! The test re-execs its own binary (the `set_var`-free probe pattern
//! used across the workspace): each child starts a disk-backed
//! [`Service`], runs a burst of identical jobs, and exits 3 on success.
//! The parent runs two children concurrently against one directory and
//! then audits the directory. The fingerprint-keyed file lock
//! (`morph_store::FingerprintLock`) is what makes the concurrent
//! leaders' writes converge on a single artifact instead of torn JSON.

use std::path::{Path, PathBuf};

use morphqpv_suite::serve::{JobRequest, ServeConfig, Service};

const PROBE_ENV: &str = "MORPH_XPROC_PROBE_DIR";

const GHZ_PROGRAM: &str = "\
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
";

/// Child body: run a burst of identical disk-backed jobs, exit 3/4.
fn probe(cache_dir: &Path) -> ! {
    let service = match Service::start(&ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServeConfig::default()
    }) {
        Ok(service) => service,
        Err(_) => std::process::exit(4),
    };
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let mut request = JobRequest::new(format!("xproc-{i}"), GHZ_PROGRAM, vec![0]);
            request.seed = 7;
            request.samples = Some(4);
            service.submit(request).expect("queue sized for the burst")
        })
        .collect();
    let ok = handles.into_iter().all(|h| match h.wait() {
        Ok(out) => out.report.all_passed(),
        Err(_) => false,
    });
    service.shutdown();
    std::process::exit(if ok { 3 } else { 4 });
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect_files(&path, out);
        } else {
            out.push(path);
        }
    }
}

#[test]
fn two_processes_one_fingerprint_one_artifact() {
    if let Some(dir) = std::env::var_os(PROBE_ENV) {
        probe(Path::new(&dir));
    }

    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("morph-xproc-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cache dir");

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        std::process::Command::new(&exe)
            .args([
                "--exact",
                "two_processes_one_fingerprint_one_artifact",
                "--nocapture",
            ])
            .env(PROBE_ENV, &dir)
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("spawn probe child")
    };
    let mut a = spawn();
    let mut b = spawn();
    let status_a = a.wait().expect("child a exits");
    let status_b = b.wait().expect("child b exits");
    assert_eq!(status_a.code(), Some(3), "child a's jobs all pass");
    assert_eq!(status_b.code(), Some(3), "child b's jobs all pass");

    let mut files = Vec::new();
    collect_files(&dir, &mut files);
    let artifacts: Vec<&PathBuf> = files
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    assert_eq!(
        artifacts.len(),
        1,
        "exactly one artifact for one fingerprint, found {files:?}"
    );
    let text = std::fs::read_to_string(artifacts[0]).expect("read artifact");
    serde::json::parse(&text).expect("artifact is valid JSON, not torn by concurrent writers");

    let debris: Vec<&PathBuf> = files
        .iter()
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().contains(".lock"))
        })
        .collect();
    assert!(debris.is_empty(), "no lock debris may remain: {debris:?}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
