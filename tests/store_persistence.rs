//! Integration tests for the characterization artifact store: proptest
//! round-trips (artifacts survive serialize → persist → load →
//! deserialize bit-identically, including non-finite floats), corruption
//! tolerance, cross-process-style reuse through a tempdir-backed cache,
//! and fingerprint invalidation.

use std::fs;
use std::path::PathBuf;

use morphqpv_suite::core::{
    characterization_fingerprint, characterize_cached, ApproximationFunction,
    CharacterizationCache, CharacterizationConfig,
};
use morphqpv_suite::linalg::{CMatrix, C64};
use morphqpv_suite::qprog::Circuit;
use morphqpv_suite::qsim::NoiseModel;
use morphqpv_suite::store::{FingerprintBuilder, MorphStore};
use morphqpv_suite::tomography::CostLedger;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::Value;
use serde::{Deserialize, Serialize};

fn temp_dir(label: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "morph-persist-{label}-{}-{nanos}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Pushes a value through the full persistence path — encode to the store,
/// flush the memory tier, reload from the JSON file — and returns the
/// reloaded payload.
fn disk_round_trip(label: &str, payload: Value) -> Value {
    let dir = temp_dir(label);
    let fp = FingerprintBuilder::new("test/persist/v1")
        .field_str("label", label)
        .finish();
    let reloaded;
    {
        let mut store = MorphStore::open(&dir).expect("open store");
        store.put(fp, payload, 1).expect("persist");
        store.drop_memory();
        reloaded = store.get(&fp).expect("reload from disk");
    }
    fs::remove_dir_all(&dir).expect("cleanup");
    reloaded
}

fn assert_matrices_bit_identical(a: &CMatrix, b: &CMatrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c).unwrap(), b.get(r, c).unwrap());
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re mismatch at ({r},{c})");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im mismatch at ({r},{c})");
        }
    }
}

/// Arbitrary u64 biased toward the boundary cases that break a JSON path
/// routed through f64: zero, `u64::MAX`, and just past 2^53.
fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        Just((1u64 << 53) + 1),
        0u64..u64::MAX,
    ]
}

/// A dim-2 pure-state density matrix from Bloch angles.
fn rho_from_angles(theta: f64, phi: f64) -> CMatrix {
    let v = [
        C64::real((theta / 2.0).cos()),
        C64::new(phi.cos(), phi.sin()) * C64::real((theta / 2.0).sin()),
    ];
    CMatrix::outer(&v, &v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cost ledgers survive the disk round trip digit-exactly, including
    /// counters beyond 2^53 that an f64-mediated JSON path would corrupt.
    #[test]
    fn ledger_round_trips_bit_identically(
        executions in arb_u64(),
        shots in arb_u64(),
        quantum_ops in arb_u64(),
    ) {
        let ledger = CostLedger { executions, shots, quantum_ops };
        let back = CostLedger::from_value(&disk_round_trip("ledger", ledger.to_value()))
            .expect("decode ledger");
        prop_assert_eq!(back, ledger);
    }

    /// Raw matrices survive the disk round trip bit-identically even with
    /// non-finite entries (NaN payloads, infinities, negative zero).
    #[test]
    fn matrix_round_trips_non_finite_bits(
        bits in proptest::collection::vec(arb_u64(), 8..9),
        re in -2.0..2.0f64,
    ) {
        let special = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, re];
        let m = CMatrix::from_fn(2, 2, |r, c| {
            let i = 2 * r + c;
            C64::new(
                f64::from_bits(bits[2 * i]),
                special[(bits[2 * i + 1] % special.len() as u64) as usize],
            )
        });
        let back = CMatrix::from_value(&disk_round_trip("matrix", m.to_value()))
            .expect("decode matrix");
        assert_matrices_bit_identical(&m, &back);
    }

    /// Approximation functions survive the disk round trip: the sampled
    /// bases reload bit-identically and the rebuilt function predicts
    /// bit-identical outputs.
    #[test]
    fn approximation_function_round_trips(
        angles in proptest::collection::vec((0.1..3.0f64, 0.0..6.2f64), 3..4),
        probe_theta in 0.1..3.0f64,
    ) {
        let inputs: Vec<CMatrix> =
            angles.iter().map(|&(t, p)| rho_from_angles(t, p)).collect();
        // A fixed "program": traces are the inputs conjugated by Hadamard.
        let h = CMatrix::from_rows(&[
            &[C64::real(1.0), C64::real(1.0)],
            &[C64::real(1.0), C64::real(-1.0)],
        ]).scale(C64::real(std::f64::consts::FRAC_1_SQRT_2));
        let traces: Vec<CMatrix> =
            inputs.iter().map(|rho| h.matmul(rho).matmul(&h)).collect();
        let f = match ApproximationFunction::new(inputs, traces) {
            Ok(f) => f,
            // Near-duplicate sampled inputs make the gram system singular;
            // such draws are simply skipped.
            Err(_) => continue,
        };
        let back = ApproximationFunction::from_value(&disk_round_trip("approx", f.to_value()))
            .expect("decode approximation function");
        prop_assert_eq!(f.n_samples(), back.n_samples());
        for (a, b) in f.sampled_inputs().iter().zip(back.sampled_inputs()) {
            assert_matrices_bit_identical(a, b);
        }
        for (a, b) in f.sampled_traces().iter().zip(back.sampled_traces()) {
            assert_matrices_bit_identical(a, b);
        }
        let probe = rho_from_angles(probe_theta, 0.5);
        if let (Ok(want), Ok(got)) = (f.predict(&probe), back.predict(&probe)) {
            assert_matrices_bit_identical(&want, &got);
        }
    }
}

fn sample_program() -> Circuit {
    let mut c = Circuit::new(2);
    c.tracepoint(1, &[0]);
    c.h(0).cx(0, 1);
    c.tracepoint(2, &[0, 1]);
    c
}

fn assert_characterizations_identical(
    a: &morphqpv_suite::core::Characterization,
    b: &morphqpv_suite::core::Characterization,
) {
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(a.inputs.len(), b.inputs.len());
    for (x, y) in a.inputs.iter().zip(&b.inputs) {
        assert_eq!(x.prep, y.prep);
    }
    assert_eq!(
        a.traces.keys().collect::<Vec<_>>(),
        b.traces.keys().collect::<Vec<_>>()
    );
    for (id, states) in &a.traces {
        for (x, y) in states.iter().zip(&b.traces[id]) {
            assert_matrices_bit_identical(x, y);
        }
    }
}

/// The headline acceptance property: re-running a characterization against
/// a persistent cache directory — in a *fresh* cache handle, as a second
/// process would — costs zero new simulation and reproduces the first
/// run's results bit-identically.
#[test]
fn repeated_characterization_is_free_and_bit_identical() {
    let dir = temp_dir("reuse");
    let circuit = sample_program();
    let config = CharacterizationConfig::exact(vec![0], 4);

    let mut cache = CharacterizationCache::open(&dir).expect("open cache");
    let mut rng = StdRng::seed_from_u64(42);
    let cold = characterize_cached(&circuit, &config, &mut rng, &mut cache);
    assert_eq!(cache.stats().misses, 1);
    drop(cache);

    let mut fresh = CharacterizationCache::open(&dir).expect("reopen cache");
    let mut rng = StdRng::seed_from_u64(42);
    let warm = characterize_cached(&circuit, &config, &mut rng, &mut fresh);
    assert_eq!(fresh.stats().misses, 0, "warm run must not re-simulate");
    assert_eq!(fresh.stats().disk_hits, 1);
    assert!(fresh.stats().cost_saved > 0);
    assert_characterizations_identical(&cold, &warm);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A truncated artifact file degrades to a miss (re-characterization), and
/// the rewrite repairs the entry for the next run.
#[test]
fn corrupted_artifact_degrades_to_miss_and_repairs() {
    let dir = temp_dir("corrupt");
    let circuit = sample_program();
    let config = CharacterizationConfig::exact(vec![0], 3);

    {
        let mut cache = CharacterizationCache::open(&dir).expect("open cache");
        let mut rng = StdRng::seed_from_u64(9);
        characterize_cached(&circuit, &config, &mut rng, &mut cache);
    }
    // Truncate every stored artifact.
    for entry in fs::read_dir(&dir).expect("list dir") {
        let path = entry.expect("entry").path();
        let text = fs::read_to_string(&path).expect("read artifact");
        fs::write(&path, &text[..text.len() / 3]).expect("truncate");
    }

    let mut cache = CharacterizationCache::open(&dir).expect("reopen cache");
    let mut rng = StdRng::seed_from_u64(9);
    let repaired = characterize_cached(&circuit, &config, &mut rng, &mut cache);
    assert_eq!(cache.stats().misses, 1, "corrupt entry is a miss");
    assert_eq!(cache.store().stats().corrupt_entries, 1);

    // The miss rewrote the artifact: a third handle hits disk cleanly.
    let mut again = CharacterizationCache::open(&dir).expect("third open");
    let mut rng = StdRng::seed_from_u64(9);
    let reloaded = characterize_cached(&circuit, &config, &mut rng, &mut again);
    assert_eq!(again.stats().disk_hits, 1);
    assert_characterizations_identical(&repaired, &reloaded);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Any change to the characterized circuit or configuration produces a
/// different content address — the cache can never serve stale artifacts.
#[test]
fn fingerprint_invalidates_on_any_input_change() {
    let circuit = sample_program();
    let config = CharacterizationConfig::exact(vec![0], 4);
    let base = characterization_fingerprint(&circuit, &config, 77);

    let mut gate_tweak = sample_program();
    gate_tweak.z(1);
    assert_ne!(base, characterization_fingerprint(&gate_tweak, &config, 77));

    let noisy = CharacterizationConfig {
        noise: NoiseModel::ibm_cairo(),
        ..config.clone()
    };
    assert_ne!(base, characterization_fingerprint(&circuit, &noisy, 77));

    let bigger = CharacterizationConfig {
        n_samples: 5,
        ..config.clone()
    };
    assert_ne!(base, characterization_fingerprint(&circuit, &bigger, 77));

    assert_ne!(base, characterization_fingerprint(&circuit, &config, 78));
}
