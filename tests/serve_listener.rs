//! End-to-end tests for the `morph-serve` TCP listener: golden replay
//! over a real socket, cross-client coalescing, admission control, and
//! in-band error lines.
//!
//! Each test binds `127.0.0.1:0` (the OS picks a free port), talks the
//! newline-delimited JSON protocol through real `TcpStream`s, and shuts
//! the listener down at the end. Tests that read the process-global
//! trace recorder serialize on one lock, like `tests/serve_service.rs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use morphqpv_suite::serve::listener::{serve_listener, Listener, ListenerConfig};
use morphqpv_suite::serve::{ServeConfig, Service};
use morphqpv_suite::trace;

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const GHZ_PROGRAM: &str = "qreg q[3];\nT 1 q[0];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nT 2 q[0,1,2];\n// assert assume is_pure(T1) guarantee is_pure(T2)";

/// A request line matching the golden-fixture GHZ job, as raw JSON.
fn ghz_line(id: &str, seed: u64) -> String {
    let program = GHZ_PROGRAM.replace('\n', "\\n");
    format!(
        "{{\"id\":\"{id}\",\"program\":\"{program}\",\"input_qubits\":[0],\"seed\":{seed},\"samples\":4}}"
    )
}

fn start(workers: usize, listen: &ListenerConfig) -> (Arc<Service>, Listener) {
    let service = Arc::new(
        Service::start(&ServeConfig {
            workers,
            queue_capacity: 16,
            ..ServeConfig::default()
        })
        .expect("service starts"),
    );
    let listener = serve_listener(Arc::clone(&service), listen).expect("bind 127.0.0.1:0");
    (service, listener)
}

fn connect(listener: &Listener) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(listener.local_addr()).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    assert!(
        line.ends_with('\n'),
        "response lines are newline-terminated"
    );
    line.trim_end_matches('\n').to_string()
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let give_up = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < give_up, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The batch golden fixture must replay byte-for-byte over a socket: same
/// requests in, same response lines out, in request order.
#[test]
fn socket_replay_matches_the_batch_golden_fixture() {
    let _g = serial();
    let requests =
        std::fs::read_to_string("tests/fixtures/serve/requests.jsonl").expect("requests fixture");
    let golden =
        std::fs::read_to_string("tests/fixtures/serve/responses.jsonl").expect("golden fixture");

    let (service, listener) = start(4, &ListenerConfig::default());
    let (mut stream, mut reader) = connect(&listener);
    stream.write_all(requests.as_bytes()).expect("send batch");
    stream.flush().expect("flush");
    // Closing our write side tells the server the conversation is over;
    // it answers everything already read, then closes.
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut output = String::new();
    reader
        .read_to_string(&mut output)
        .expect("read all responses");
    assert_eq!(
        output, golden,
        "socket transcript drifted from the golden fixture"
    );

    listener.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

/// Identical requests from two separate clients must run exactly one
/// characterization and answer both byte-identically.
#[test]
fn identical_requests_across_two_clients_share_one_characterization() {
    let _g = serial();
    trace::reset();
    trace::set_enabled(true);

    let (service, listener) = start(2, &ListenerConfig::default());
    // Hold the pool so both jobs are in the system before either runs.
    service.pause();
    let (mut a, mut a_reader) = connect(&listener);
    let (mut b, mut b_reader) = connect(&listener);
    writeln!(a, "{}", ghz_line("same", 7)).expect("send a");
    writeln!(b, "{}", ghz_line("same", 7)).expect("send b");
    a.flush().expect("flush a");
    b.flush().expect("flush b");
    wait_until("both jobs queued", || service.queue_depth() == 2);
    service.resume();

    let line_a = read_line(&mut a_reader);
    let line_b = read_line(&mut b_reader);
    assert_eq!(
        line_a, line_b,
        "cross-client responses must be bit-identical"
    );
    assert!(line_a.contains("\"status\":\"passed\""), "{line_a}");

    let leaders = trace::counter_total("serve/characterize_leader");
    let shared = trace::counter_total("serve/coalesced_hit")
        + trace::counter_total("serve/cache_hit")
        + trace::counter_total("serve/cross_process_hit");
    trace::set_enabled(false);
    assert_eq!(leaders, 1, "exactly one characterization may run");
    assert_eq!(shared, 1, "the second job must share the first's work");

    listener.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

/// A connection past the quota gets one structured `connection_quota`
/// line and a clean close — never a silent drop.
#[test]
fn connection_quota_is_a_structured_line_then_close() {
    let _g = serial();
    let (service, listener) = start(
        1,
        &ListenerConfig {
            conn_limit: 1,
            ..ListenerConfig::default()
        },
    );
    let (mut a, mut a_reader) = connect(&listener);
    // Round-trip one job so connection A is registered before B arrives.
    writeln!(a, "{}", ghz_line("a-1", 7)).expect("send");
    a.flush().expect("flush");
    let first = read_line(&mut a_reader);
    assert!(first.contains("\"id\":\"a-1\""), "{first}");

    let (_b, mut b_reader) = connect(&listener);
    let refusal = read_line(&mut b_reader);
    assert!(
        refusal.contains("\"kind\":\"connection_quota\""),
        "{refusal}"
    );
    assert!(refusal.contains("\"status\":\"rejected\""), "{refusal}");
    assert!(refusal.contains("\"id\":\"<connection>\""), "{refusal}");
    let mut rest = String::new();
    b_reader.read_to_string(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "quota refusal closes the connection");

    listener.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

/// A request past the per-connection in-flight quota gets a `job_quota`
/// rejection in its response slot; request order is preserved.
#[test]
fn in_flight_quota_rejects_in_slot_in_request_order() {
    let _g = serial();
    trace::reset();
    trace::set_enabled(true);

    let (service, listener) = start(
        1,
        &ListenerConfig {
            inflight_limit: 1,
            ..ListenerConfig::default()
        },
    );
    // Hold the pool: the first job stays unanswered, so the second
    // request trips the in-flight quota deterministically.
    service.pause();
    let (mut a, mut a_reader) = connect(&listener);
    writeln!(a, "{}", ghz_line("keep", 7)).expect("send");
    writeln!(a, "{}", ghz_line("over", 7)).expect("send");
    a.flush().expect("flush");
    wait_until("the quota rejection", || {
        trace::counter_total("serve/job_quota_rejected") >= 1
    });
    service.resume();

    let first = read_line(&mut a_reader);
    let second = read_line(&mut a_reader);
    trace::set_enabled(false);
    assert!(first.contains("\"id\":\"keep\""), "{first}");
    assert!(first.contains("\"status\":\"passed\""), "{first}");
    assert!(second.contains("\"id\":\"over\""), "{second}");
    assert!(second.contains("\"kind\":\"job_quota\""), "{second}");

    listener.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

/// Unparseable lines answer in-band and do not disturb neighbours:
/// responses stay in request order around the bad line.
#[test]
fn invalid_lines_answer_in_band_in_request_order() {
    let _g = serial();
    let (service, listener) = start(2, &ListenerConfig::default());
    let (mut a, mut a_reader) = connect(&listener);
    writeln!(a, "{}", ghz_line("before", 7)).expect("send");
    writeln!(a, "this is not json").expect("send");
    writeln!(a, "{}", ghz_line("after", 7)).expect("send");
    a.flush().expect("flush");

    let first = read_line(&mut a_reader);
    let second = read_line(&mut a_reader);
    let third = read_line(&mut a_reader);
    assert!(first.contains("\"id\":\"before\""), "{first}");
    assert!(second.contains("\"kind\":\"invalid_request\""), "{second}");
    assert!(third.contains("\"id\":\"after\""), "{third}");
    assert_eq!(
        first.replace("before", "x"),
        third.replace("after", "x"),
        "identical jobs around a bad line still answer identically"
    );

    listener.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}
