//! Property-based tests for the optimization substrate: every solver must
//! respect bounds and find the optimum of random concave quadratics.

use morphqpv_suite::optimize::{
    Bounds, FnObjective, GeneticAlgorithm, GradientAscent, NelderMead, Optimizer, QuadraticProgram,
    SimulatedAnnealing, SolveError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random concave quadratic with its known argmax inside the box.
fn concave_quadratic(
    curvatures: Vec<f64>,
    optimum: Vec<f64>,
) -> (impl Fn(&[f64]) -> f64, Vec<f64>) {
    let f = move |x: &[f64]| -> f64 {
        x.iter()
            .zip(curvatures.iter().zip(&optimum))
            .map(|(&xi, (&c, &o))| -c * (xi - o).powi(2))
            .sum()
    };
    // Recompute optimum for the return value (clone semantics).
    (f, Vec::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn qp_and_adam_find_random_quadratic_optima(
        c1 in 0.5..3.0f64,
        c2 in 0.5..3.0f64,
        o1 in -0.8..0.8f64,
        o2 in -0.8..0.8f64,
        seed in 0..1000u64,
    ) {
        let (f, _) = concave_quadratic(vec![c1, c2], vec![o1, o2]);
        let objective = FnObjective::new(2, f);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        for solver in [
            Box::new(QuadraticProgram::default()) as Box<dyn Optimizer>,
            Box::new(GradientAscent::default()),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = solver.maximize(&objective, &bounds, &mut rng).unwrap();
            prop_assert!(
                (result.x[0] - o1).abs() < 0.05 && (result.x[1] - o2).abs() < 0.05,
                "{} missed ({o1},{o2}): got {:?}",
                solver.name(),
                result.x
            );
        }
    }

    #[test]
    fn population_solvers_respect_bounds_on_unbounded_objectives(
        slope1 in -3.0..3.0f64,
        slope2 in -3.0..3.0f64,
        seed in 0..1000u64,
    ) {
        // Linear objective: the optimum sits at a box corner.
        let objective = FnObjective::new(2, move |x| slope1 * x[0] + slope2 * x[1]);
        let bounds = Bounds::new(vec![-0.5, 0.0], vec![1.5, 2.0]);
        for solver in [
            Box::new(GeneticAlgorithm::default()) as Box<dyn Optimizer>,
            Box::new(SimulatedAnnealing::default()),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = solver.maximize(&objective, &bounds, &mut rng).unwrap();
            prop_assert!(result.x[0] >= -0.5 - 1e-12 && result.x[0] <= 1.5 + 1e-12);
            prop_assert!(result.x[1] >= 0.0 - 1e-12 && result.x[1] <= 2.0 + 1e-12);
            // Near-corner optimality when the slope is meaningful.
            if slope1.abs() > 0.5 {
                let corner = if slope1 > 0.0 { 1.5 } else { -0.5 };
                prop_assert!(
                    (result.x[0] - corner).abs() < 0.3,
                    "{}: x0={} for slope {slope1}",
                    solver.name(),
                    result.x[0]
                );
            }
        }
    }

    #[test]
    fn optimizers_never_return_worse_than_reported(
        c in 0.5..2.0f64,
        seed in 0..1000u64,
    ) {
        let objective = FnObjective::new(3, move |x| -c * x.iter().map(|v| v * v).sum::<f64>());
        let bounds = Bounds::uniform(3, -2.0, 2.0);
        for solver in [
            Box::new(QuadraticProgram::default()) as Box<dyn Optimizer>,
            Box::new(GeneticAlgorithm::default()),
            Box::new(SimulatedAnnealing::default()),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = solver.maximize(&objective, &bounds, &mut rng).unwrap();
            // The reported value is the objective at the reported point.
            let actual = -c * result.x.iter().map(|v| v * v).sum::<f64>();
            prop_assert!(
                (result.value - actual).abs() < 1e-9,
                "{} reported {} but point evaluates to {actual}",
                solver.name(),
                result.value
            );
        }
    }

    /// Degenerate configurations (zero restarts) and degenerate objectives
    /// (all-NaN) must produce a structured [`SolveError`], never a panic and
    /// never a NaN "optimum".
    #[test]
    fn hostile_solves_error_instead_of_panicking(
        dim in 1usize..4,
        seed in 0..1000u64,
    ) {
        let nan_objective = FnObjective::new(dim, |_| f64::NAN);
        let bounds = Bounds::uniform(dim, -1.0, 1.0);

        for solver in [
            Box::new(GradientAscent { restarts: 0, ..GradientAscent::default() }) as Box<dyn Optimizer>,
            Box::new(QuadraticProgram { starts: 0, ..QuadraticProgram::default() }),
            Box::new(NelderMead { restarts: 0, ..NelderMead::default() }),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let finite = FnObjective::new(dim, |x| -x.iter().map(|v| v * v).sum::<f64>());
            let err = solver.maximize(&finite, &bounds, &mut rng).unwrap_err();
            prop_assert!(
                matches!(err, SolveError::NoRestarts { .. }),
                "{}: expected NoRestarts, got {err}",
                solver.name()
            );
        }

        for solver in [
            Box::new(GradientAscent::default()) as Box<dyn Optimizer>,
            Box::new(QuadraticProgram::default()),
            Box::new(NelderMead::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(SimulatedAnnealing::default()),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let err = solver.maximize(&nan_objective, &bounds, &mut rng).unwrap_err();
            prop_assert!(
                matches!(err, SolveError::AllEvaluationsNaN { .. }),
                "{}: expected AllEvaluationsNaN, got {err}",
                solver.name()
            );
        }
    }
}
