//! Property tests for the surface syntax: parse∘write round-trips preserve
//! circuits, and the peephole simplifier preserves semantics on random
//! programs that include tracepoints and measurements.

use morphqpv_suite::qprog::{parse_program, simplify, write_program, Circuit, Executor};
use morphqpv_suite::qsim::{Gate, StateVector};
use proptest::prelude::*;

fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..4usize).prop_map(Gate::H),
        (0..4usize).prop_map(Gate::X),
        (0..4usize).prop_map(Gate::Y),
        (0..4usize).prop_map(Gate::Z),
        (0..4usize).prop_map(Gate::S),
        (0..4usize).prop_map(Gate::Sdg),
        (0..4usize).prop_map(Gate::T),
        ((0..4usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RX(q, a)),
        ((0..4usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RY(q, a)),
        ((0..4usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RZ(q, a)),
        ((0..4usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::Phase(q, a)),
        ((0..4usize), (0..4usize))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::CX(a, b)),
        ((0..4usize), (0..4usize))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::CZ(a, b)),
        ((0..4usize), (0..4usize))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::Swap(a, b)),
        Just(Gate::MCZ(vec![0, 1, 2])),
        (-2.0..2.0f64).prop_map(|a| Gate::MCRX(vec![0, 2], 3, a)),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (
        proptest::collection::vec(arb_gate(), 1..16),
        proptest::collection::vec((0u32..5, 0..4usize), 0..3),
    )
        .prop_map(|(gates, traces)| {
            let mut c = Circuit::new(4);
            let mid = gates.len() / 2;
            for (i, g) in gates.into_iter().enumerate() {
                if i == mid {
                    for &(id, q) in &traces {
                        c.tracepoint(id, &[q]);
                    }
                }
                c.gate(g);
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// write ∘ parse is the identity on representable circuits.
    #[test]
    fn surface_syntax_roundtrip(circuit in arb_circuit()) {
        let text = write_program(&circuit).expect("representable gates");
        let reparsed = parse_program(&text).expect("own output parses");
        prop_assert_eq!(reparsed, circuit);
    }

    /// The simplifier preserves semantics on random programs.
    #[test]
    fn simplifier_preserves_semantics(circuit in arb_circuit(), basis in 0..16usize) {
        let (simplified, _) = simplify(&circuit);
        let input = StateVector::basis_state(4, basis);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let ex = Executor::default();
        let a = ex.run_trajectory(&circuit, &input, &mut rng).final_state;
        let b = ex.run_trajectory(&simplified, &input, &mut rng).final_state;
        prop_assert!(
            a.inner(&b).re > 1.0 - 1e-9,
            "simplification changed semantics"
        );
    }

    /// Simplification never increases the gate count or the depth.
    #[test]
    fn simplifier_never_grows(circuit in arb_circuit()) {
        let (simplified, _) = simplify(&circuit);
        prop_assert!(simplified.gate_count() <= circuit.gate_count());
        prop_assert!(simplified.depth() <= circuit.depth());
    }
}
