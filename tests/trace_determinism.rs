//! Telemetry must be a pure observer: enabling the `morph-trace` recorder
//! must not perturb characterization results, verdicts, or cost ledgers —
//! at any worker count. The recorder never touches the per-task RNG
//! streams, so everything downstream stays bit-identical.

use morphqpv_suite::core::{
    characterize, AssumeGuarantee, CharacterizationConfig, RelationPredicate, Verifier,
};
use morphqpv_suite::qprog::{Circuit, TracepointId};
use morphqpv_suite::tomography::ReadoutMode;
use morphqpv_suite::trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The recorder's enabled flag is process-global and these tests toggle it,
/// so they serialize on one lock to avoid disabling each other mid-run.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn flip_program() -> Circuit {
    let mut c = Circuit::new(2);
    c.tracepoint(1, &[0]);
    c.x(0).h(1).cx(1, 0);
    c.tracepoint(2, &[0, 1]);
    c
}

fn characterize_with(parallelism: usize, tracing: bool) -> morphqpv_suite::core::Characterization {
    trace::set_enabled(tracing);
    let mut rng = StdRng::seed_from_u64(42);
    let config = CharacterizationConfig {
        parallelism,
        readout: ReadoutMode::Shots(40),
        ..CharacterizationConfig::exact(vec![0], 6)
    };
    let ch = characterize(&flip_program(), &config, &mut rng);
    trace::set_enabled(false);
    ch
}

#[test]
fn tracing_leaves_characterization_bit_identical_at_any_worker_count() {
    let _g = serial();
    let baseline = characterize_with(1, false);
    for parallelism in [1usize, 2, 4] {
        for tracing in [false, true] {
            let run = characterize_with(parallelism, tracing);
            assert_eq!(
                baseline.ledger, run.ledger,
                "ledger drifted (workers {parallelism}, tracing {tracing})"
            );
            for (id, states) in &baseline.traces {
                for (i, (a, b)) in states.iter().zip(&run.traces[id]).enumerate() {
                    assert!(
                        (a - b).frobenius_norm() == 0.0,
                        "trace {id} sample {i} differs (workers {parallelism}, tracing {tracing})"
                    );
                }
            }
        }
    }
}

#[test]
fn tracing_leaves_verdicts_and_reports_bit_identical() {
    let _g = serial();
    let run = |tracing: bool| {
        trace::set_enabled(tracing);
        let report = Verifier::new(flip_program())
            .input_qubits(&[0])
            .samples(4)
            .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
            .assert_that(AssumeGuarantee::new().guarantee_relation(
                TracepointId(1),
                TracepointId(2),
                RelationPredicate::custom(|_, _| -1.0),
            ))
            .run(&mut StdRng::seed_from_u64(7));
        trace::set_enabled(false);
        report
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.all_passed(), traced.all_passed());
    assert_eq!(
        plain.run, traced.run,
        "run report must not depend on tracing"
    );
    for (a, b) in plain.outcomes.iter().zip(&traced.outcomes) {
        assert_eq!(a.optimum.x, b.optimum.x, "optimum drifted under tracing");
        assert!(
            a.optimum.value == b.optimum.value
                || (a.optimum.value.is_nan() && b.optimum.value.is_nan()),
            "objective drifted under tracing"
        );
    }
}

#[test]
fn recorder_captures_the_pipeline_spans_for_a_traced_run() {
    let _g = serial();
    trace::set_enabled(true);
    trace::reset();
    let _ = Verifier::new(flip_program())
        .input_qubits(&[0])
        .samples(4)
        .ensemble(morphqpv_suite::clifford::InputEnsemble::PauliProduct)
        .assert_that(AssumeGuarantee::new().guarantee_relation(
            TracepointId(1),
            TracepointId(2),
            RelationPredicate::custom(|_, _| -1.0),
        ))
        .run(&mut StdRng::seed_from_u64(7));
    let names: Vec<String> = trace::span_summaries()
        .into_iter()
        .map(|s| s.name)
        .collect();
    trace::set_enabled(false);
    // Other tests may interleave spans (the recorder is process-global), so
    // assert presence, not exact counts.
    for expected in ["verify/run", "characterize", "validate/assertion"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing span {expected:?} in {names:?}"
        );
    }
}
