//! Property tests for segment-granular incremental characterization: a
//! random single-gate edit (insert / delete / mutate) recomputes at most
//! the segments the edit touched, and the synthesized characterization is
//! bit-identical to a from-scratch run at any worker count.
//!
//! The config uses `PauliProduct` with `4^width` samples so every segment
//! fit spans the full operator space and composition is exact — the same
//! precondition the incremental API documents for exact verdicts.

use morphqpv_suite::clifford::InputEnsemble;
use morphqpv_suite::core::{
    try_characterize_incremental, Characterization, CharacterizationConfig, SegmentedCache,
    SegmentedConfig,
};
use morphqpv_suite::qprog::{Circuit, Instruction};
use morphqpv_suite::qsim::Gate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary 2-qubit gate drawn from the library.
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..2usize).prop_map(Gate::H),
        (0..2usize).prop_map(Gate::X),
        (0..2usize).prop_map(Gate::S),
        ((0..2usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RY(q, a)),
        ((0..2usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RZ(q, a)),
        Just(Gate::CX(0, 1)),
        Just(Gate::CX(1, 0)),
    ]
}

fn arb_gates() -> impl Strategy<Value = Vec<Gate>> {
    proptest::collection::vec(arb_gate(), 3..10)
}

/// Builds the program under revision: gates split by a mid-circuit
/// tracepoint, with a final tracepoint on the full register.
fn traced(gates: &[Gate]) -> Circuit {
    let mut c = Circuit::new(2);
    let mid = gates.len() / 2;
    for g in &gates[..mid] {
        c.gate(g.clone());
    }
    c.tracepoint(1, &[0, 1]);
    for g in &gates[mid..] {
        c.gate(g.clone());
    }
    c.tracepoint(2, &[0, 1]);
    c
}

/// Applies one single-gate edit. `pos` is reduced modulo the number of
/// legal positions so every drawn value maps to a valid edit; deletes pick
/// among gate instructions only (tracepoints stay), and the generator's
/// minimum of three gates keeps a delete from emptying the program.
fn apply_edit(base: &Circuit, kind: usize, pos: usize, g: Gate) -> Circuit {
    let mut edited = base.clone();
    let gate_positions: Vec<usize> = edited
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instruction::Gate(_)))
        .map(|(p, _)| p)
        .collect();
    match kind {
        0 => {
            let at = pos % (edited.instructions().len() + 1);
            edited.insert(at, Instruction::Gate(g));
        }
        1 => {
            let at = gate_positions[pos % gate_positions.len()];
            edited.remove(at);
        }
        _ => {
            let at = gate_positions[pos % gate_positions.len()];
            edited.remove(at);
            edited.insert(at, Instruction::Gate(g));
        }
    }
    edited
}

fn exact_config() -> CharacterizationConfig {
    // PauliProduct with 16 samples spans the 2-qubit operator space.
    CharacterizationConfig {
        ensemble: InputEnsemble::PauliProduct,
        ..CharacterizationConfig::exact(vec![0, 1], 16)
    }
}

/// Canonical byte serialization of everything validation consumes:
/// sampled input densities and every captured tracepoint trace. Two
/// characterizations with equal bytes are bit-identical.
fn canonical(ch: &Characterization) -> Vec<u8> {
    let mut out = Vec::new();
    for input in &ch.inputs {
        input.rho.canonical_bytes(&mut out);
    }
    for (id, traces) in &ch.traces {
        out.extend_from_slice(format!("{id}").as_bytes());
        for t in traces {
            t.canonical_bytes(&mut out);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single-gate edit to a cached program recomputes at most the two
    /// segments the edit can touch; everything else is served from cache.
    #[test]
    fn single_gate_edits_reuse_untouched_segments(
        gates in arb_gates(),
        kind in 0..3usize,
        pos in 0..64usize,
        g in arb_gate(),
    ) {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let base = traced(&gates);
        let mut cache = SegmentedCache::in_memory();

        let mut rng = StdRng::seed_from_u64(11);
        try_characterize_incremental(&base, &config, &seg, &mut rng, &mut cache)
            .expect("base characterization");

        let edited = apply_edit(&base, kind, pos, g);
        let mut rng = StdRng::seed_from_u64(11);
        let warm = try_characterize_incremental(&edited, &config, &seg, &mut rng, &mut cache)
            .expect("edited characterization");

        prop_assert!(
            warm.segments.misses <= 2,
            "edit kind {} recomputed {} of {} segments",
            kind,
            warm.segments.misses,
            warm.segments.total
        );
        prop_assert!(warm.segments.hits >= warm.segments.total.saturating_sub(2));
        prop_assert!(
            warm.segments.reused_prefix + warm.segments.reused_suffix
                >= warm.segments.total.saturating_sub(2)
        );
    }

    /// The warm (cache-hitting) characterization of an edited program is
    /// bit-identical to a from-scratch run, and to a run at a different
    /// worker count — segment seeds derive from content, not position or
    /// scheduling.
    #[test]
    fn incremental_is_bit_identical_to_from_scratch_at_any_worker_count(
        gates in arb_gates(),
        kind in 0..3usize,
        pos in 0..64usize,
        g in arb_gate(),
    ) {
        let seg = SegmentedConfig::new().segment_gates(2);
        let config = exact_config();
        let base = traced(&gates);
        let edited = apply_edit(&base, kind, pos, g);

        // Warm: base then edit against the same cache.
        let mut cache = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(11);
        try_characterize_incremental(&base, &config, &seg, &mut rng, &mut cache)
            .expect("base characterization");
        let mut rng = StdRng::seed_from_u64(11);
        let warm = try_characterize_incremental(&edited, &config, &seg, &mut rng, &mut cache)
            .expect("warm characterization");

        // Cold: the edited program alone, in a fresh cache.
        let mut fresh = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(11);
        let cold = try_characterize_incremental(&edited, &config, &seg, &mut rng, &mut fresh)
            .expect("cold characterization");
        prop_assert_eq!(
            canonical(&warm.characterization),
            canonical(&cold.characterization)
        );

        // Cold again at an explicit worker count.
        let wide_config = CharacterizationConfig {
            parallelism: 3,
            ..config
        };
        let mut fresh = SegmentedCache::in_memory();
        let mut rng = StdRng::seed_from_u64(11);
        let wide = try_characterize_incremental(&edited, &wide_config, &seg, &mut rng, &mut fresh)
            .expect("wide characterization");
        prop_assert_eq!(
            canonical(&warm.characterization),
            canonical(&wide.characterization)
        );
    }
}
