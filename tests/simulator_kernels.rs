//! Property-based tests for the qubit-local simulator kernels: every local
//! density kernel must match the full-matrix `evolve` oracle, every
//! closed-form channel must match its embedded-Kraus definition (and
//! preserve trace and Hermiticity), the statevector bit-deposit kernels
//! must match dense matrix-vector application, the executor's fused
//! path must be indistinguishable from unfused execution, and the fast
//! simulation backends (stabilizer, sparse, Clifford-prefix splice) must
//! reproduce the dense characterization sweep — bitwise where the backend
//! contract promises it, within `TOL` elsewhere — at every worker count
//! and [`SweepMode`].

use morphqpv_suite::backend::{Simulator, SparseSim};
use morphqpv_suite::clifford::InputEnsemble;
use morphqpv_suite::core::{
    characterize, BackendChoice, BackendMode, Characterization, CharacterizationConfig, SweepMode,
};
use morphqpv_suite::linalg::{CMatrix, C64};
use morphqpv_suite::qprog::{fuse_circuit, Circuit, Executor, TracepointId};
use morphqpv_suite::qsim::{
    matrices, DensityBatch, DensityMatrix, Gate, NoiseModel, StateBatch, StateVector,
};
use morphqpv_suite::tomography::ReadoutMode;
use proptest::prelude::*;
use rand::SeedableRng;

const TOL: f64 = 1e-12;

/// Arbitrary gate on an `n`-qubit register, covering every dispatch arm of
/// the local density kernels (diagonal, dense 1q, controlled, swap, k-q).
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let angle = -3.0..3.0f64;
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n).prop_map(Gate::X),
        (0..n).prop_map(Gate::Y),
        (0..n).prop_map(Gate::Z),
        (0..n).prop_map(Gate::S),
        (0..n).prop_map(Gate::Sdg),
        (0..n).prop_map(Gate::T),
        (0..n).prop_map(Gate::Tdg),
        ((0..n), angle.clone()).prop_map(|(q, a)| Gate::RX(q, a)),
        ((0..n), angle.clone()).prop_map(|(q, a)| Gate::RY(q, a)),
        ((0..n), angle.clone()).prop_map(|(q, a)| Gate::RZ(q, a)),
        ((0..n), angle.clone()).prop_map(|(q, a)| Gate::Phase(q, a)),
        arb_pair(n).prop_map(|(a, b)| Gate::CX(a, b)),
        arb_pair(n).prop_map(|(a, b)| Gate::CZ(a, b)),
        (arb_pair(n), angle.clone()).prop_map(|((a, b), t)| Gate::CRZ(a, b, t)),
        (arb_pair(n), angle).prop_map(|((a, b), t)| Gate::CPhase(a, b, t)),
        arb_pair(n).prop_map(|(a, b)| Gate::Swap(a, b)),
        arb_triple(n).prop_map(|(a, b, c)| Gate::CCX(a, b, c)),
        arb_triple(n).prop_map(|(a, b, c)| Gate::MCZ(vec![a, b, c])),
    ]
}

fn arb_pair(n: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b)
}

fn arb_triple(n: usize) -> impl Strategy<Value = (usize, usize, usize)> {
    (0..n, 0..n, 0..n).prop_filter("distinct", |(a, b, c)| a != b && a != c && b != c)
}

/// Arbitrary monomial Clifford gate — permutation-and-phase only (no `H`),
/// so the tableau's amplitude readout reproduces dense arithmetic bit for
/// bit (every amplitude stays in `{0, ±1, ±i} · 2^-k` exactly).
fn arb_monomial_clifford(n: usize) -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..n).prop_map(Gate::X),
        (0..n).prop_map(Gate::Y),
        (0..n).prop_map(Gate::Z),
        (0..n).prop_map(Gate::S),
        (0..n).prop_map(Gate::Sdg),
        arb_pair(n).prop_map(|(a, b)| Gate::CX(a, b)),
        arb_pair(n).prop_map(|(a, b)| Gate::CZ(a, b)),
        arb_pair(n).prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

/// Arbitrary Clifford gate, including the superposing `H`.
fn arb_clifford(n: usize) -> impl Strategy<Value = Gate> {
    prop_oneof![(0..n).prop_map(Gate::H), arb_monomial_clifford(n)]
}

/// A tracepoint-bracketed circuit over `gates` on `n` qubits.
fn traced_circuit(n: usize, gates: &[Gate]) -> Circuit {
    let mut c = Circuit::new(n);
    c.tracepoint(1, &[0]);
    for g in gates {
        c.gate(g.clone());
    }
    c.tracepoint(2, &[0, 1]);
    c
}

/// Characterizes `circuit` (inputs on qubits 0–1, exact readout, noiseless)
/// on the requested backend, worker count, and sweep mode.
fn characterize_on(
    circuit: &Circuit,
    ensemble: InputEnsemble,
    n_samples: usize,
    backend: BackendMode,
    parallelism: usize,
    sweep: SweepMode,
    seed: u64,
) -> Characterization {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let config = CharacterizationConfig {
        ensemble,
        backend,
        parallelism,
        sweep,
        ..CharacterizationConfig::exact(vec![0, 1], n_samples)
    };
    characterize(circuit, &config, &mut rng)
}

/// A normalized random pure-state amplitude vector.
fn arb_amplitudes(n: usize) -> impl Strategy<Value = Vec<C64>> {
    let d = 1usize << n;
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), d..d + 1).prop_map(|parts| {
        let mut amps: Vec<C64> = parts.iter().map(|&(re, im)| C64::new(re, im)).collect();
        let norm: f64 = amps.iter().map(|a| a.abs() * a.abs()).sum::<f64>().sqrt();
        if norm < 1e-6 {
            amps[0] = C64::ONE;
        } else {
            for a in &mut amps {
                *a *= C64::real(1.0 / norm);
            }
        }
        amps
    })
}

/// A random mixed state: a convex mixture of two random pure states.
fn arb_density(n: usize) -> impl Strategy<Value = DensityMatrix> {
    (arb_amplitudes(n), arb_amplitudes(n), 0.1..0.9f64).prop_map(|(a, b, w)| {
        let rho = &CMatrix::outer(&a, &a).scale_re(w) + &CMatrix::outer(&b, &b).scale_re(1.0 - w);
        DensityMatrix::from_matrix(rho)
    })
}

fn max_abs_diff(a: &CMatrix, b: &CMatrix) -> f64 {
    let mut worst = 0.0f64;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            worst = worst.max((a[(r, c)] - b[(r, c)]).abs());
        }
    }
    worst
}

/// Kraus operators of the single-qubit depolarizing channel.
fn depolarize_kraus(p: f64) -> Vec<CMatrix> {
    vec![
        CMatrix::identity(2).scale_re((1.0 - 3.0 * p / 4.0).sqrt()),
        matrices::x().scale_re((p / 4.0).sqrt()),
        matrices::y().scale_re((p / 4.0).sqrt()),
        matrices::z().scale_re((p / 4.0).sqrt()),
    ]
}

fn bit_flip_kraus(p: f64) -> Vec<CMatrix> {
    vec![
        CMatrix::identity(2).scale_re((1.0 - p).sqrt()),
        matrices::x().scale_re(p.sqrt()),
    ]
}

fn phase_damp_kraus(lambda: f64) -> Vec<CMatrix> {
    // Nielsen–Chuang convention: K0 = diag(1, √(1−λ)), K1 = diag(0, √λ) —
    // populations untouched, coherences scaled by √(1−λ).
    vec![
        CMatrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::real((1.0 - lambda).sqrt())],
        ]),
        CMatrix::from_rows(&[
            &[C64::ZERO, C64::ZERO],
            &[C64::ZERO, C64::real(lambda.sqrt())],
        ]),
    ]
}

fn amplitude_damp_kraus(gamma: f64) -> Vec<CMatrix> {
    vec![
        CMatrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]),
        CMatrix::from_rows(&[
            &[C64::ZERO, C64::real(gamma.sqrt())],
            &[C64::ZERO, C64::ZERO],
        ]),
    ]
}

/// Applies single-qubit Kraus operators through the full-register
/// `apply_kraus` oracle.
fn apply_kraus_embedded(rho: &mut DensityMatrix, kraus: &[CMatrix], qubit: usize) {
    let n = rho.n_qubits();
    let embedded: Vec<CMatrix> = kraus.iter().map(|k| k.embed(&[qubit], n)).collect();
    rho.apply_kraus(&embedded);
}

fn assert_trace_and_hermiticity(rho: &DensityMatrix) {
    let m = rho.matrix();
    assert!((m.trace().re - 1.0).abs() < 1e-10, "trace drifted");
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            assert!(
                (m[(r, c)] - m[(c, r)].conj()).abs() < 1e-10,
                "Hermiticity lost at ({r},{c})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every local density kernel matches ρ ← UρU† computed with the dense
    /// embedded unitary.
    #[test]
    fn density_local_kernels_match_full_matrix_oracle(
        gates in proptest::collection::vec(arb_gate(4), 1..6),
        rho in arb_density(4),
    ) {
        let mut local = rho.clone();
        let mut oracle = rho;
        for gate in &gates {
            local.apply_gate(gate);
            oracle.evolve(&gate.full_matrix(4));
            prop_assert!(
                max_abs_diff(local.matrix(), oracle.matrix()) < TOL,
                "kernel diverged from oracle on {gate:?}"
            );
        }
    }

    /// Each closed-form channel matches its embedded-Kraus definition and
    /// keeps the state a density matrix.
    #[test]
    fn channels_match_embedded_kraus(
        rho in arb_density(3),
        q in 0..3usize,
        p in 0.0..1.0f64,
    ) {
        type ChannelCheck = (
            &'static str,
            fn(&mut DensityMatrix, usize, f64),
            fn(f64) -> Vec<CMatrix>,
        );
        let checks: [ChannelCheck; 4] = [
            ("depolarize", |r, q, p| r.depolarize(q, p), depolarize_kraus),
            ("bit_flip", |r, q, p| r.bit_flip(q, p), bit_flip_kraus),
            ("phase_damp", |r, q, p| r.phase_damp(q, p), phase_damp_kraus),
            ("amplitude_damp", |r, q, p| r.amplitude_damp(q, p), amplitude_damp_kraus),
        ];
        for (name, closed_form, kraus) in checks {
            let mut fast = rho.clone();
            closed_form(&mut fast, q, p);
            let mut slow = rho.clone();
            apply_kraus_embedded(&mut slow, &kraus(p), q);
            prop_assert!(
                max_abs_diff(fast.matrix(), slow.matrix()) < TOL,
                "{name} closed form diverged from Kraus at p={p}"
            );
            assert_trace_and_hermiticity(&fast);
        }
    }

    /// Statevector bit-deposit kernels match dense matrix-vector
    /// application of the embedded unitary.
    #[test]
    fn statevector_kernels_match_full_matrix(
        gates in proptest::collection::vec(arb_gate(4), 1..8),
        amps in arb_amplitudes(4),
    ) {
        let mut psi = StateVector::from_amplitudes(amps.clone());
        let mut dense = amps;
        for gate in &gates {
            gate.apply(&mut psi);
            let u = gate.full_matrix(4);
            let mut next = vec![C64::ZERO; dense.len()];
            for (r, slot) in next.iter_mut().enumerate() {
                for (c, &a) in dense.iter().enumerate() {
                    *slot += u[(r, c)] * a;
                }
            }
            dense = next;
            for (i, &want) in dense.iter().enumerate() {
                prop_assert!(
                    (psi.amplitudes()[i] - want).abs() < TOL,
                    "amplitude {i} diverged after {gate:?}"
                );
            }
        }
    }

    /// The executor's fused path is equivalent to unfused execution on
    /// programs with tracepoints, measurement, and feedback.
    #[test]
    fn fused_execution_matches_unfused(
        gates in proptest::collection::vec(arb_gate(3), 1..15),
        measure_at in 0..15usize,
    ) {
        let mut c = Circuit::new(3);
        c.tracepoint(1, &[0, 1]);
        for (i, g) in gates.iter().enumerate() {
            if i == measure_at {
                c.measure(0, 0);
                c.conditional(0, 1, Gate::X(1));
            }
            c.gate(g.clone());
        }
        c.tracepoint(2, &[0, 1, 2]);
        let input = StateVector::zero_state(3);
        let fused = Executor::default().run_expected(&c, &input);
        let plain = Executor::builder().fusion(false).build().run_expected(&c, &input);
        for id in [TracepointId(1), TracepointId(2)] {
            prop_assert!(
                fused.state(id).approx_eq(plain.state(id), 1e-10),
                "tracepoint {id} diverged under fusion"
            );
        }
    }

    /// Fusion never increases the gate count and preserves register shape.
    #[test]
    fn fusion_shrinks_or_preserves_gate_count(
        gates in proptest::collection::vec(arb_gate(3), 1..20),
    ) {
        let mut c = Circuit::new(3);
        for g in gates {
            c.gate(g);
        }
        let fused = fuse_circuit(&c);
        prop_assert!(fused.gate_count() <= c.gate_count());
        prop_assert_eq!(fused.n_qubits(), c.n_qubits());
    }

    /// Batched statevector execution is bit-identical to per-state
    /// application, gate by gate, at every batch size including the
    /// degenerate batch of 1.
    #[test]
    fn state_batch_matches_per_state_bitwise(
        gates in proptest::collection::vec(arb_gate(4), 1..8),
        batch_amps in proptest::collection::vec(arb_amplitudes(4), 1..6),
    ) {
        let mut singles: Vec<StateVector> = batch_amps
            .into_iter()
            .map(StateVector::from_amplitudes)
            .collect();
        let mut batch = StateBatch::from_states(&singles);
        for gate in &gates {
            batch.apply_gate(gate);
            for (lane, s) in singles.iter_mut().enumerate() {
                gate.apply(s);
                let got = batch.lane(lane);
                for i in 0..s.amplitudes().len() {
                    // Exact equality: the gate-major pass must reproduce the
                    // per-state arithmetic bit for bit.
                    prop_assert_eq!(got.amplitudes()[i], s.amplitudes()[i]);
                }
            }
        }
    }

    /// Batched density execution with channel noise is bit-identical to the
    /// per-state density path (the noisy characterization arithmetic).
    #[test]
    fn density_batch_noisy_matches_per_state_bitwise(
        gates in proptest::collection::vec(arb_gate(3), 1..6),
        rhos in proptest::collection::vec(arb_density(3), 1..4),
    ) {
        let noise = NoiseModel::ibm_cairo();
        let mut batch = DensityBatch::from_densities(&rhos);
        let mut singles = rhos;
        for gate in &gates {
            batch.apply_gate(gate);
            batch.apply_noise(&noise, gate);
            for r in singles.iter_mut() {
                r.apply_gate(gate);
                noise.apply_to_density(r, gate);
            }
        }
        for (lane, r) in singles.iter().enumerate() {
            let got = batch.lane(lane);
            for i in 0..r.matrix().rows() {
                for j in 0..r.matrix().cols() {
                    prop_assert_eq!(got.matrix()[(i, j)], r.matrix()[(i, j)]);
                }
            }
        }
    }

    /// The batched characterization sweep is bit-identical to the per-state
    /// oracle at every worker count, with shot readout exercising the
    /// per-input RNG streams.
    #[test]
    fn batched_characterization_matches_per_state_oracle(
        seed in 0u64..1000,
        n_samples in 1usize..7,
        workers in 1usize..5,
    ) {
        let mut c = Circuit::new(3);
        c.tracepoint(1, &[0]);
        c.h(1).cx(0, 1).t(2).cx(1, 2);
        c.tracepoint(2, &[0, 1, 2]);
        let run = |sweep: SweepMode, parallelism: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let config = CharacterizationConfig {
                sweep,
                parallelism,
                readout: ReadoutMode::Shots(30),
                ..CharacterizationConfig::exact(vec![0, 1], n_samples)
            };
            characterize(&c, &config, &mut rng)
        };
        let oracle = run(SweepMode::PerState, 1);
        let batched = run(SweepMode::Batched, workers);
        prop_assert_eq!(&oracle.ledger, &batched.ledger);
        for (id, states) in &oracle.traces {
            for (a, b) in states.iter().zip(&batched.traces[id]) {
                prop_assert_eq!(a, b, "trace at {} drifted from the oracle", id);
            }
        }
    }

    /// Parallel density kernels are bit-identical at every worker count.
    #[test]
    fn density_workers_are_bit_identical(
        rho in arb_density(4),
        gates in proptest::collection::vec(arb_gate(4), 1..5),
        p in 0.0..0.5f64,
    ) {
        let mut serial = rho.clone();
        let mut threaded = rho;
        for g in &gates {
            serial.apply_gate_with_workers(g, 1);
            threaded.apply_gate_with_workers(g, 4);
        }
        serial.depolarize_with_workers(0, p, 1);
        threaded.depolarize_with_workers(0, p, 4);
        for r in 0..serial.matrix().rows() {
            for c in 0..serial.matrix().cols() {
                // Exact equality: scheduling must never reach the data.
                prop_assert_eq!(serial.matrix()[(r, c)], threaded.matrix()[(r, c)]);
            }
        }
    }

    /// The sparse backend's characterization is bit-identical to the dense
    /// oracle on arbitrary unitary circuits — its kernels evaluate the same
    /// scalar expressions as the dense bit-deposit kernels, and a budget
    /// spill hands the exact state to the dense engine — at every worker
    /// count and sweep mode.
    #[test]
    fn sparse_backend_characterization_is_bitwise_dense(
        gates in proptest::collection::vec(arb_gate(4), 1..8),
        seed in 0u64..1000,
    ) {
        let c = traced_circuit(4, &gates);
        let dense = characterize_on(
            &c, InputEnsemble::Clifford, 4,
            BackendMode::Dense, 1, SweepMode::PerState, seed,
        );
        prop_assert_eq!(dense.backend, BackendChoice::Dense);
        for workers in [1usize, 2, 0] {
            for sweep in [SweepMode::PerState, SweepMode::Batched] {
                let sparse = characterize_on(
                    &c, InputEnsemble::Clifford, 4,
                    BackendMode::Sparse, workers, sweep, seed,
                );
                prop_assert_eq!(sparse.backend, BackendChoice::Sparse);
                prop_assert_eq!(&sparse.traces, &dense.traces);
                prop_assert_eq!(&sparse.ledger, &dense.ledger);
            }
        }
    }

    /// On monomial Clifford circuits with basis-state inputs the tableau
    /// tracks exact `{0, ±1, ±i}` amplitudes, so the stabilizer backend is
    /// bit-identical to the dense oracle.
    #[test]
    fn stabilizer_backend_is_bitwise_dense_on_monomial_clifford(
        gates in proptest::collection::vec(arb_monomial_clifford(4), 1..12),
        seed in 0u64..1000,
    ) {
        let c = traced_circuit(4, &gates);
        let dense = characterize_on(
            &c, InputEnsemble::Basis, 4,
            BackendMode::Dense, 1, SweepMode::PerState, seed,
        );
        for workers in [1usize, 0] {
            let stab = characterize_on(
                &c, InputEnsemble::Basis, 4,
                BackendMode::Stabilizer, workers, SweepMode::PerState, seed,
            );
            prop_assert_eq!(stab.backend, BackendChoice::Stabilizer);
            prop_assert_eq!(&stab.traces, &dense.traces);
            prop_assert_eq!(&stab.ledger, &dense.ledger);
        }
    }

    /// On general Clifford circuits (superposing `H` included, stabilizer
    /// input ensemble) the tableau readout is algebraically exact: it
    /// matches the dense oracle to `TOL` and is itself bit-identical at
    /// every worker count and sweep mode.
    #[test]
    fn stabilizer_backend_matches_dense_on_clifford_circuits(
        gates in proptest::collection::vec(arb_clifford(4), 1..12),
        seed in 0u64..1000,
    ) {
        let c = traced_circuit(4, &gates);
        let stab = characterize_on(
            &c, InputEnsemble::Clifford, 4,
            BackendMode::Stabilizer, 1, SweepMode::PerState, seed,
        );
        prop_assert_eq!(stab.backend, BackendChoice::Stabilizer);
        let dense = characterize_on(
            &c, InputEnsemble::Clifford, 4,
            BackendMode::Dense, 1, SweepMode::PerState, seed,
        );
        for (id, states) in &dense.traces {
            for (want, got) in states.iter().zip(&stab.traces[id]) {
                prop_assert!(
                    max_abs_diff(got, want) < TOL,
                    "stabilizer trace at {} diverged from dense", id
                );
            }
        }
        for (workers, sweep) in [(2usize, SweepMode::PerState), (0, SweepMode::Batched)] {
            let again = characterize_on(
                &c, InputEnsemble::Clifford, 4,
                BackendMode::Stabilizer, workers, sweep, seed,
            );
            prop_assert_eq!(&again.traces, &stab.traces);
            prop_assert_eq!(&again.ledger, &stab.ledger);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The spill budget is an exact boundary: a run whose nonzero
    /// high-water mark `P` fits the budget exactly stays sparse, while a
    /// budget of `P - 1` spills — and either way the final amplitudes are
    /// bit-identical to the dense kernels.
    #[test]
    fn sparse_spill_budget_boundary_is_exact(
        tail in proptest::collection::vec(arb_gate(4), 1..10),
    ) {
        let n = 4;
        // A leading H pins the high-water mark at ≥ 2, so `peak - 1` below
        // is always a meaningful (clamp-free) budget.
        let gates: Vec<Gate> = std::iter::once(Gate::H(0)).chain(tail).collect();
        // Probe run with unlimited thresholds to learn the high-water mark.
        let mut probe = SparseSim::with_thresholds(n, usize::MAX, usize::MAX);
        for g in &gates {
            probe.apply_gate(g).unwrap();
        }
        let peak = probe.stats().peak_nonzeros as usize;
        prop_assert!(peak >= 2);

        let mut dense = StateVector::zero_state(n);
        let mut exact = SparseSim::with_thresholds(n, peak, usize::MAX);
        let mut under = SparseSim::with_thresholds(n, peak - 1, usize::MAX);
        for g in &gates {
            g.apply(&mut dense);
            exact.apply_gate(g).unwrap();
            under.apply_gate(g).unwrap();
        }
        prop_assert!(!exact.spilled(), "budget met exactly must not spill");
        prop_assert_eq!(exact.stats().spills, 0);
        prop_assert!(under.spilled(), "budget exceeded by one must spill");
        prop_assert_eq!(under.stats().spills, 1);
        prop_assert_eq!(under.stats().switches, 0);
        for (i, &want) in dense.amplitudes().iter().enumerate() {
            prop_assert_eq!(exact.amplitude(i), want);
            prop_assert_eq!(under.amplitude(i), want);
        }
    }

    /// The proactive switch threshold is an exact boundary: a threshold the
    /// high-water mark `P` reaches exactly triggers the sparse→dense
    /// switch, `P + 1` leaves the whole run sparse, and gates applied after
    /// the switch keep the amplitudes bit-identical to dense.
    #[test]
    fn sparse_switch_threshold_boundary_is_exact(
        tail in proptest::collection::vec(arb_gate(4), 2..14),
    ) {
        let n = 4;
        let gates: Vec<Gate> = std::iter::once(Gate::H(0)).chain(tail).collect();
        let mut probe = SparseSim::with_thresholds(n, usize::MAX, usize::MAX);
        for g in &gates {
            probe.apply_gate(g).unwrap();
        }
        let peak = probe.stats().peak_nonzeros as usize;
        prop_assert!(peak >= 2);

        let mut dense = StateVector::zero_state(n);
        let mut at = SparseSim::with_thresholds(n, usize::MAX, peak);
        let mut above = SparseSim::with_thresholds(n, usize::MAX, peak + 1);
        for g in &gates {
            g.apply(&mut dense);
            at.apply_gate(g).unwrap();
            above.apply_gate(g).unwrap();
        }
        prop_assert!(at.spilled(), "threshold reached exactly must switch");
        prop_assert_eq!(at.stats().switches, 1);
        prop_assert_eq!(at.stats().spills, 0);
        prop_assert!(!above.spilled(), "one above the peak must stay sparse");
        prop_assert_eq!(above.stats().switches, 0);
        for (i, &want) in dense.amplitudes().iter().enumerate() {
            prop_assert_eq!(at.amplitude(i), want);
            prop_assert_eq!(above.amplitude(i), want);
        }
    }
}

/// The ISSUE 8 acceptance sweep: a 13-qubit non-Clifford circuit whose
/// support saturates past the default switch threshold (`dim/8 = 1024`,
/// also the floor) makes the forced-sparse characterization switch to the
/// dense engine mid-run. The switch point is deterministic — bit-identical
/// traces and identical fast-path event counters at every worker count and
/// sweep mode — and the merged result is bit-identical to the dense oracle.
#[test]
fn adaptive_switch_sweep_is_deterministic_and_bitwise_dense() {
    let n = 13;
    let mut c = Circuit::new(n);
    c.tracepoint(1, &[0, 1]);
    // Eleven superposing H's on qubits the input prep never touches drive
    // the support 1 → 2048 nonzeros, crossing the 1024-entry default switch
    // threshold at the tenth H regardless of the sampled input; interleaved
    // T gates keep the circuit non-Clifford without changing the support.
    for q in 2..n {
        c.h(q);
        c.t(q);
    }
    c.cx(2, 0);
    c.t(0);
    c.tracepoint(2, &[0, 1, 2]);

    let dense = characterize_on(
        &c,
        InputEnsemble::Clifford,
        3,
        BackendMode::Dense,
        1,
        SweepMode::PerState,
        5,
    );
    let base = characterize_on(
        &c,
        InputEnsemble::Clifford,
        3,
        BackendMode::Sparse,
        1,
        SweepMode::PerState,
        5,
    );
    assert_eq!(base.backend, BackendChoice::Sparse);
    assert!(
        base.fast_path.switches > 0,
        "support crossing the threshold must switch: {:?}",
        base.fast_path
    );
    assert_eq!(
        base.fast_path.spills, 0,
        "the proactive switch must pre-empt the spill: {:?}",
        base.fast_path
    );
    assert_eq!(&base.traces, &dense.traces);
    assert_eq!(&base.ledger, &dense.ledger);
    for (workers, sweep) in [
        (2usize, SweepMode::PerState),
        (4, SweepMode::Batched),
        (0, SweepMode::Batched),
    ] {
        let again = characterize_on(
            &c,
            InputEnsemble::Clifford,
            3,
            BackendMode::Sparse,
            workers,
            sweep,
            5,
        );
        assert_eq!(again.traces, base.traces);
        assert_eq!(again.ledger, base.ledger);
        assert_eq!(
            again.fast_path, base.fast_path,
            "switch events must not depend on scheduling"
        );
    }
}

/// A Clifford-dominated 14-qubit program whose non-Clifford tail forces the
/// planner onto the prefix-splice path: the tableau runs the Clifford
/// prefix, hands the exact statevector to the dense engine, and the traces
/// match an all-dense run to `TOL` while staying bit-identical across
/// worker counts and sweep modes.
#[test]
fn clifford_prefix_splice_matches_dense_and_is_deterministic() {
    let n = 14;
    let mut c = Circuit::new(n);
    c.tracepoint(1, &[0, 1]);
    for _ in 0..3 {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    // Non-Clifford tail: the planner must splice to the dense engine here.
    c.t(0);
    c.h(1);
    c.t(1);
    c.tracepoint(2, &[0, 1, 2]);

    let auto = characterize_on(
        &c,
        InputEnsemble::Clifford,
        3,
        BackendMode::Auto,
        1,
        SweepMode::PerState,
        11,
    );
    // Under the CI forced-backend matrix MORPH_BACKEND replaces `Auto`, so
    // only assert the splice when the planner actually got to choose. The
    // dense-parity and determinism checks below hold on every backend.
    if BackendMode::from_env().is_none() {
        assert!(
            matches!(auto.backend, BackendChoice::CliffordPrefix { .. }),
            "expected a prefix splice, planned {:?}",
            auto.backend
        );
    }
    let dense = characterize_on(
        &c,
        InputEnsemble::Clifford,
        3,
        BackendMode::Dense,
        1,
        SweepMode::PerState,
        11,
    );
    for (id, states) in &dense.traces {
        for (want, got) in states.iter().zip(&auto.traces[id]) {
            assert!(
                max_abs_diff(got, want) < TOL,
                "spliced trace at {id} diverged from dense"
            );
        }
    }
    let wide = characterize_on(
        &c,
        InputEnsemble::Clifford,
        3,
        BackendMode::Auto,
        0,
        SweepMode::Batched,
        11,
    );
    assert_eq!(wide.backend, auto.backend);
    assert_eq!(wide.traces, auto.traces);
    assert_eq!(wide.ledger, auto.ledger);
}

/// The ISSUE 7 acceptance sweep: a 20-qubit Clifford characterization —
/// far past the dense comfort zone for a test suite — auto-selects the
/// stabilizer backend, completes, yields unit-trace tracepoint states, and
/// is bit-identical at every worker count and sweep mode.
#[test]
fn wide_clifford_sweep_completes_on_the_stabilizer_backend() {
    let n = 20;
    let mut c = Circuit::new(n);
    c.tracepoint(1, &[0, 1]);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in (0..n).step_by(3) {
        c.s(q);
    }
    c.tracepoint(2, &[0, 1, 2]);

    let serial = characterize_on(
        &c,
        InputEnsemble::Clifford,
        4,
        BackendMode::Auto,
        1,
        SweepMode::PerState,
        3,
    );
    // The forced-backend CI matrix replaces `Auto`; a forced stabilizer
    // run still selects the tableau here (the circuit is all-Clifford),
    // while forced dense/sparse runs only exercise the determinism checks.
    match BackendMode::from_env() {
        None | Some(BackendMode::Auto) | Some(BackendMode::Stabilizer) => {
            assert_eq!(serial.backend, BackendChoice::Stabilizer);
        }
        Some(_) => {}
    }
    for states in serial.traces.values() {
        assert_eq!(states.len(), 4);
        for rho in states {
            assert!((rho.trace().re - 1.0).abs() < 1e-9, "trace drifted");
        }
    }
    let wide = characterize_on(
        &c,
        InputEnsemble::Clifford,
        4,
        BackendMode::Auto,
        0,
        SweepMode::Batched,
        3,
    );
    assert_eq!(wide.backend, serial.backend);
    assert_eq!(wide.traces, serial.traces);
    assert_eq!(wide.ledger, serial.ledger);
}
