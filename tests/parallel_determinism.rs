//! Integration tests for the deterministic parallel execution layer: every
//! parallel entry point (characterization sweeps, solver restarts, baseline
//! detector sweeps) must produce bit-identical results at every worker
//! count, and the shared cost ledger must merge per-worker costs exactly.

use std::collections::BTreeMap;

use morph_baselines::{BugDetector, FuzzTester, QuitoSearch, StatAssertion};
use morph_linalg::CMatrix;
use morph_optimize::{Bounds, FnObjective, GradientAscent, Optimizer, QuadraticProgram};
use morph_qprog::Circuit;
use morph_tomography::{CostLedger, ReadoutMode, SharedLedger};
use morphqpv::{characterize, Characterization, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn traced_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    c.tracepoint(1, &[0, 1, 2, 3]);
    c.rz(0, 0.3).h(1);
    c.tracepoint(2, &[0, 1, 2, 3]);
    c
}

fn run_characterization(parallelism: usize, seed: u64) -> Characterization {
    let circuit = traced_circuit();
    let config = CharacterizationConfig {
        readout: ReadoutMode::Shots(200),
        parallelism,
        ..CharacterizationConfig::exact(vec![0, 1, 2, 3], 6)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    characterize(&circuit, &config, &mut rng)
}

fn assert_traces_equal(
    a: &BTreeMap<morph_qprog::TracepointId, Vec<CMatrix>>,
    b: &BTreeMap<morph_qprog::TracepointId, Vec<CMatrix>>,
) {
    assert_eq!(a.len(), b.len());
    for (id, lhs) in a {
        let rhs = &b[id];
        assert_eq!(lhs.len(), rhs.len());
        for (x, y) in lhs.iter().zip(rhs) {
            assert_eq!(
                (x - y).frobenius_norm(),
                0.0,
                "trace {id} differs between runs"
            );
        }
    }
}

#[test]
fn characterization_is_bit_identical_across_worker_counts() {
    let serial = run_characterization(1, 11);
    for workers in [2, 4, 0] {
        let wide = run_characterization(workers, 11);
        assert_eq!(
            serial.ledger, wide.ledger,
            "ledger drifted at parallelism={workers}"
        );
        assert_traces_equal(&serial.traces, &wide.traces);
    }
}

#[test]
fn solver_restarts_are_bit_identical_across_worker_counts() {
    // Multimodal objective so restarts genuinely disagree on the optimum.
    let objective = FnObjective::new(2, |x: &[f64]| {
        (3.0 * x[0]).sin() + (2.0 * x[1]).cos() - 0.1 * (x[0] * x[0] + x[1] * x[1])
    });
    let bounds = Bounds::uniform(2, -3.0, 3.0);

    let ga_serial = GradientAscent {
        parallelism: 1,
        ..GradientAscent::default()
    };
    let ga_wide = GradientAscent {
        parallelism: 4,
        ..GradientAscent::default()
    };
    let mut rng_a = StdRng::seed_from_u64(21);
    let mut rng_b = StdRng::seed_from_u64(21);
    let a = ga_serial.maximize(&objective, &bounds, &mut rng_a).unwrap();
    let b = ga_wide.maximize(&objective, &bounds, &mut rng_b).unwrap();
    assert_eq!(a.x, b.x);
    assert_eq!(a.value, b.value);
    assert_eq!(a.evaluations, b.evaluations);
    // Both arms consumed the caller's RNG identically (one master draw).
    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());

    let qp_serial = QuadraticProgram {
        parallelism: 1,
        ..QuadraticProgram::default()
    };
    let qp_wide = QuadraticProgram {
        parallelism: 4,
        ..QuadraticProgram::default()
    };
    let mut rng_a = StdRng::seed_from_u64(22);
    let mut rng_b = StdRng::seed_from_u64(22);
    let a = qp_serial.maximize(&objective, &bounds, &mut rng_a).unwrap();
    let b = qp_wide.maximize(&objective, &bounds, &mut rng_b).unwrap();
    assert_eq!(a.x, b.x);
    assert_eq!(a.value, b.value);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
}

#[test]
fn baseline_detectors_are_bit_identical_across_worker_counts() {
    let lock = morph_qalgo::QuantumLock::new(4, 0b001);
    let reference = lock.circuit();
    let buggy = lock.circuit_with_bug(0b110);

    for workers in [2, 8] {
        let quito_serial = {
            let mut rng = StdRng::seed_from_u64(5);
            QuitoSearch {
                parallelism: 1,
                ..QuitoSearch::default()
            }
            .detect(&reference, &buggy, 16, &mut rng)
        };
        let quito_wide = {
            let mut rng = StdRng::seed_from_u64(5);
            QuitoSearch {
                parallelism: workers,
                ..QuitoSearch::default()
            }
            .detect(&reference, &buggy, 16, &mut rng)
        };
        assert_eq!(quito_serial.bug_found, quito_wide.bug_found);
        assert_eq!(quito_serial.witness_input, quito_wide.witness_input);
        assert_eq!(quito_serial.ledger, quito_wide.ledger);

        let stat_serial = {
            let mut rng = StdRng::seed_from_u64(6);
            StatAssertion {
                parallelism: 1,
                ..StatAssertion::default()
            }
            .detect(&reference, &buggy, 12, &mut rng)
        };
        let stat_wide = {
            let mut rng = StdRng::seed_from_u64(6);
            StatAssertion {
                parallelism: workers,
                ..StatAssertion::default()
            }
            .detect(&reference, &buggy, 12, &mut rng)
        };
        assert_eq!(stat_serial.bug_found, stat_wide.bug_found);
        assert_eq!(stat_serial.witness_input, stat_wide.witness_input);
        assert_eq!(stat_serial.ledger, stat_wide.ledger);

        let fuzz_serial = {
            let mut rng = StdRng::seed_from_u64(7);
            FuzzTester {
                parallelism: 1,
                ..FuzzTester::default()
            }
            .detect(&reference, &buggy, 6, &mut rng)
        };
        let fuzz_wide = {
            let mut rng = StdRng::seed_from_u64(7);
            FuzzTester {
                parallelism: workers,
                ..FuzzTester::default()
            }
            .detect(&reference, &buggy, 6, &mut rng)
        };
        assert_eq!(fuzz_serial.bug_found, fuzz_wide.bug_found);
        assert_eq!(fuzz_serial.witness_input, fuzz_wide.witness_input);
        assert_eq!(fuzz_serial.ledger, fuzz_wide.ledger);
    }
}

#[test]
fn shared_ledger_merges_exactly_under_contention() {
    const THREADS: u64 = 8;
    const RECORDS: u64 = 500;
    let shared = SharedLedger::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                let mut local = CostLedger::new();
                for r in 0..RECORDS {
                    // Distinct per-record costs so lost updates can't cancel.
                    local.record_execution(t + 1, r + 1);
                }
                shared.merge(&local);
                // Also hammer the direct path.
                shared.record_execution(1, 1);
            });
        }
    });
    let total = shared.snapshot();
    // THREADS merged batches of RECORDS executions plus one direct record each.
    assert_eq!(total.executions, THREADS * RECORDS + THREADS);
    // Batch shots: sum over t of RECORDS * (t+1); direct shots: THREADS.
    let batch_shots: u64 = (1..=THREADS).map(|t| RECORDS * t).sum();
    assert_eq!(total.shots, batch_shots + THREADS);
    // Batch ops: sum over t of (t+1) * sum over r of (r+1); direct ops: THREADS.
    let per_thread_ops: u64 = (1..=RECORDS).sum();
    let batch_ops: u64 = (1..=THREADS).map(|t| t * per_thread_ops).sum();
    assert_eq!(total.quantum_ops, batch_ops + THREADS);
}
