//! Golden-fixture tests for the `morph-serve` JSON-lines protocol.
//!
//! `tests/fixtures/serve/requests.jsonl` exercises every response shape —
//! passed, refuted, coalesced duplicate, invalid request, deadline error,
//! unparseable line — and `responses.jsonl` is the checked-in expected
//! output, compared byte for byte. The diff only stays meaningful because
//! responses are deterministic: floats travel as bit-pattern strings,
//! object keys are sorted, and scheduling details never reach a response.
//!
//! Regenerate after an intentional protocol change with:
//!
//! ```text
//! MORPH_UPDATE_GOLDEN=1 cargo test --test serve_protocol
//! ```

use morphqpv_suite::serve::{run_batch, JobRequest, Request, ServeConfig};

const REQUESTS: &str = "tests/fixtures/serve/requests.jsonl";
const GOLDEN: &str = "tests/fixtures/serve/responses.jsonl";
const REVISION_REQUESTS: &str = "tests/fixtures/serve/revisions-requests.jsonl";
const REVISION_GOLDEN: &str = "tests/fixtures/serve/revisions-responses.jsonl";

fn run_batch_file(path: &str, workers: usize) -> (String, i32) {
    let requests = std::fs::read_to_string(path).expect("read requests fixture");
    let mut out = Vec::new();
    let exit = run_batch(
        requests.as_bytes(),
        &mut out,
        &ServeConfig {
            workers,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("batch I/O");
    (String::from_utf8(out).expect("responses are UTF-8"), exit)
}

fn run_fixture_batch(workers: usize) -> (String, i32) {
    run_batch_file(REQUESTS, workers)
}

#[test]
fn batch_output_matches_the_golden_fixture() {
    let (output, exit) = run_fixture_batch(4);
    // The batch contains a refuted job and error lines: refuted dominates.
    assert_eq!(exit, 2);

    if std::env::var_os("MORPH_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &output).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("read golden fixture (set MORPH_UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        output, golden,
        "response lines drifted from the golden fixture; \
         rerun with MORPH_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn batch_output_is_worker_count_independent() {
    let (wide, wide_exit) = run_fixture_batch(8);
    let (narrow, narrow_exit) = run_fixture_batch(1);
    assert_eq!(wide, narrow);
    assert_eq!(wide_exit, narrow_exit);
}

#[test]
fn golden_lines_are_well_formed_protocol_responses() {
    let golden = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let request_count = std::fs::read_to_string(REQUESTS)
        .expect("read requests fixture")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), request_count, "one response per request line");
    for line in lines {
        let value = serde::json::parse(line).expect("golden line parses");
        assert_eq!(
            value.get("protocol").and_then(serde::json::Value::as_u64),
            Some(1)
        );
        let status = value
            .get("status")
            .and_then(serde::json::Value::as_str)
            .expect("status present");
        assert!(
            ["passed", "refuted", "rejected", "error"].contains(&status),
            "unknown status {status}"
        );
    }
}

#[test]
fn coalesced_twins_answer_identically_apart_from_their_ids() {
    let golden = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let find = |id: &str| {
        golden
            .lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no golden line for {id}"))
            .replace(&format!("\"id\":\"{id}\""), "\"id\":\"_\"")
    };
    assert_eq!(find("ghz-pass"), find("ghz-pass-twin"));
}

#[test]
fn revisions_batch_matches_the_golden_fixture() {
    let (output, exit) = run_batch_file(REVISION_REQUESTS, 4);
    if std::env::var_os("MORPH_UPDATE_GOLDEN").is_some() {
        std::fs::write(REVISION_GOLDEN, &output).expect("write golden");
        return;
    }
    // The batch holds passing streams plus envelope/parse errors: 1.
    assert_eq!(exit, 1);
    let golden = std::fs::read_to_string(REVISION_GOLDEN)
        .expect("read golden fixture (set MORPH_UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        output, golden,
        "revision response lines drifted from the golden fixture; \
         rerun with MORPH_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn revisions_batch_is_worker_count_independent() {
    let (wide, wide_exit) = run_batch_file(REVISION_REQUESTS, 8);
    let (narrow, narrow_exit) = run_batch_file(REVISION_REQUESTS, 1);
    assert_eq!(wide, narrow);
    assert_eq!(wide_exit, narrow_exit);
}

/// The tentpole claim, proven at the protocol level: in the `ghz-revise`
/// stream (3 single-gate segments per revision, `segment_gates:1`), the
/// cold first revision misses everything, the one-gate edit recomputes
/// only its own segment, and the revert back to revision 1 recomputes
/// nothing.
#[test]
fn revision_stream_reuses_unedited_segments() {
    let golden = std::fs::read_to_string(REVISION_GOLDEN).expect("read revisions golden");
    let line = golden
        .lines()
        .find(|l| l.contains("\"id\":\"ghz-revise\""))
        .expect("ghz-revise response line");
    let value = serde::json::parse(line).expect("golden line parses");
    assert_eq!(
        value.get("protocol").and_then(serde::json::Value::as_u64),
        Some(2)
    );
    let revisions = match value.get("revisions") {
        Some(serde::json::Value::Array(items)) => items.clone(),
        other => panic!("expected a revisions array, found {other:?}"),
    };
    assert_eq!(revisions.len(), 3);
    let segments = |i: usize, key: &str| {
        revisions[i]
            .get("segments")
            .and_then(|s| s.get(key))
            .and_then(serde::json::Value::as_u64)
            .unwrap_or_else(|| panic!("revision {i} segments.{key}"))
    };
    // Cold: every segment characterized from scratch.
    assert_eq!(segments(0, "hits"), 0);
    assert_eq!(segments(0, "misses"), 3);
    // One inserted gate: the three original segments are reused, only
    // the new one is characterized.
    assert_eq!(segments(1, "hits"), 3);
    assert_eq!(segments(1, "misses"), 1);
    // Revert to revision 1: everything reused.
    assert_eq!(segments(2, "hits"), 3);
    assert_eq!(segments(2, "misses"), 0);
    for rev in &revisions {
        assert_eq!(
            rev.get("status").and_then(serde::json::Value::as_str),
            Some("passed")
        );
    }
}

/// Legacy (v1) lines in a mixed batch keep answering with `protocol:1`
/// bodies, and a mid-stream failure is an in-band per-revision error.
#[test]
fn mixed_batch_keeps_legacy_lines_on_protocol_one() {
    let golden = std::fs::read_to_string(REVISION_GOLDEN).expect("read revisions golden");
    let find = |id: &str| {
        golden
            .lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no golden line for {id}"))
    };
    for id in ["legacy-ghz", "v1-explicit"] {
        let value = serde::json::parse(find(id)).expect("line parses");
        assert_eq!(
            value.get("protocol").and_then(serde::json::Value::as_u64),
            Some(1),
            "{id} must stay a v1 response"
        );
    }
    // Identical programs under both spellings answer identically.
    assert_eq!(
        find("legacy-ghz").replace("\"id\":\"legacy-ghz\"", "\"id\":\"_\""),
        find("v1-explicit").replace("\"id\":\"v1-explicit\"", "\"id\":\"_\"")
    );
    // The bad-tail stream: first revision verified, second an error.
    let value = serde::json::parse(find("revise-bad-tail")).expect("line parses");
    assert_eq!(
        value.get("status").and_then(serde::json::Value::as_str),
        Some("error")
    );
    let revisions = match value.get("revisions") {
        Some(serde::json::Value::Array(items)) => items.clone(),
        other => panic!("expected a revisions array, found {other:?}"),
    };
    assert_eq!(
        revisions[0]
            .get("status")
            .and_then(serde::json::Value::as_str),
        Some("passed")
    );
    assert_eq!(
        revisions[1]
            .get("status")
            .and_then(serde::json::Value::as_str),
        Some("error")
    );
    // Envelope errors answer as plain v1 error lines.
    for id in ["revise-needs-v2", "weird-kind", "from-the-future"] {
        let value = serde::json::parse(find(id)).expect("line parses");
        assert_eq!(
            value.get("status").and_then(serde::json::Value::as_str),
            Some("error"),
            "{id}"
        );
    }
}

#[test]
fn fixture_requests_round_trip_through_the_codec() {
    let requests = std::fs::read_to_string(REQUESTS).expect("read requests fixture");
    let mut parsed = 0;
    for line in requests.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(request) = JobRequest::from_json_line(line) {
            let reprinted = request.to_json_line();
            assert_eq!(
                JobRequest::from_json_line(&reprinted).expect("reprint parses"),
                request
            );
            parsed += 1;
        }
    }
    assert!(
        parsed >= 5,
        "fixture should hold at least five valid requests"
    );
}

#[test]
fn revision_fixture_requests_round_trip_through_the_codec() {
    let requests = std::fs::read_to_string(REVISION_REQUESTS).expect("read revisions requests");
    let mut streams = 0;
    for line in requests.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(Request::Revisions(request)) = Request::from_json_line(line) {
            let reprinted = request.to_json_line();
            match Request::from_json_line(&reprinted).expect("reprint parses") {
                Request::Revisions(again) => assert_eq!(again, request),
                other => panic!("reprint changed kind: {other:?}"),
            }
            streams += 1;
        }
    }
    assert!(
        streams >= 2,
        "fixture should hold at least two valid revision streams"
    );
}
