//! Golden-fixture tests for the `morph-serve` JSON-lines protocol.
//!
//! `tests/fixtures/serve/requests.jsonl` exercises every response shape —
//! passed, refuted, coalesced duplicate, invalid request, deadline error,
//! unparseable line — and `responses.jsonl` is the checked-in expected
//! output, compared byte for byte. The diff only stays meaningful because
//! responses are deterministic: floats travel as bit-pattern strings,
//! object keys are sorted, and scheduling details never reach a response.
//!
//! Regenerate after an intentional protocol change with:
//!
//! ```text
//! MORPH_UPDATE_GOLDEN=1 cargo test --test serve_protocol
//! ```

use morphqpv_suite::serve::{run_batch, JobRequest, ServeConfig};

const REQUESTS: &str = "tests/fixtures/serve/requests.jsonl";
const GOLDEN: &str = "tests/fixtures/serve/responses.jsonl";

fn run_fixture_batch(workers: usize) -> (String, i32) {
    let requests = std::fs::read_to_string(REQUESTS).expect("read requests fixture");
    let mut out = Vec::new();
    let exit = run_batch(
        requests.as_bytes(),
        &mut out,
        &ServeConfig {
            workers,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("batch I/O");
    (String::from_utf8(out).expect("responses are UTF-8"), exit)
}

#[test]
fn batch_output_matches_the_golden_fixture() {
    let (output, exit) = run_fixture_batch(4);
    // The batch contains a refuted job and error lines: refuted dominates.
    assert_eq!(exit, 2);

    if std::env::var_os("MORPH_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &output).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("read golden fixture (set MORPH_UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        output, golden,
        "response lines drifted from the golden fixture; \
         rerun with MORPH_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn batch_output_is_worker_count_independent() {
    let (wide, wide_exit) = run_fixture_batch(8);
    let (narrow, narrow_exit) = run_fixture_batch(1);
    assert_eq!(wide, narrow);
    assert_eq!(wide_exit, narrow_exit);
}

#[test]
fn golden_lines_are_well_formed_protocol_responses() {
    let golden = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let request_count = std::fs::read_to_string(REQUESTS)
        .expect("read requests fixture")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), request_count, "one response per request line");
    for line in lines {
        let value = serde::json::parse(line).expect("golden line parses");
        assert_eq!(
            value.get("protocol").and_then(serde::json::Value::as_u64),
            Some(1)
        );
        let status = value
            .get("status")
            .and_then(serde::json::Value::as_str)
            .expect("status present");
        assert!(
            ["passed", "refuted", "rejected", "error"].contains(&status),
            "unknown status {status}"
        );
    }
}

#[test]
fn coalesced_twins_answer_identically_apart_from_their_ids() {
    let golden = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let find = |id: &str| {
        golden
            .lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no golden line for {id}"))
            .replace(&format!("\"id\":\"{id}\""), "\"id\":\"_\"")
    };
    assert_eq!(find("ghz-pass"), find("ghz-pass-twin"));
}

#[test]
fn fixture_requests_round_trip_through_the_codec() {
    let requests = std::fs::read_to_string(REQUESTS).expect("read requests fixture");
    let mut parsed = 0;
    for line in requests.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(request) = JobRequest::from_json_line(line) {
            let reprinted = request.to_json_line();
            assert_eq!(
                JobRequest::from_json_line(&reprinted).expect("reprint parses"),
                request
            );
            parsed += 1;
        }
    }
    assert!(
        parsed >= 5,
        "fixture should hold at least five valid requests"
    );
}
