//! Property-based tests (proptest) on the core invariants: simulator
//! unitarity, isomorphism linearity (Theorem 1), tomography consistency,
//! and parser round-trips.

use morphqpv_suite::core::ApproximationFunction;
use morphqpv_suite::linalg::{CMatrix, C64};
use morphqpv_suite::qprog::{Circuit, Executor, TracepointId};
use morphqpv_suite::qsim::{Gate, StateVector};
use proptest::prelude::*;

/// Arbitrary 3-qubit gate drawn from the library.
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..3usize).prop_map(Gate::H),
        (0..3usize).prop_map(Gate::X),
        (0..3usize).prop_map(Gate::Z),
        (0..3usize).prop_map(Gate::S),
        (0..3usize).prop_map(Gate::T),
        ((0..3usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RX(q, a)),
        ((0..3usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RY(q, a)),
        ((0..3usize), -3.0..3.0f64).prop_map(|(q, a)| Gate::RZ(q, a)),
        ((0..3usize), (0..3usize))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::CX(a, b)),
        ((0..3usize), (0..3usize))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::CZ(a, b)),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 1..12).prop_map(|gates| {
        let mut c = Circuit::new(3);
        for g in gates {
            c.gate(g);
        }
        c
    })
}

/// Arbitrary normalized single-qubit pure state embedded as qubit 0 of 3.
fn arb_input() -> impl Strategy<Value = StateVector> {
    (0.0..std::f64::consts::PI, 0.0..(2.0 * std::f64::consts::PI)).prop_map(|(theta, phi)| {
        let mut psi = StateVector::zero_state(3);
        psi.apply_1q(&morphqpv_suite::qsim::matrices::ry(theta), 0);
        psi.apply_phase(0, phi);
        psi
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every circuit preserves the norm (unitarity of the gate kernels).
    #[test]
    fn circuits_preserve_norm(circuit in arb_circuit(), input in arb_input()) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let out = Executor::default().run_trajectory(&circuit, &input, &mut rng).final_state;
        prop_assert!((out.norm() - 1.0).abs() < 1e-9);
    }

    /// Running a circuit then its inverse is the identity.
    #[test]
    fn inverse_circuits_cancel(circuit in arb_circuit(), input in arb_input()) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let mut round_trip = circuit.clone();
        round_trip.extend_from(&circuit.inverse());
        let out = Executor::default().run_trajectory(&round_trip, &input, &mut rng).final_state;
        prop_assert!(out.approx_eq_up_to_phase(&input, 1e-9));
    }

    /// Theorem 1 linearity: for any circuit, the tracepoint state of a
    /// convex input mixture equals the mixture of tracepoint states.
    #[test]
    fn tracepoint_states_are_linear(circuit in arb_circuit(), w in 0.05..0.95f64) {
        let executor = Executor::default();
        let mut traced = Circuit::new(3);
        traced.extend_from(&circuit);
        traced.tracepoint(1, &[0, 1]);

        let a = StateVector::basis_state(3, 0b000);
        let b = StateVector::basis_state(3, 0b100);
        let ta = executor.run_expected(&traced, &a).state(TracepointId(1)).clone();
        let tb = executor.run_expected(&traced, &b).state(TracepointId(1)).clone();

        // Mixture of tracepoint states.
        let mixed_traces = &ta.scale_re(w) + &tb.scale_re(1.0 - w);

        // Approximation built from the two pure samples, applied to the
        // mixed input.
        let rho_a = a.reduced_density_matrix(&[0]);
        let rho_b = b.reduced_density_matrix(&[0]);
        let f = ApproximationFunction::new(vec![rho_a.clone(), rho_b.clone()], vec![ta, tb])
            .expect("valid pairs");
        let mixed_input = &rho_a.scale_re(w) + &rho_b.scale_re(1.0 - w);
        let predicted = f.predict(&mixed_input).expect("dimensions match");
        prop_assert!(predicted.approx_eq(&mixed_traces, 1e-8));
    }

    /// Reduced density matrices are valid density matrices.
    #[test]
    fn reduced_states_are_density_matrices(circuit in arb_circuit(), input in arb_input()) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let out = Executor::default().run_trajectory(&circuit, &input, &mut rng).final_state;
        for qubits in [vec![0], vec![1, 2], vec![2, 0]] {
            let rho = out.reduced_density_matrix(&qubits);
            prop_assert!(morphqpv_suite::linalg::is_density_matrix(&rho, 1e-9));
        }
    }

    /// The full-matrix path and the kernel path agree for every gate.
    #[test]
    fn gate_kernels_match_matrices(gate in arb_gate(), input in arb_input()) {
        let mut fast = input.clone();
        gate.apply(&mut fast);
        let expected = gate.full_matrix(3).matvec(input.amplitudes());
        for (idx, &amp) in fast.amplitudes().iter().enumerate() {
            prop_assert!(amp.approx_eq(expected[idx], 1e-10));
        }
    }

    /// Sampling statistics match the amplitudes.
    #[test]
    fn sampling_matches_distribution(circuit in arb_circuit()) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
        let input = StateVector::zero_state(3);
        let out = Executor::default().run_trajectory(&circuit, &input, &mut rng).final_state;
        let probs = out.probabilities();
        let shots = 4000;
        let counts = out.sample_counts(shots, &mut rng);
        for (p, &c) in probs.iter().zip(&counts) {
            let f = c as f64 / shots as f64;
            prop_assert!((f - p).abs() < 0.06, "p={p}, f={f}");
        }
    }

    /// Decompose/recombine round-trips inputs inside the span.
    #[test]
    fn decomposition_roundtrip(w1 in 0.1..0.9f64, w2 in 0.1..0.9f64) {
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let total = w1 + w2;
        let target = &(&zero.scale_re(w1 / total) + &one.scale_re(w2 / total)).scale_re(0.7)
            + &plus.scale_re(0.3);
        let basis = vec![zero, one, plus];
        let alphas = morphqpv_suite::linalg::decompose_hermitian(&basis, &target)
            .expect("solvable");
        let rebuilt = morphqpv_suite::linalg::recombine(&basis, &alphas);
        prop_assert!(rebuilt.approx_eq(&target, 1e-8));
    }
}
